//! Windowed service-level objectives with error-budget burn-rate math.
//!
//! FADEWICH's headline claim is a latency budget — deauthenticate a
//! departed user within ~4 s (6 s worst case) — so the natural way to
//! watch a deployment is as an SLO: over a rolling window of logical
//! ticks, at least `objective` of the tracked events must be good.
//! The error budget is the tolerated bad fraction (`1 − objective`);
//! the burn rate is how fast the deployment is eating it
//! (`bad_ratio / (1 − objective)`, so burn rate 1.0 exactly exhausts
//! the budget at the window edge).
//!
//! An [`SloEngine`] is fed from the existing decision audit trail: the
//! [`Telemetry`](crate::trace::Telemetry) handle routes every span,
//! event and counter increment into an attached engine, so the same
//! replay that produces the JSONL trace also evaluates its SLOs —
//! deterministically, because everything here lives on the logical
//! tick clock. Latency samples are extracted from `rule1_verdict`
//! events exactly the way `experiments::telemetry::latency_study`
//! extracts them (`verdict tick − window_start_tick`, deauths only),
//! so the `/slo` endpoint and the `reproduce telemetry` table agree to
//! the tick.
//!
//! Budget exhaustion is edge-triggered: crossing from inside the
//! budget to outside counts one transition, staying outside counts
//! nothing more, and recovering re-arms the trigger.

use std::collections::VecDeque;

use crate::trace::Value;

/// What one SLO measures and where its samples come from.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Deauth decision latency in logical ticks, extracted from
    /// `rule1_verdict` audit events (deauths only, `verdict tick −
    /// window_start_tick`). A sample is good when it is at most
    /// `threshold_ticks`.
    DeauthLatency {
        /// Largest latency (ticks) still counted as within budget.
        threshold_ticks: u64,
    },
    /// A ratio objective fed by registry counter increments: every
    /// delta on a counter named in `total` contributes to the event
    /// total, every delta on a counter named in `bad` contributes to
    /// the bad count. A name may appear in both lists (a rejected
    /// frame is both an offered frame and a bad one).
    CounterRatio {
        /// Counter names whose deltas count toward the total.
        total: Vec<String>,
        /// Counter names whose deltas count as bad events.
        bad: Vec<String>,
    },
}

/// One windowed objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable identifier, used in renders and lookups.
    pub name: String,
    /// Required good fraction over the window, in `(0, 1)`.
    pub objective: f64,
    /// Rolling window length in logical ticks.
    pub window_ticks: u64,
    /// Measurement kind and sample source.
    pub kind: SloKind,
}

/// Exact latency statistics over the in-window samples, with the same
/// definitions `experiments::telemetry::latency_study` uses: sort the
/// samples, `median = sorted[len / 2]`, min/max are the ends. The p95
/// is conservative — the smallest in-window sample with at least 95%
/// of samples at or below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of in-window samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min_ticks: u64,
    /// Upper median (0 when empty).
    pub median_ticks: u64,
    /// Conservative 95th percentile (0 when empty).
    pub p95_ticks: u64,
    /// Largest sample (0 when empty).
    pub max_ticks: u64,
}

/// A point-in-time evaluation of one SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's objective.
    pub objective: f64,
    /// The spec's window.
    pub window_ticks: u64,
    /// In-window events.
    pub total: u64,
    /// In-window bad events.
    pub bad: u64,
    /// `1 − bad/total` (1.0 when no events).
    pub compliance: f64,
    /// `(bad/total) / (1 − objective)` — 1.0 exactly exhausts the
    /// error budget.
    pub burn_rate: f64,
    /// `max(0, 1 − burn_rate)` — the unspent budget fraction.
    pub budget_remaining: f64,
    /// Whether the window is currently past its budget.
    pub exhausted: bool,
    /// How many times the window *entered* exhaustion (edge-triggered).
    pub exhausted_transitions: u64,
    /// Present for latency SLOs: exact in-window sample statistics
    /// plus the good/bad threshold.
    pub latency: Option<(LatencyStats, u64)>,
}

/// One SLO's live state: the spec plus its in-window samples.
#[derive(Debug, Clone)]
struct Slo {
    spec: SloSpec,
    /// `(tick, bad, latency_sample)` per event for latency SLOs;
    /// `(tick, total_delta, bad_delta)` per counter batch for ratios.
    window: VecDeque<(u64, u64, u64)>,
    exhausted: bool,
    exhausted_transitions: u64,
}

impl Slo {
    fn prune(&mut self, now: u64) {
        let floor = now.saturating_sub(self.spec.window_ticks.saturating_sub(1));
        while self.window.front().is_some_and(|&(t, _, _)| t < floor) {
            self.window.pop_front();
        }
    }

    fn totals(&self) -> (u64, u64) {
        match self.spec.kind {
            SloKind::DeauthLatency { threshold_ticks } => {
                let total = self.window.len() as u64;
                let bad =
                    self.window.iter().filter(|&&(_, _, s)| s > threshold_ticks).count() as u64;
                (total, bad)
            }
            SloKind::CounterRatio { .. } => self
                .window
                .iter()
                .fold((0, 0), |(t, b), &(_, dt, db)| (t + dt, b + db)),
        }
    }

    /// Recomputes exhaustion after new samples; the transition counter
    /// moves only on the inside→outside edge.
    fn retrigger(&mut self) {
        let (total, bad) = self.totals();
        let allowed = 1.0 - self.spec.objective;
        let bad_ratio = if total == 0 { 0.0 } else { bad as f64 / total as f64 };
        let now_exhausted = allowed > 0.0 && bad_ratio > allowed;
        if now_exhausted && !self.exhausted {
            self.exhausted_transitions += 1;
        }
        self.exhausted = now_exhausted;
    }

    fn status(&self) -> SloStatus {
        let (total, bad) = self.totals();
        let allowed = 1.0 - self.spec.objective;
        let bad_ratio = if total == 0 { 0.0 } else { bad as f64 / total as f64 };
        let burn_rate = if allowed > 0.0 { bad_ratio / allowed } else { 0.0 };
        let latency = match self.spec.kind {
            SloKind::DeauthLatency { threshold_ticks } => {
                let mut samples: Vec<u64> = self.window.iter().map(|&(_, _, s)| s).collect();
                samples.sort_unstable();
                let n = samples.len();
                let p95_idx = (((0.95 * n as f64).ceil() as usize).max(1)).saturating_sub(1);
                Some((
                    LatencyStats {
                        count: n as u64,
                        min_ticks: samples.first().copied().unwrap_or(0),
                        median_ticks: samples.get(n / 2).copied().unwrap_or(0),
                        p95_ticks: samples.get(p95_idx).copied().unwrap_or(0),
                        max_ticks: samples.last().copied().unwrap_or(0),
                    },
                    threshold_ticks,
                ))
            }
            SloKind::CounterRatio { .. } => None,
        };
        SloStatus {
            name: self.spec.name.clone(),
            objective: self.spec.objective,
            window_ticks: self.spec.window_ticks,
            total,
            bad,
            compliance: 1.0 - bad_ratio,
            burn_rate,
            budget_remaining: (1.0 - burn_rate).max(0.0),
            exhausted: self.exhausted,
            exhausted_transitions: self.exhausted_transitions,
            latency,
        }
    }
}

/// Evaluates a set of [`SloSpec`]s against the telemetry stream.
///
/// Attach one to a [`Telemetry`](crate::trace::Telemetry) handle with
/// [`set_slo`](crate::trace::Telemetry::set_slo); the handle then
/// routes every span tick, event and counter increment here. All
/// state lives on the logical tick clock, so a seeded replay always
/// produces the same statuses.
#[derive(Debug, Clone)]
pub struct SloEngine {
    now: u64,
    slos: Vec<Slo>,
}

impl SloEngine {
    /// An engine over the given specs.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        Self {
            now: 0,
            slos: specs
                .into_iter()
                .map(|spec| Slo {
                    spec,
                    window: VecDeque::new(),
                    exhausted: false,
                    exhausted_transitions: 0,
                })
                .collect(),
        }
    }

    /// The standard FADEWICH objectives at `tick_hz` ticks per second:
    ///
    /// - `deauth_latency` — p95 of the audit-trail decision latency
    ///   within the paper's 4 s budget (objective 0.95; the 6 s worst
    ///   case is the burn-rate headroom).
    /// - `frame_corrupt_ratio` — at most 0.1% of offered frames
    ///   rejected as corrupt.
    /// - `checkpoint_save_success` — at most 0.1% of checkpoint images
    ///   lost to corruption.
    ///
    /// Windows cover four hours of ticks — longer than a simulated
    /// office day, so a day replay evaluates over its whole trail.
    pub fn standard(tick_hz: f64) -> Self {
        let hz = if tick_hz.is_finite() && tick_hz > 0.0 { tick_hz } else { 1.0 };
        let window_ticks = (4.0 * 3600.0 * hz).ceil() as u64;
        Self::new(vec![
            SloSpec {
                name: "deauth_latency".to_string(),
                objective: 0.95,
                window_ticks,
                kind: SloKind::DeauthLatency { threshold_ticks: (4.0 * hz).ceil() as u64 },
            },
            SloSpec {
                name: "frame_corrupt_ratio".to_string(),
                objective: 0.999,
                window_ticks,
                kind: SloKind::CounterRatio {
                    total: vec![
                        "runtime_frames_in".to_string(),
                        "runtime_frames_corrupt".to_string(),
                        "fleet_frames_demuxed".to_string(),
                        "fleet_frames_corrupt".to_string(),
                    ],
                    bad: vec![
                        "runtime_frames_corrupt".to_string(),
                        "fleet_frames_corrupt".to_string(),
                    ],
                },
            },
            SloSpec {
                name: "checkpoint_save_success".to_string(),
                objective: 0.999,
                window_ticks,
                kind: SloKind::CounterRatio {
                    total: vec![
                        "checkpoint_saves".to_string(),
                        "checkpoint_corrupt_skipped".to_string(),
                    ],
                    bad: vec!["checkpoint_corrupt_skipped".to_string()],
                },
            },
        ])
    }

    /// Moves the engine's notion of "now" forward (never backward) and
    /// ages out-of-window samples off every SLO.
    pub fn advance(&mut self, tick: u64) {
        if tick <= self.now {
            return;
        }
        self.now = tick;
        for slo in &mut self.slos {
            slo.prune(tick);
            slo.retrigger();
        }
    }

    /// The engine's current logical tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Routes one audit-trail event. Only `rule1_verdict` deauth
    /// events carry SLO samples today; everything else just advances
    /// the clock.
    pub fn ingest_event(&mut self, tick: u64, name: &str, attrs: &[(&str, Value)]) {
        self.advance(tick);
        if name != "rule1_verdict" {
            return;
        }
        let attr = |key: &str| attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v);
        if !matches!(attr("deauth"), Some(Value::Bool(true))) {
            return;
        }
        let Some(Value::U64(start)) = attr("window_start_tick") else { return };
        self.observe_latency(tick, tick.saturating_sub(*start));
    }

    /// Records one decision-latency sample directly (tests and
    /// non-event feeds).
    pub fn observe_latency(&mut self, tick: u64, sample_ticks: u64) {
        self.advance(tick);
        for slo in &mut self.slos {
            if matches!(slo.spec.kind, SloKind::DeauthLatency { .. }) {
                slo.window.push_back((tick, 0, sample_ticks));
                slo.prune(self.now);
                slo.retrigger();
            }
        }
    }

    /// Routes one counter increment. Counter deltas carry no tick of
    /// their own, so they are stamped with the engine's current tick.
    pub fn ingest_counter(&mut self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let now = self.now;
        for slo in &mut self.slos {
            let SloKind::CounterRatio { total, bad } = &slo.spec.kind else { continue };
            let dt = if total.iter().any(|t| t == name) { delta } else { 0 };
            let db = if bad.iter().any(|b| b == name) { delta } else { 0 };
            if dt == 0 && db == 0 {
                continue;
            }
            slo.window.push_back((now, dt, db));
            slo.prune(now);
            slo.retrigger();
        }
    }

    /// Evaluates every SLO at the current tick.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.slos.iter().map(Slo::status).collect()
    }

    /// Deterministic text render — the `/slo` endpoint body. Pure
    /// tick-domain data: two replays of one seeded scenario produce
    /// byte-identical output.
    pub fn render_text(&self) -> String {
        let mut out = format!("slo report at tick {}\n", self.now);
        for s in self.statuses() {
            out.push_str(&format!(
                "slo {}  objective {:.3}  window {} ticks\n",
                s.name, s.objective, s.window_ticks
            ));
            out.push_str(&format!(
                "  events {}  bad {}  compliance {:.6}\n",
                s.total, s.bad, s.compliance
            ));
            out.push_str(&format!(
                "  burn_rate {:.4}  budget_remaining {:.4}  exhausted {}  transitions {}\n",
                s.burn_rate, s.budget_remaining, s.exhausted, s.exhausted_transitions
            ));
            if let Some((l, threshold)) = s.latency {
                out.push_str(&format!(
                    "  latency ticks  count {}  min {}  median {}  p95 {}  max {}  threshold {}\n",
                    l.count, l.min_ticks, l.median_ticks, l.p95_ticks, l.max_ticks, threshold
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency_engine(threshold: u64, window: u64, objective: f64) -> SloEngine {
        SloEngine::new(vec![SloSpec {
            name: "lat".to_string(),
            objective,
            window_ticks: window,
            kind: SloKind::DeauthLatency { threshold_ticks: threshold },
        }])
    }

    #[test]
    fn latency_stats_match_latency_study_definitions() {
        let mut e = latency_engine(100, 10_000, 0.95);
        for (i, s) in [7u64, 3, 9, 1, 5].iter().enumerate() {
            e.observe_latency(10 + i as u64, *s);
        }
        let st = &e.statuses()[0];
        let (l, _) = st.latency.unwrap();
        // sorted = [1,3,5,7,9]: min first, median at len/2, max last.
        assert_eq!((l.min_ticks, l.median_ticks, l.max_ticks), (1, 5, 9));
        assert_eq!(l.count, 5);
        assert_eq!(l.p95_ticks, 9);
        assert_eq!(st.bad, 0);
        assert!((st.compliance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_prunes_exactly() {
        // Window of 10 ticks keeps samples with tick in [now-9, now].
        let mut e = latency_engine(100, 10, 0.95);
        e.observe_latency(1, 5);
        e.observe_latency(5, 5);
        e.observe_latency(10, 5);
        assert_eq!(e.statuses()[0].total, 3, "tick 1 still in [1, 10]");
        e.advance(11);
        assert_eq!(e.statuses()[0].total, 2, "tick 1 aged out at now=11");
        e.advance(14);
        assert_eq!(e.statuses()[0].total, 2, "tick 5 still in [5, 14]");
        e.advance(15);
        assert_eq!(e.statuses()[0].total, 1);
        e.advance(20);
        assert_eq!(e.statuses()[0].total, 0);
        // Clock never runs backward.
        e.advance(3);
        assert_eq!(e.now(), 20);
    }

    #[test]
    fn burn_rate_math() {
        let mut e = SloEngine::new(vec![SloSpec {
            name: "ratio".to_string(),
            objective: 0.9,
            window_ticks: 1_000,
            kind: SloKind::CounterRatio {
                total: vec!["total".to_string(), "bad".to_string()],
                bad: vec!["bad".to_string()],
            },
        }]);
        e.advance(1);
        e.ingest_counter("total", 95);
        e.ingest_counter("bad", 5);
        let s = &e.statuses()[0];
        assert_eq!((s.total, s.bad), (100, 5));
        // bad_ratio 0.05 against allowed 0.1 → burn rate 0.5.
        assert!((s.burn_rate - 0.5).abs() < 1e-12, "{}", s.burn_rate);
        assert!((s.budget_remaining - 0.5).abs() < 1e-12);
        assert!(!s.exhausted);
    }

    #[test]
    fn exhaustion_is_edge_triggered_once() {
        let mut e = latency_engine(10, 100, 0.5);
        e.observe_latency(1, 5); // good
        e.observe_latency(2, 50); // bad: ratio 0.5, allowed 0.5 → not over
        assert!(!e.statuses()[0].exhausted);
        e.observe_latency(3, 60); // bad: ratio 2/3 > 0.5 → edge
        assert!(e.statuses()[0].exhausted);
        assert_eq!(e.statuses()[0].exhausted_transitions, 1);
        e.observe_latency(4, 70); // still exhausted: no new transition
        e.observe_latency(5, 80);
        assert_eq!(e.statuses()[0].exhausted_transitions, 1);
        // Recover: good samples push the ratio back under budget.
        for t in 6..14 {
            e.observe_latency(t, 1);
        }
        assert!(!e.statuses()[0].exhausted);
        // A second excursion re-triggers exactly once more.
        for t in 14..40 {
            e.observe_latency(t, 99);
        }
        assert!(e.statuses()[0].exhausted);
        assert_eq!(e.statuses()[0].exhausted_transitions, 2);
    }

    #[test]
    fn event_routing_mirrors_audit_trail_extraction() {
        let mut e = latency_engine(60, 100_000, 0.95);
        e.ingest_event(
            500,
            "rule1_verdict",
            &[("deauth", Value::Bool(true)), ("window_start_tick", Value::U64(450))],
        );
        // Non-deauth verdicts and unrelated events contribute nothing.
        e.ingest_event(
            600,
            "rule1_verdict",
            &[("deauth", Value::Bool(false)), ("window_start_tick", Value::U64(590))],
        );
        e.ingest_event(700, "md_window", &[]);
        let (l, _) = e.statuses()[0].latency.unwrap();
        assert_eq!((l.count, l.min_ticks, l.max_ticks), (1, 50, 50));
        assert_eq!(e.now(), 700, "every event advances the clock");
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut e = SloEngine::standard(20.0);
        e.ingest_event(
            100,
            "rule1_verdict",
            &[("deauth", Value::Bool(true)), ("window_start_tick", Value::U64(40))],
        );
        e.ingest_counter("runtime_frames_in", 1_000);
        e.ingest_counter("checkpoint_saves", 10);
        let a = e.render_text();
        let b = e.render_text();
        assert_eq!(a, b);
        for needle in ["deauth_latency", "frame_corrupt_ratio", "checkpoint_save_success"] {
            assert!(a.contains(needle), "{a}");
        }
        assert!(a.contains("threshold 80"), "4 s at 20 Hz: {a}");
    }
}
