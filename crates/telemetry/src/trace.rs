//! Structured tracing spans and events on the logical tick clock.
//!
//! A [`Telemetry`] handle is a cheap clone-able capability passed down
//! the stack (engine → controller → movement detector). Disabled
//! handles cost one branch per call, so instrumented hot paths stay
//! free when nobody is watching. Enabled handles share one sink and
//! one [`MetricsRegistry`].
//!
//! Records are stamped with the *logical* tick, never wall time, and
//! span ids are assigned from a deterministic per-run counter, so two
//! replays of the same seeded scenario emit byte-identical JSONL — a
//! property `scripts/ci.sh` enforces with `cmp`.
//!
//! # Span/event line schema (one JSON object per line)
//!
//! ```text
//! {"tick":T,"ev":"open","span":S,"parent":P,"name":N,"attrs":{...}}
//! {"tick":T,"ev":"close","span":S}
//! {"tick":T,"ev":"event","parent":P,"name":N,"attrs":{...}}
//! ```
//!
//! `parent` is omitted for roots; `attrs` values are JSON scalars or
//! arrays (non-finite floats become `null`).

use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::registry::MetricsRegistry;
use crate::render::{escape_json, fmt_f64};
use crate::slo::SloEngine;

/// Identifier of an open span, unique within one run.
///
/// Ids are handed out sequentially from 1 in emission order, which
/// makes them reproducible across replays of the same scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ticks, counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered via shortest-roundtrip `Display`).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (rule names, labels).
    Str(String),
    /// Float vector (feature vectors, per-class margins).
    F64s(Vec<f64>),
    /// Integer vector (idle sets, stream indices).
    U64s(Vec<u64>),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => fmt_f64(*v),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => format!("\"{}\"", escape_json(s)),
            Value::F64s(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| fmt_f64(*v)).collect();
                format!("[{}]", parts.join(","))
            }
            Value::U64s(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                format!("[{}]", parts.join(","))
            }
        }
    }
}

/// What a trace record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Open,
    /// A span closed.
    Close,
    /// A point event.
    Event,
}

/// One structured trace record (one JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Logical tick the record was emitted at.
    pub tick: u64,
    /// Open / close / event.
    pub kind: RecordKind,
    /// Span or event name (empty for closes).
    pub name: String,
    /// The span this record opens or closes.
    pub span: Option<SpanId>,
    /// Enclosing span, when any.
    pub parent: Option<SpanId>,
    /// Attribute key/value pairs, in emission order.
    pub attrs: Vec<(String, Value)>,
}

impl Record {
    /// Renders the record as its JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        let mut s = format!("{{\"tick\":{}", self.tick);
        match self.kind {
            RecordKind::Open => {
                s.push_str(",\"ev\":\"open\"");
                if let Some(SpanId(id)) = self.span {
                    s.push_str(&format!(",\"span\":{id}"));
                }
            }
            RecordKind::Close => {
                s.push_str(",\"ev\":\"close\"");
                if let Some(SpanId(id)) = self.span {
                    s.push_str(&format!(",\"span\":{id}"));
                }
                s.push('}');
                return s;
            }
            RecordKind::Event => s.push_str(",\"ev\":\"event\""),
        }
        if let Some(SpanId(p)) = self.parent {
            s.push_str(&format!(",\"parent\":{p}"));
        }
        s.push_str(&format!(",\"name\":\"{}\"", escape_json(&self.name)));
        s.push_str(",\"attrs\":{");
        let parts: Vec<String> =
            self.attrs.iter().map(|(k, v)| format!("\"{}\":{}", escape_json(k), v.render())).collect();
        s.push_str(&parts.join(","));
        s.push_str("}}");
        s
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

enum Sink {
    /// Metrics wanted, trace discarded.
    Null,
    /// Records kept in memory for programmatic inspection.
    Buffer(Vec<Record>),
    /// Records rendered straight to a JSONL writer.
    Writer(Box<dyn Write + Send>),
}

struct Inner {
    registry: MetricsRegistry,
    sink: Sink,
    next_span: u64,
    write_error: Option<io::Error>,
    /// An attached SLO engine sees every span tick, event and counter
    /// increment ([`Telemetry::set_slo`]).
    slo: Option<SloEngine>,
}

/// The shared telemetry capability. See the module docs.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.inner.is_some()).finish()
    }
}

impl Telemetry {
    /// A no-op handle: every call is a single branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Metrics are collected; span/event records are discarded.
    pub fn metrics_only() -> Self {
        Self::with_sink(Sink::Null)
    }

    /// Records are buffered in memory ([`records`](Self::records),
    /// [`trace_string`](Self::trace_string)).
    pub fn buffering() -> Self {
        Self::with_sink(Sink::Buffer(Vec::new()))
    }

    /// Records are rendered to `w` as JSONL as they are emitted.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Self::with_sink(Sink::Writer(w))
    }

    fn with_sink(sink: Sink) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                registry: MetricsRegistry::new(),
                sink,
                next_span: 1,
                write_error: None,
                slo: None,
            }))),
        }
    }

    /// Whether this handle collects anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        // A panic while holding the lock poisons it; telemetry must
        // never turn that into a second panic, so take the data as-is.
        self.inner.as_ref().map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn emit(inner: &mut Inner, record: Record) {
        match &mut inner.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.push(record),
            Sink::Writer(w) => {
                if inner.write_error.is_none() {
                    if let Err(e) = writeln!(w, "{}", record.render()) {
                        inner.write_error = Some(e);
                    }
                }
            }
        }
    }

    /// Opens a span at `tick`; returns its id, or `None` when
    /// disabled.
    pub fn span_open(
        &self,
        tick: u64,
        name: &str,
        parent: Option<SpanId>,
        attrs: &[(&str, Value)],
    ) -> Option<SpanId> {
        let mut inner = self.lock()?;
        if let Some(slo) = inner.slo.as_mut() {
            slo.advance(tick);
        }
        let id = SpanId(inner.next_span);
        inner.next_span += 1;
        let record = Record {
            tick,
            kind: RecordKind::Open,
            name: name.to_string(),
            span: Some(id),
            parent,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        Self::emit(&mut inner, record);
        Some(id)
    }

    /// Closes a previously opened span at `tick`.
    pub fn span_close(&self, tick: u64, span: SpanId) {
        if let Some(mut inner) = self.lock() {
            if let Some(slo) = inner.slo.as_mut() {
                slo.advance(tick);
            }
            let record = Record {
                tick,
                kind: RecordKind::Close,
                name: String::new(),
                span: Some(span),
                parent: None,
                attrs: Vec::new(),
            };
            Self::emit(&mut inner, record);
        }
    }

    /// Emits a point event at `tick`.
    pub fn event(&self, tick: u64, name: &str, parent: Option<SpanId>, attrs: &[(&str, Value)]) {
        if let Some(mut inner) = self.lock() {
            if let Some(slo) = inner.slo.as_mut() {
                slo.ingest_event(tick, name, attrs);
            }
            let record = Record {
                tick,
                kind: RecordKind::Event,
                name: name.to_string(),
                span: None,
                parent,
                attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            };
            Self::emit(&mut inner, record);
        }
    }

    /// Adds to a registry counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(mut inner) = self.lock() {
            inner.registry.counter_add(name, n);
            if let Some(slo) = inner.slo.as_mut() {
                slo.ingest_counter(name, n);
            }
        }
    }

    /// Sets a registry gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(mut inner) = self.lock() {
            inner.registry.gauge_set(name, v);
        }
    }

    /// Records into a deterministic (tick-domain) histogram.
    pub fn histo_record(&self, name: &str, v: u64) {
        if let Some(mut inner) = self.lock() {
            inner.registry.histo_record(name, v);
        }
    }

    /// Records into a wall-clock histogram (excluded from
    /// deterministic dumps).
    pub fn histo_record_wall(&self, name: &str, v: u64) {
        if let Some(mut inner) = self.lock() {
            inner.registry.histo_record_wall(name, v);
        }
    }

    /// Runs `f` against the registry (for reads); `None` when
    /// disabled.
    pub fn with_registry<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        let inner = self.lock()?;
        Some(f(&inner.registry))
    }

    /// Attaches an SLO engine: from now on every span tick, event and
    /// counter increment is routed into it. No-op when disabled.
    pub fn set_slo(&self, engine: SloEngine) {
        if let Some(mut inner) = self.lock() {
            inner.slo = Some(engine);
        }
    }

    /// Runs `f` against the attached SLO engine; `None` when disabled
    /// or no engine is attached.
    pub fn with_slo<R>(&self, f: impl FnOnce(&SloEngine) -> R) -> Option<R> {
        let inner = self.lock()?;
        inner.slo.as_ref().map(f)
    }

    /// The attached SLO engine's deterministic report; `None` when
    /// disabled or no engine is attached.
    pub fn slo_text(&self) -> Option<String> {
        self.with_slo(SloEngine::render_text)
    }

    /// JSON metrics dump; `None` when disabled.
    pub fn metrics_json(&self, include_wall: bool) -> Option<String> {
        self.with_registry(|r| r.to_json(include_wall))
    }

    /// Prometheus text exposition; `None` when disabled.
    pub fn prometheus_text(&self, include_wall: bool) -> Option<String> {
        self.with_registry(|r| r.prometheus_text(include_wall))
    }

    /// A copy of the buffered records (empty unless built with
    /// [`buffering`](Self::buffering)).
    pub fn records(&self) -> Vec<Record> {
        match self.lock() {
            Some(inner) => match &inner.sink {
                Sink::Buffer(buf) => buf.clone(),
                _ => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// The buffered trace rendered as JSONL (one record per line).
    pub fn trace_string(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// Flushes a writer sink and surfaces any deferred write error.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(mut inner) = self.lock() {
            if let Some(e) = inner.write_error.take() {
                return Err(e);
            }
            if let Sink::Writer(w) = &mut inner.sink {
                return w.flush();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.span_open(0, "x", None, &[]), None);
        t.event(0, "y", None, &[]);
        t.counter_add("c", 1);
        assert_eq!(t.metrics_json(true), None);
        assert!(t.records().is_empty());
    }

    #[test]
    fn span_ids_are_sequential_and_lines_render() {
        let t = Telemetry::buffering();
        let a = t.span_open(5, "window", None, &[("st", Value::F64(1.5))]).unwrap();
        let b = t
            .span_open(6, "rule1", Some(a), &[("label", Value::Str("w3".into()))])
            .unwrap();
        t.event(6, "deauth", Some(b), &[("ws", Value::U64(3))]);
        t.span_close(7, b);
        t.span_close(8, a);
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        let lines: Vec<String> = t.trace_string().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"tick\":5,\"ev\":\"open\",\"span\":1,\"name\":\"window\",\"attrs\":{\"st\":1.5}}"
        );
        assert_eq!(
            lines[1],
            "{\"tick\":6,\"ev\":\"open\",\"span\":2,\"parent\":1,\"name\":\"rule1\",\"attrs\":{\"label\":\"w3\"}}"
        );
        assert_eq!(
            lines[2],
            "{\"tick\":6,\"ev\":\"event\",\"parent\":2,\"name\":\"deauth\",\"attrs\":{\"ws\":3}}"
        );
        assert_eq!(lines[3], "{\"tick\":7,\"ev\":\"close\",\"span\":2}");
    }

    #[test]
    fn clones_share_one_sink_and_registry() {
        let t = Telemetry::buffering();
        let u = t.clone();
        t.span_open(0, "a", None, &[]);
        u.span_open(1, "b", None, &[]);
        u.counter_add("n", 2);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.with_registry(|r| r.counter("n")), Some(2));
    }

    #[test]
    fn writer_sink_emits_jsonl() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let t = Telemetry::to_writer(Box::new(shared.clone()));
        t.event(3, "e", None, &[("k", Value::Bool(true))]);
        t.flush().unwrap();
        let bytes = shared.0.lock().unwrap().clone();
        let s = String::from_utf8(bytes).unwrap();
        assert_eq!(s, "{\"tick\":3,\"ev\":\"event\",\"name\":\"e\",\"attrs\":{\"k\":true}}\n");
    }

    #[test]
    fn non_finite_floats_render_null() {
        let t = Telemetry::buffering();
        t.event(0, "e", None, &[("x", Value::F64(f64::NAN)), ("v", Value::F64s(vec![1.0, f64::INFINITY]))]);
        let s = t.trace_string();
        assert!(s.contains("\"x\":null"), "{s}");
        assert!(s.contains("\"v\":[1,null]"), "{s}");
    }
}
