//! Workspace-wide telemetry: deterministic tracing spans, a metrics
//! registry, and the wall-clock boundary.
//!
//! The reproduction's headline claim is *timeliness* — deauthenticate
//! within seconds of a departure — so every decision must be
//! explainable after the fact: which variation window opened, what
//! `s_t` crossed which threshold, what the SVM predicted with what
//! margins, which rule fired, who was in the KMA idle set. This crate
//! provides the three pieces the rest of the workspace threads
//! through:
//!
//! - [`clock`] — the [`Clock`](clock::Clock) trait. All wall-clock
//!   reads go through it; a grep lint in `scripts/ci.sh` bans direct
//!   `Instant::now()` elsewhere so replays stay reproducible.
//! - [`registry`] — named counters, gauges and log-linear histograms
//!   with hand-rolled Prometheus-text and JSON exposition (no serde).
//!   Wall-clock histograms are flagged and excluded from
//!   deterministic dumps.
//! - [`trace`] — [`Telemetry`](trace::Telemetry), a clone-able
//!   capability emitting span/event records stamped with the logical
//!   tick to a JSONL sink. Two replays of one seeded scenario produce
//!   byte-identical traces (enforced by `cmp` in CI).
//! - [`json`] — a minimal parser for our own dumps, backing
//!   `fadewichd stats`.
//!
//! # Examples
//!
//! ```
//! use fadewich_telemetry::{Telemetry, Value};
//!
//! let t = Telemetry::buffering();
//! let win = t.span_open(120, "md_window", None, &[("st", Value::F64(2.4))]);
//! t.event(180, "deauth", win, &[("ws", Value::U64(3))]);
//! t.span_close(200, win.unwrap());
//! t.counter_add("decisions", 1);
//! assert_eq!(t.records().len(), 3);
//! assert!(t.metrics_json(false).unwrap().contains("\"decisions\":1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod json;
pub mod profile;
pub mod registry;
mod render;
pub mod serve;
pub mod slo;
pub mod trace;

pub use clock::{Clock, ManualClock, WallClock};
pub use profile::Profile;
pub use registry::{Histogram, MetricsRegistry};
pub use serve::OpsServer;
pub use slo::{LatencyStats, SloEngine, SloKind, SloSpec, SloStatus};
pub use trace::{Record, RecordKind, SpanId, Telemetry, Value};
