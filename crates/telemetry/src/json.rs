//! A minimal JSON reader for our own dumps.
//!
//! `fadewichd stats` pretty-prints a `--metrics-out` file without
//! serde, so this module parses exactly the JSON this workspace
//! emits: objects, arrays, strings with the escapes
//! [`crate::render::escape_json`] produces, numbers, booleans and
//! `null`. Object key order is preserved (our dumps are canonically
//! sorted and the printer should not re-sort them).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The object's members, when it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset for malformed input or
/// trailing garbage.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unharmed:
                // take the full char from the source str.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = s.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_registry_dump() {
        let mut r = crate::registry::MetricsRegistry::new();
        r.counter_add("frames_in", 7);
        r.gauge_set("thr", -1.5);
        r.histo_record("lat", 42);
        let j = parse(&r.to_json(true)).unwrap();
        let counters = j.get("counters").unwrap();
        assert_eq!(counters.get("frames_in").and_then(Json::as_num), Some(7.0));
        assert_eq!(j.get("gauges").unwrap().get("thr").and_then(Json::as_num), Some(-1.5));
        let lat = j.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn parses_trace_lines() {
        let t = crate::trace::Telemetry::buffering();
        t.span_open(1, "w \"q\"", None, &[("v", crate::trace::Value::F64s(vec![1.0, 2.5]))]);
        for line in t.trace_string().lines() {
            let j = parse(line).unwrap();
            assert_eq!(j.get("name"), Some(&Json::Str("w \"q\"".to_string())));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"ab").is_err());
    }

    #[test]
    fn preserves_key_order() {
        let j = parse("{\"b\":1,\"a\":2}").unwrap();
        let keys: Vec<&str> = j.members().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
    }
}
