//! Span profiler: aggregates tick-stamped tracing spans into
//! per-stage self-time/total-time tables and a collapsed-stack
//! (flamegraph-compatible) text export.
//!
//! The trace layer (PR 5) already stamps every span with the logical
//! tick it opened and closed at; this module folds a record stream
//! into where those ticks actually went. Total time of a span is
//! `close tick − open tick`; self time subtracts the total time of
//! its direct children, so a stage that merely contains an expensive
//! sub-stage doesn't double-bill. Both are logical-tick durations —
//! seed-deterministic, byte-identical across replays — which is what
//! lets `scripts/ci.sh` gate `reproduce profile` with a plain `cmp`.
//!
//! The collapsed-stack export is one line per unique span path,
//! `root;child;leaf <self_ticks>`, the text format flamegraph tooling
//! consumes directly.

use std::collections::{BTreeMap, HashMap};

use crate::json::{self, Json};
use crate::trace::{Record, RecordKind, SpanId};

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Closed spans with this name.
    pub count: u64,
    /// Summed `close − open` ticks.
    pub total_ticks: u64,
    /// Summed total minus direct-children total.
    pub self_ticks: u64,
    /// Smallest single-span total (0 when no spans closed).
    pub min_ticks: u64,
    /// Largest single-span total.
    pub max_ticks: u64,
}

impl StageStats {
    fn absorb(&mut self, total: u64) {
        if self.count == 0 {
            self.min_ticks = total;
        } else {
            self.min_ticks = self.min_ticks.min(total);
        }
        self.count += 1;
        self.total_ticks += total;
        self.max_ticks = self.max_ticks.max(total);
    }
}

/// One open span being tracked during the fold.
struct OpenSpan {
    name: String,
    path: String,
    open_tick: u64,
    child_total: u64,
    parent: Option<SpanId>,
}

/// An aggregated profile over one or more trace record streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-span-name timing, keyed by name (sorted).
    stages: BTreeMap<String, StageStats>,
    /// Collapsed-stack self ticks, keyed by `a;b;c` path (sorted).
    stacks: BTreeMap<String, u64>,
    /// Point-event counts by name.
    events: BTreeMap<String, u64>,
    /// Close records that referenced no open span.
    pub dropped_closes: u64,
    /// Spans still open when the stream ended.
    pub unclosed: u64,
}

impl Profile {
    /// Folds a record stream (as produced by
    /// [`Telemetry::records`](crate::trace::Telemetry::records)) into
    /// a profile.
    pub fn from_records(records: &[Record]) -> Profile {
        let mut p = Profile::default();
        let mut open: HashMap<u64, OpenSpan> = HashMap::new();
        for rec in records {
            match rec.kind {
                RecordKind::Open => {
                    let Some(SpanId(id)) = rec.span else { continue };
                    let path = match rec.parent.and_then(|SpanId(pid)| open.get(&pid)) {
                        Some(parent) => format!("{};{}", parent.path, rec.name),
                        None => rec.name.clone(),
                    };
                    open.insert(
                        id,
                        OpenSpan {
                            name: rec.name.clone(),
                            path,
                            open_tick: rec.tick,
                            child_total: 0,
                            parent: rec.parent,
                        },
                    );
                }
                RecordKind::Close => {
                    let Some(SpanId(id)) = rec.span else { continue };
                    let Some(span) = open.remove(&id) else {
                        p.dropped_closes += 1;
                        continue;
                    };
                    let total = rec.tick.saturating_sub(span.open_tick);
                    let self_ticks = total.saturating_sub(span.child_total);
                    let stage = p.stages.entry(span.name).or_insert_with(|| StageStats {
                        count: 0,
                        total_ticks: 0,
                        self_ticks: 0,
                        min_ticks: 0,
                        max_ticks: 0,
                    });
                    stage.absorb(total);
                    stage.self_ticks += self_ticks;
                    *p.stacks.entry(span.path).or_insert(0) += self_ticks;
                    if let Some(parent) =
                        span.parent.and_then(|SpanId(pid)| open.get_mut(&pid))
                    {
                        parent.child_total += total;
                    }
                }
                RecordKind::Event => {
                    *p.events.entry(rec.name.clone()).or_insert(0) += 1;
                }
            }
        }
        p.unclosed += open.len() as u64;
        p
    }

    /// Parses a `--trace-out` JSONL file back into records and folds
    /// it — the `fadewichd stats --profile` path.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Profile, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let j = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let num = |key: &str| j.get(key).and_then(Json::as_num).map(|n| n as u64);
            let tick = num("tick").ok_or_else(|| format!("line {}: no tick", i + 1))?;
            let kind = match j.get("ev") {
                Some(Json::Str(s)) if s == "open" => RecordKind::Open,
                Some(Json::Str(s)) if s == "close" => RecordKind::Close,
                Some(Json::Str(s)) if s == "event" => RecordKind::Event,
                _ => return Err(format!("line {}: bad ev", i + 1)),
            };
            let name = match j.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            records.push(Record {
                tick,
                kind,
                name,
                span: num("span").map(SpanId),
                parent: num("parent").map(SpanId),
                attrs: Vec::new(),
            });
        }
        Ok(Profile::from_records(&records))
    }

    /// Folds another profile's aggregates into this one (stage stats
    /// add, stacks add, events add).
    pub fn merge_from(&mut self, other: &Profile) {
        for (name, s) in &other.stages {
            let mine = self.stages.entry(name.clone()).or_insert_with(|| StageStats {
                count: 0,
                total_ticks: 0,
                self_ticks: 0,
                min_ticks: 0,
                max_ticks: 0,
            });
            if mine.count == 0 {
                mine.min_ticks = s.min_ticks;
            } else if s.count > 0 {
                mine.min_ticks = mine.min_ticks.min(s.min_ticks);
            }
            mine.count += s.count;
            mine.total_ticks += s.total_ticks;
            mine.self_ticks += s.self_ticks;
            mine.max_ticks = mine.max_ticks.max(s.max_ticks);
        }
        for (path, v) in &other.stacks {
            *self.stacks.entry(path.clone()).or_insert(0) += v;
        }
        for (name, c) in &other.events {
            *self.events.entry(name.clone()).or_insert(0) += c;
        }
        self.dropped_closes += other.dropped_closes;
        self.unclosed += other.unclosed;
    }

    /// Whether anything was aggregated.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.events.is_empty()
    }

    /// Stage stats by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.get(name)
    }

    /// Event count by name.
    pub fn event_count(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or(0)
    }

    /// The per-stage table, sorted by self ticks descending (name
    /// ascending on ties), followed by event counts. Deterministic.
    pub fn table(&self) -> String {
        let mut rows: Vec<(&String, &StageStats)> = self.stages.iter().collect();
        rows.sort_by(|a, b| b.1.self_ticks.cmp(&a.1.self_ticks).then(a.0.cmp(b.0)));
        let name_w = rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.events.keys().map(String::len))
            .max()
            .unwrap_or(4)
            .max("span".len());
        let mut out = format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>11}  {:>8}  {:>8}  {:>8}\n",
            "span", "count", "total_ticks", "self_ticks", "min", "max", "mean"
        );
        for (name, s) in rows {
            let mean = if s.count == 0 { 0 } else { s.total_ticks / s.count };
            out.push_str(&format!(
                "{name:<name_w$}  {:>8}  {:>12}  {:>11}  {:>8}  {:>8}  {mean:>8}\n",
                s.count, s.total_ticks, s.self_ticks, s.min_ticks, s.max_ticks
            ));
        }
        if !self.events.is_empty() {
            out.push_str(&format!("{:<name_w$}  {:>8}\n", "event", "count"));
            for (name, c) in &self.events {
                out.push_str(&format!("{name:<name_w$}  {c:>8}\n"));
            }
        }
        if self.dropped_closes > 0 || self.unclosed > 0 {
            out.push_str(&format!(
                "(dropped closes {}, unclosed spans {})\n",
                self.dropped_closes, self.unclosed
            ));
        }
        out
    }

    /// The collapsed-stack export: one `path self_ticks` line per
    /// unique span path, sorted by path — the format flamegraph
    /// tooling consumes.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, v) in &self.stacks {
            out.push_str(&format!("{path} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Telemetry;

    fn sample_trace() -> Telemetry {
        let t = Telemetry::buffering();
        let day = t.span_open(0, "day", None, &[]).unwrap();
        let w1 = t.span_open(10, "md_window", Some(day), &[]).unwrap();
        let r1 = t.span_open(40, "rule1_eval", Some(w1), &[]).unwrap();
        t.event(42, "rule1_verdict", Some(r1), &[]);
        t.span_close(42, r1);
        t.span_close(50, w1);
        let w2 = t.span_open(60, "md_window", Some(day), &[]).unwrap();
        t.span_close(80, w2);
        t.span_close(100, day);
        t
    }

    #[test]
    fn self_time_subtracts_children() {
        let p = Profile::from_records(&sample_trace().records());
        let day = p.stage("day").unwrap();
        assert_eq!(day.count, 1);
        assert_eq!(day.total_ticks, 100);
        // Two md_window children total 40 + 20 = 60 ticks.
        assert_eq!(day.self_ticks, 40);
        let w = p.stage("md_window").unwrap();
        assert_eq!((w.count, w.total_ticks, w.min_ticks, w.max_ticks), (2, 60, 20, 40));
        // rule1_eval (2 ticks) is md_window's child, not day's.
        assert_eq!(w.self_ticks, 58);
        assert_eq!(p.event_count("rule1_verdict"), 1);
        assert_eq!((p.dropped_closes, p.unclosed), (0, 0));
    }

    #[test]
    fn collapsed_stacks_carry_full_paths() {
        let p = Profile::from_records(&sample_trace().records());
        let c = p.collapsed();
        assert!(c.contains("day 40\n"), "{c}");
        assert!(c.contains("day;md_window 58\n"), "{c}");
        assert!(c.contains("day;md_window;rule1_eval 2\n"), "{c}");
        assert_eq!(c.lines().count(), 3);
    }

    #[test]
    fn jsonl_round_trip_matches_in_memory_fold() {
        let t = sample_trace();
        let direct = Profile::from_records(&t.records());
        let parsed = Profile::from_jsonl(&t.trace_string()).unwrap();
        assert_eq!(direct, parsed);
        assert_eq!(direct.table(), parsed.table());
        assert_eq!(direct.collapsed(), parsed.collapsed());
        assert!(Profile::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn merge_accumulates_and_orphans_are_counted() {
        let mut a = Profile::from_records(&sample_trace().records());
        let b = Profile::from_records(&sample_trace().records());
        a.merge_from(&b);
        assert_eq!(a.stage("md_window").unwrap().count, 4);
        assert_eq!(a.event_count("rule1_verdict"), 2);

        let t = Telemetry::buffering();
        let s = t.span_open(0, "lost", None, &[]).unwrap();
        t.span_close(5, SpanId(s.0 + 7)); // close of a span never opened
        let p = Profile::from_records(&t.records());
        assert_eq!(p.dropped_closes, 1);
        assert_eq!(p.unclosed, 1);
        assert!(p.table().contains("dropped closes 1"), "{}", p.table());
    }

    #[test]
    fn table_sorts_by_self_ticks() {
        let p = Profile::from_records(&sample_trace().records());
        let table = p.table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("span"), "{table}");
        assert!(lines[1].starts_with("md_window"), "md_window has most self time: {table}");
        assert!(lines[2].starts_with("day"), "{table}");
    }
}
