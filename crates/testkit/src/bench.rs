//! A micro-benchmark timer with a `criterion`-shaped surface.
//!
//! The workspace's bench targets (`harness = false`) were written
//! against `criterion`'s API. This module vendors the minimal subset
//! they use — [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] /
//! [`criterion_main!`] — so the port is a one-line `use` change.
//!
//! Two run modes, chosen from the process arguments:
//!
//! - **measure** (`cargo bench` — cargo passes `--bench` to
//!   `harness = false` targets): warm up, calibrate iterations per
//!   sample to a minimum sample duration, take `sample_size` samples,
//!   and report min / median / max ns per iteration;
//! - **smoke** (anything else, e.g. a stray `cargo test` run of the
//!   target): execute each routine exactly once to prove it still
//!   runs, without burning CPU time in tier-1 verification.
//!
//! Any non-flag command-line argument is treated as a substring
//! filter on benchmark names, mirroring `cargo bench <filter>`.

pub use std::hint::black_box;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counting wrapper around the system allocator.
///
/// Register it as the process-wide allocator to count heap traffic:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: fadewich_testkit::bench::CountingAllocator =
///     fadewich_testkit::bench::CountingAllocator;
/// ```
///
/// Counters are process-global (`relaxed` atomics; the overhead is two
/// uncontended fetch-adds per allocation) and read via
/// [`alloc_counts`]. Callers measure a region by snapshotting before
/// and after and subtracting — see [`AllocCounts::since`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// The one unsafe block in the workspace's own code: delegating to the
// system allocator verbatim, with counter bumps on the allocating
// entry points. Safety: every method forwards its arguments unchanged
// to `System`, so `System`'s contract is upheld by construction.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// A snapshot of the process-global allocation counters.
///
/// Meaningful only when [`CountingAllocator`] is registered as the
/// `#[global_allocator]`; otherwise both fields stay zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Allocating calls observed (`alloc` + `alloc_zeroed` + `realloc`).
    pub calls: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            calls: self.calls.wrapping_sub(earlier.calls),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Reads the current allocation counters.
pub fn alloc_counts() -> AllocCounts {
    AllocCounts {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Per-sample batching hint, mirroring `criterion::BatchSize`.
///
/// Only the variants the workspace uses are provided; the timer treats
/// them identically (each batch is one setup + one routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batches may be large.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Benchmark driver: collects and reports timings for named routines.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measure: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let measure = args.iter().any(|a| a == "--bench");
        let filters = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .collect();
        Criterion { sample_size: 20, measure, filters }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder-style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark if it passes the name filter.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut b = Bencher {
            measure: self.measure,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Minimum wall-clock time per timed sample; iterations per sample are
/// calibrated upward until one sample takes at least this long.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

impl Bencher {
    /// Times `routine` repeatedly; the returned value is black-boxed.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: grow iterations until a sample is
        // long enough for the clock to resolve it meaningfully.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= MIN_SAMPLE || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if !self.measure {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if !self.measure {
            println!("{name:<40} smoke ok (pass --bench to measure)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{name:<40} no samples collected");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples_ns[0];
        let max = *self.samples_ns.last().expect("non-empty");
        let median = self.samples_ns[self.samples_ns.len() / 2];
        println!(
            "{name:<40} median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

// Re-export the macros under `bench::` so ported call sites can write
// `use fadewich_testkit::bench::{criterion_group, criterion_main, ...}`
// exactly as they previously imported from `criterion`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut count = 0usize;
        let mut b = Bencher { measure: false, sample_size: 10, samples_ns: Vec::new() };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut b = Bencher { measure: true, sample_size: 5, samples_ns: Vec::new() };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup_in_smoke() {
        let mut setups = 0usize;
        let mut runs = 0usize;
        let mut b = Bencher { measure: false, sample_size: 10, samples_ns: Vec::new() };
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| {
                runs += 1;
                v.len()
            },
            BatchSize::SmallInput,
        );
        assert_eq!((setups, runs), (1, 1));
    }

    #[test]
    fn name_filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 3,
            measure: false,
            filters: vec!["matching".to_string()],
        };
        let mut ran = Vec::new();
        c.bench_function("matching_one", |b| {
            b.iter(|| ());
            ran.push("matching_one");
        });
        c.bench_function("other", |b| {
            b.iter(|| ());
            ran.push("other");
        });
        assert_eq!(ran, vec!["matching_one"]);
    }

    #[test]
    fn alloc_counts_since_subtracts_fields() {
        let a = AllocCounts { calls: 10, bytes: 1_000 };
        let b = AllocCounts { calls: 14, bytes: 1_256 };
        assert_eq!(b.since(a), AllocCounts { calls: 4, bytes: 256 });
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
