//! Offline test/bench harness for the FADEWICH workspace.
//!
//! The container this repository builds in has **no network access**,
//! so external dev-dependencies (`proptest`, `criterion`) can never be
//! resolved. This crate vendors the two capabilities the workspace
//! actually uses, with zero dependencies beyond the in-repo
//! [`fadewich_stats::rng::Rng`]:
//!
//! - [`prop`] — a property-testing harness: seeded case generation,
//!   composable strategies, and greedy shrinking of failing inputs,
//!   driven by the [`property!`] macro;
//! - [`bench`] — a micro-benchmark timer with a `criterion`-shaped
//!   surface (`Criterion`, `Bencher::iter`, `criterion_group!`,
//!   `criterion_main!`) so the bench files port with minimal diffs.
//!   Bench binaries run a one-iteration smoke pass under `cargo test`
//!   and measure for real only under `cargo bench`.
//!
//! # Examples
//!
//! ```
//! use fadewich_testkit::prop::{usizes, vecs};
//!
//! fadewich_testkit::property! {
//!     #[cases(64)]
//!     fn reverse_twice_is_identity(xs in vecs(usizes(0..100), 0..20)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         assert_eq!(xs, ys);
//!     }
//! }
//! # fn main() {}
//! ```

// `deny` rather than `forbid`: the counting allocator in [`bench`]
// needs one scoped `unsafe impl GlobalAlloc`, carved out with an
// explicit `#[allow(unsafe_code)]` at that single site.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod prop;
