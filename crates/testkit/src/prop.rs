//! A minimal property-testing harness with shrinking.
//!
//! A [`Strategy`] generates random values from the in-repo
//! deterministic [`Rng`] and proposes *simpler* variants of a failing
//! value ([`Strategy::shrink`]). The [`check`] runner generates
//! `cases` inputs, runs the property under `catch_unwind`, and on the
//! first failure greedily shrinks the input before reporting, so the
//! panic message shows a minimal counterexample plus the seed needed
//! to replay it (`TESTKIT_SEED=<seed> cargo test <name>`).
//!
//! The [`crate::property!`] macro wires this into `#[test]` functions
//! with a `proptest!`-like binding syntax, which keeps the ported
//! call sites close to their upstream originals.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fadewich_stats::rng::Rng;

/// Cases per property when no `#[cases(N)]` attribute is given.
pub const DEFAULT_CASES: usize = 64;

/// Hard cap on shrink-candidate evaluations per failure.
const SHRINK_BUDGET: usize = 800;

/// Payload type used by [`crate::assume!`] to discard a case without
/// failing the property.
#[derive(Debug, Clone, Copy)]
pub struct Discard;

/// A generator of random test inputs that knows how to simplify them.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly simpler candidates for a failing value.
    ///
    /// Returning an empty vector disables shrinking for this
    /// strategy; the runner's budget bounds the search regardless.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// --- Scalar strategies -------------------------------------------------

/// Uniform `f64` in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in the given half-open range.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
pub fn f64s(range: std::ops::Range<f64>) -> F64Range {
    assert!(
        range.start.is_finite() && range.end.is_finite() && range.start < range.end,
        "invalid f64 range {range:?}"
    );
    F64Range { lo: range.start, hi: range.end }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut push = |c: f64| {
            if c >= self.lo && c < self.hi && (c - value).abs() > 1e-9 * (1.0 + value.abs()) {
                out.push(c);
            }
        };
        push(0.0);
        push(self.lo);
        push(self.lo + (value - self.lo) / 2.0);
        out
    }
}

macro_rules! int_strategy {
    ($(#[$doc:meta])* $name:ident, $ctor:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            lo: $ty,
            hi: $ty,
        }

        /// Uniform integer in the given half-open range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn $ctor(range: std::ops::Range<$ty>) -> $name {
            assert!(range.start < range.end, "invalid integer range");
            $name { lo: range.start, hi: range.end }
        }

        impl Strategy for $name {
            type Value = $ty;

            fn generate(&self, rng: &mut Rng) -> $ty {
                self.lo + rng.below((self.hi - self.lo) as usize) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let mut out = Vec::new();
                let mut push = |c: $ty| {
                    if c >= self.lo && c < self.hi && c != *value && !out.contains(&c) {
                        out.push(c);
                    }
                };
                push(self.lo);
                // Halving-distance candidates converge on the failure
                // boundary in O(log range) greedy steps.
                let mut d = (*value - self.lo) / 2;
                while d > 0 {
                    push(*value - d);
                    d /= 2;
                }
                if *value > self.lo {
                    push(*value - 1);
                }
                out
            }
        }
    };
}

int_strategy!(
    /// Uniform `usize` range strategy.
    UsizeRange, usizes, usize
);
int_strategy!(
    /// Uniform `u64` range strategy.
    U64Range, u64s, u64
);
int_strategy!(
    /// Uniform `u32` range strategy.
    U32Range, u32s, u32
);

/// Biased boolean: `true` with probability `p`; shrinks toward `false`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedBool {
    p: f64,
}

/// `true` with probability `p` (clamped to `[0, 1]`).
pub fn bools(p: f64) -> WeightedBool {
    WeightedBool { p }
}

impl Strategy for WeightedBool {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bernoulli(self.p)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value { vec![false] } else { Vec::new() }
    }
}

// --- Combinators -------------------------------------------------------

/// Vector of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len_lo: usize,
    len_hi: usize,
}

/// A vector whose length is uniform in `len` and whose elements come
/// from `elem`. Shrinks by dropping elements (respecting the minimum
/// length) and by shrinking individual elements.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vecs<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "invalid length range");
    VecStrategy { elem, len_lo: len.start, len_hi: len.end }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let len = self.len_lo + rng.below(self.len_hi - self.len_lo);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: halve, then drop single elements.
        if value.len() / 2 >= self.len_lo && value.len() > 1 {
            out.push(value[..value.len() / 2].to_vec());
            out.push(value[value.len() / 2..].to_vec());
        }
        if value.len() > self.len_lo {
            for i in (0..value.len()).take(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks (bounded to the leading elements).
        for i in (0..value.len()).take(8) {
            for cand in self.elem.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// A strategy transformed by a pure function (no shrinking through
/// the map — shrink the source strategy instead where it matters).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

/// Maps a strategy's output through `f`.
pub fn map<S, F, T>(source: S, f: F) -> Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Clone + Debug,
{
    Map { source, f }
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Clone + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A/0);
tuple_strategy!(A/0, B/1);
tuple_strategy!(A/0, B/1, C/2);
tuple_strategy!(A/0, B/1, C/2, D/3);

// --- Runner ------------------------------------------------------------

enum CaseOutcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_case<V: Clone>(test: &dyn Fn(V), value: V) -> CaseOutcome {
    quiet_panics(|| match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<Discard>().is_some() {
                CaseOutcome::Discard
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Fail(s.clone())
            } else {
                CaseOutcome::Fail("property panicked with a non-string payload".to_string())
            }
        }
    })
}

/// Deterministic 64-bit hash of a test name (FNV-1a), so each property
/// gets its own stable stream without sharing state across tests.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The base seed: `TESTKIT_SEED` env override, else 0.
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn shrink_failure<S: Strategy>(
    strategy: &S,
    test: &dyn Fn(S::Value),
    mut value: S::Value,
    mut message: String,
) -> (S::Value, String, usize) {
    let mut budget = SHRINK_BUDGET;
    let mut steps = 0usize;
    'outer: loop {
        for cand in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let CaseOutcome::Fail(m) = run_case(test, cand.clone()) {
                value = cand;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, message, steps)
}

/// Runs a property: `cases` generated inputs, shrinking on failure.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails
/// for some input, or when too many cases are discarded via
/// [`crate::assume!`].
pub fn check<S: Strategy>(name: &str, cases: usize, strategy: S, test: impl Fn(S::Value)) {
    let seed = base_seed() ^ name_hash(name);
    let root = Rng::seed_from_u64(seed);
    let mut tested = 0usize;
    let mut discarded = 0usize;
    let mut case_index = 0u64;
    while tested < cases {
        let mut rng = root.fork(case_index);
        case_index += 1;
        let value = strategy.generate(&mut rng);
        match run_case(&test, value.clone()) {
            CaseOutcome::Pass => tested += 1,
            CaseOutcome::Discard => {
                discarded += 1;
                assert!(
                    discarded <= cases.saturating_mul(16),
                    "property '{name}': too many discarded cases ({discarded}); \
                     weaken the assume! precondition"
                );
            }
            CaseOutcome::Fail(message) => {
                let (minimal, message, steps) =
                    shrink_failure(&strategy, &test, value, message);
                panic!(
                    "property '{name}' failed (case {tested}, {steps} shrink steps)\n\
                     minimal input: {minimal:?}\n\
                     assertion: {message}\n\
                     replay with: TESTKIT_SEED={}",
                    base_seed()
                );
            }
        }
    }
}

// --- Panic-noise suppression ------------------------------------------

thread_local! {
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with the default panic hook silenced on this thread, so
/// the generate/shrink loop does not spam "thread panicked" lines for
/// every candidate it probes. The final report is a plain `panic!`
/// raised outside this scope.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(std::cell::Cell::get) {
                default_hook(info);
            }
        }));
    });
    let was = QUIET.with(|q| q.replace(true));
    let r = f();
    QUIET.with(|q| q.set(was));
    r
}

/// Discards the current case unless `cond` holds (the analogue of
/// `prop_assume!`): the runner generates a replacement case instead of
/// counting a failure.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::prop::Discard);
        }
    };
}

/// Declares property-based `#[test]` functions.
///
/// ```ignore
/// fadewich_testkit::property! {
///     #[cases(128)]
///     fn sum_commutes(a in f64s(-1e3..1e3), b in f64s(-1e3..1e3)) {
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each binding draws from its strategy; the body runs once per case
/// and fails the property by panicking (plain `assert!` works). The
/// optional `#[cases(N)]` attribute overrides
/// [`prop::DEFAULT_CASES`](crate::prop::DEFAULT_CASES).
#[macro_export]
macro_rules! property {
    () => {};
    (
        $(#[cases($cases:expr)])?
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            #[allow(unused_mut, unused_assignments)]
            let mut cases = $crate::prop::DEFAULT_CASES;
            $(cases = $cases;)?
            $crate::prop::check(
                concat!(module_path!(), "::", stringify!($name)),
                cases,
                ($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::property! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_generation_in_range() {
        let mut rng = Rng::seed_from_u64(1);
        let s = f64s(-3.0..7.0);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-3.0..7.0).contains(&v));
        }
        let u = usizes(2..9);
        for _ in 0..1000 {
            let v = u.generate(&mut rng);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = vecs(u64s(0..1000), 1..20);
        let a = s.generate(&mut Rng::seed_from_u64(9));
        let b = s.generate(&mut Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_candidates_stay_in_range() {
        let s = usizes(3..50);
        for cand in s.shrink(&40) {
            assert!((3..50).contains(&cand));
            assert_ne!(cand, 40);
        }
        let f = f64s(1.0..10.0);
        for cand in f.shrink(&8.0) {
            assert!((1.0..10.0).contains(&cand));
        }
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let s = vecs(usizes(0..10), 3..20);
        let v = s.generate(&mut Rng::seed_from_u64(4));
        for cand in s.shrink(&v) {
            assert!(cand.len() >= 3, "shrunk below min length: {cand:?}");
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vec() {
        // Property "no vector contains an element >= 50" fails; the
        // shrunk counterexample should be a single offending element.
        let strategy = vecs(usizes(0..100), 0..30);
        let test = |v: Vec<usize>| assert!(v.iter().all(|&x| x < 50));
        let mut rng = Rng::seed_from_u64(7);
        let failing = loop {
            let v = strategy.generate(&mut rng);
            if v.iter().any(|&x| x >= 50) {
                break v;
            }
        };
        let (minimal, _, _) =
            shrink_failure(&strategy, &test, failing, String::new());
        assert_eq!(minimal.len(), 1, "minimal counterexample: {minimal:?}");
        assert_eq!(minimal[0], 50, "element should shrink to the boundary");
    }

    #[test]
    fn discard_outcome_is_not_a_failure() {
        let outcome = run_case(
            &|x: usize| {
                crate::assume!(x > 100);
            },
            5usize,
        );
        assert!(matches!(outcome, CaseOutcome::Discard));
    }

    #[test]
    #[should_panic(expected = "minimal input")]
    fn check_reports_failures() {
        check("testkit::self_test", 64, usizes(0..1000), |x| {
            assert!(x < 900, "found a large value");
        });
    }

    property! {
        fn macro_smoke(xs in vecs(f64s(-10.0..10.0), 1..10), k in usizes(1..4)) {
            assert!(xs.len() >= 1 && k >= 1);
        }

        #[cases(16)]
        fn macro_with_cases_and_assume(n in usizes(0..50)) {
            crate::assume!(n % 2 == 0);
            assert_eq!(n % 2, 0);
        }
    }
}
