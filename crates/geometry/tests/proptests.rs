//! Property-based tests of the geometry substrate.

use fadewich_geometry::{Path, Point, Rect, Segment};
use fadewich_testkit::prop::{f64s, map, vecs, Strategy};

fn pt() -> impl Strategy<Value = Point> {
    map((f64s(-100.0..100.0), f64s(-100.0..100.0)), |(x, y)| Point::new(x, y))
}

fadewich_testkit::property! {
    fn distance_is_symmetric_and_triangular(a in pt(), b in pt(), c in pt()) {
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
        assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        assert!(a.distance_to(a) == 0.0);
    }

    fn segment_distance_below_endpoint_distances(p in pt(), a in pt(), b in pt()) {
        let seg = Segment::new(a, b);
        let d = seg.distance_to_point(p);
        assert!(d <= p.distance_to(a) + 1e-9);
        assert!(d <= p.distance_to(b) + 1e-9);
        assert!(d >= 0.0);
        // The closest point is on the segment.
        let cp = seg.closest_point(p);
        assert!((cp.distance_to(p) - d).abs() < 1e-9);
    }

    fn point_on_segment_has_zero_distance(a in pt(), b in pt(), t in f64s(0.0..1.0)) {
        let seg = Segment::new(a, b);
        let on = seg.point_at(t);
        assert!(seg.distance_to_point(on) < 1e-7);
    }

    fn path_point_at_is_continuous(
        waypoints in vecs(pt(), 1..8),
        s in f64s(0.0..500.0),
    ) {
        let path = Path::new(waypoints);
        let p1 = path.point_at(s);
        let p2 = path.point_at(s + 0.01);
        // Moving 1 cm of arclength moves at most 1 cm in space.
        assert!(p1.distance_to(p2) <= 0.01 + 1e-9);
    }

    fn path_length_at_least_endpoint_distance(waypoints in vecs(pt(), 2..8)) {
        let first = waypoints[0];
        let last = *waypoints.last().unwrap();
        let path = Path::new(waypoints);
        assert!(path.length() + 1e-9 >= first.distance_to(last));
        // Reversal preserves length.
        assert!((path.reversed().length() - path.length()).abs() < 1e-9);
    }

    fn rect_clamp_is_inside_and_idempotent(p in pt(), a in pt(), b in pt()) {
        let r = Rect::from_corners(a, b);
        let c = r.clamp_point(p);
        assert!(r.contains(c));
        assert_eq!(r.clamp_point(c), c);
        if r.contains(p) {
            assert_eq!(c, p);
        }
    }
}
