//! Waypoint paths and arclength interpolation.
//!
//! A user leaving a workstation walks a polyline: stand up, round the
//! desk, head for the door. The trajectory model needs the walker's
//! position as a function of distance covered, which [`Path`] provides
//! via arclength parameterization.

use crate::point::Point;
use crate::segment::Segment;

/// A polyline through an ordered list of waypoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    waypoints: Vec<Point>,
    /// Cumulative arclength at each waypoint; `cum[0] = 0`.
    cum: Vec<f64>,
}

impl Path {
    /// Builds a path through `waypoints`.
    ///
    /// Consecutive duplicate waypoints are tolerated (they contribute
    /// zero length).
    ///
    /// # Panics
    ///
    /// Panics if fewer than one waypoint is given or any coordinate is
    /// non-finite.
    pub fn new(waypoints: Vec<Point>) -> Path {
        assert!(!waypoints.is_empty(), "a path needs at least one waypoint");
        assert!(waypoints.iter().all(|p| p.is_finite()), "non-finite waypoint");
        let mut cum = Vec::with_capacity(waypoints.len());
        cum.push(0.0);
        for w in waypoints.windows(2) {
            let last = *cum.last().expect("cum starts non-empty");
            cum.push(last + w[0].distance_to(w[1]));
        }
        Path { waypoints, cum }
    }

    /// Total arclength in metres.
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum is non-empty")
    }

    /// The waypoints the path passes through.
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Position after covering `s` metres from the start.
    ///
    /// `s` is clamped to `[0, length]`, so callers can advance a walker
    /// past the end and get the final waypoint.
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        // Binary search for the containing segment.
        let idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arclength"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if idx + 1 >= self.waypoints.len() {
            return *self.waypoints.last().expect("non-empty");
        }
        let seg_len = self.cum[idx + 1] - self.cum[idx];
        if seg_len <= 0.0 {
            return self.waypoints[idx];
        }
        let t = (s - self.cum[idx]) / seg_len;
        self.waypoints[idx].lerp(self.waypoints[idx + 1], t)
    }

    /// The path's segments in order (empty for a single waypoint).
    pub fn segments(&self) -> Vec<Segment> {
        self.waypoints
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .collect()
    }

    /// The reversed path (used for "enter office" = reverse of "leave").
    pub fn reversed(&self) -> Path {
        let mut wp = self.waypoints.clone();
        wp.reverse();
        Path::new(wp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn length_of_l_shape() {
        let path = Path::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)]);
        assert_eq!(path.length(), 7.0);
    }

    #[test]
    fn interpolation_within_segments() {
        let path = Path::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)]);
        assert_eq!(path.point_at(0.0), p(0.0, 0.0));
        assert_eq!(path.point_at(1.5), p(1.5, 0.0));
        assert_eq!(path.point_at(3.0), p(3.0, 0.0));
        assert_eq!(path.point_at(5.0), p(3.0, 2.0));
        assert_eq!(path.point_at(7.0), p(3.0, 4.0));
    }

    #[test]
    fn clamping_beyond_ends() {
        let path = Path::new(vec![p(0.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(path.point_at(-1.0), p(0.0, 0.0));
        assert_eq!(path.point_at(99.0), p(2.0, 0.0));
    }

    #[test]
    fn single_waypoint_path() {
        let path = Path::new(vec![p(1.0, 1.0)]);
        assert_eq!(path.length(), 0.0);
        assert_eq!(path.point_at(0.0), p(1.0, 1.0));
        assert_eq!(path.point_at(5.0), p(1.0, 1.0));
        assert!(path.segments().is_empty());
    }

    #[test]
    fn duplicate_waypoints_tolerated() {
        let path = Path::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0)]);
        assert_eq!(path.length(), 1.0);
        assert_eq!(path.point_at(0.5), p(0.5, 0.0));
    }

    #[test]
    fn reversal() {
        let path = Path::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)]);
        let rev = path.reversed();
        assert_eq!(rev.length(), path.length());
        assert_eq!(rev.point_at(0.0), p(3.0, 4.0));
        assert_eq!(rev.point_at(7.0), p(0.0, 0.0));
    }

    #[test]
    fn segments_cover_waypoints() {
        let path = Path::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)]);
        let segs = path.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].b, segs[1].a);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_path_panics() {
        Path::new(vec![]);
    }
}
