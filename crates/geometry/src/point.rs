//! Points and vectors in the 2-D office plane.
//!
//! Sensors sit roughly at desk height on the walls and human torsos
//! are, for RSSI-obstruction purposes, vertical cylinders, so the paper
//! world reduces to two dimensions: metres east (`x`) and metres north
//! (`y`) from the office's south-west corner.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or displacement vector) in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Metres east of the origin.
    pub x: f64,
    /// Metres north of the origin.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to another point.
    ///
    /// ```
    /// use fadewich_geometry::Point;
    /// let d = Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    pub fn distance_to(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Euclidean norm when interpreted as a vector.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm (avoids the square root in hot loops).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with another vector.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (signed area of the parallelogram).
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Unit vector in this direction, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, s: f64) -> Point {
        Point::new(self.x / s, self.y / s)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn norms_and_products() {
        let v = Point::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.dot(Point::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Point::new(1.0, 0.0)), -4.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Point::new(0.0, 5.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point::ORIGIN.normalized(), None);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        assert_eq!(format!("{p}"), "(1.50, 2.50)");
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
