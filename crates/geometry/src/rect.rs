//! Axis-aligned rectangles — rooms and zones.

use crate::point::Point;

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle anchored at the origin with the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is negative or non-finite.
    pub fn with_size(width: f64, height: f64) -> Rect {
        assert!(
            width.is_finite() && height.is_finite() && width >= 0.0 && height >= 0.0,
            "invalid rectangle size {width} x {height}"
        );
        Rect { min: Point::ORIGIN, max: Point::new(width, height) }
    }

    /// South-west corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// North-east corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (east-west extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the rectangle.
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// Shrinks the rectangle by `margin` on every side (empty at the
    /// center if the margin exceeds half the extent).
    pub fn shrunk(&self, margin: f64) -> Rect {
        let c = self.center();
        Rect {
            min: Point::new((self.min.x + margin).min(c.x), (self.min.y + margin).min(c.y)),
            max: Point::new((self.max.x - margin).max(c.x), (self.max.y - margin).max(c.y)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let r = Rect::from_corners(Point::new(4.0, 1.0), Point::new(0.0, 3.0));
        assert_eq!(r.min(), Point::new(0.0, 1.0));
        assert_eq!(r.max(), Point::new(4.0, 3.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
    }

    #[test]
    fn office_size() {
        let r = Rect::with_size(6.0, 3.0);
        assert_eq!(r.center(), Point::new(3.0, 1.5));
        assert!(r.contains(Point::new(6.0, 3.0)));
        assert!(!r.contains(Point::new(6.01, 3.0)));
        assert!(!r.contains(Point::new(-0.01, 1.0)));
    }

    #[test]
    fn clamping() {
        let r = Rect::with_size(6.0, 3.0);
        assert_eq!(r.clamp_point(Point::new(9.0, -1.0)), Point::new(6.0, 0.0));
        assert_eq!(r.clamp_point(Point::new(2.0, 2.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn shrink() {
        let r = Rect::with_size(6.0, 3.0).shrunk(0.5);
        assert_eq!(r.min(), Point::new(0.5, 0.5));
        assert_eq!(r.max(), Point::new(5.5, 2.5));
        // Over-shrinking collapses to the center instead of inverting.
        let tiny = Rect::with_size(1.0, 1.0).shrunk(10.0);
        assert!(tiny.width() >= 0.0 && tiny.height() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid rectangle size")]
    fn negative_size_panics() {
        Rect::with_size(-1.0, 2.0);
    }
}
