//! 2-D geometry substrate for the FADEWICH reproduction.
//!
//! The paper's office (Fig. 6) is a 6 m × 3 m room with nine wall-
//! mounted sensors, three workstations and a single door. Everything
//! the radio-channel and behaviour simulators need from geometry lives
//! here: points, link segments (with the hot point-to-segment distance
//! used by the body-shadowing model), rectangles, waypoint paths with
//! arclength interpolation, and a floor-plan raster grid for the
//! heatmap figure.
//!
//! # Examples
//!
//! How far is a walking user from the `d2 → d7` link?
//!
//! ```
//! use fadewich_geometry::{Point, Segment};
//!
//! let link = Segment::new(Point::new(1.2, 3.0), Point::new(4.5, 0.0));
//! let user = Point::new(2.8, 1.5);
//! assert!(link.distance_to_point(user) < 0.2); // practically on the link
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod path;
pub mod point;
pub mod rect;
pub mod segment;

pub use grid::FloorGrid;
pub use path::Path;
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
