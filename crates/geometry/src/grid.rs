//! Rasterization of the floor plan for heatmap figures.
//!
//! Fig. 12 of the paper paints stream importance (RMI) onto the office
//! planimetry: every link segment deposits its weight into the cells it
//! passes through, and the accumulated grid is rendered as a heatmap.
//! [`FloorGrid`] implements exactly that accumulation plus an ASCII
//! renderer used by the `reproduce` binary.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// A uniform grid of accumulation cells over a rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorGrid {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<f64>,
}

impl FloorGrid {
    /// Creates an all-zero grid of `cols × rows` cells over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the bounds are degenerate.
    pub fn new(bounds: Rect, cols: usize, rows: usize) -> FloorGrid {
        assert!(cols > 0 && rows > 0, "grid needs at least one cell");
        assert!(bounds.width() > 0.0 && bounds.height() > 0.0, "degenerate grid bounds");
        FloorGrid { bounds, cols, rows, cells: vec![0.0; cols * rows] }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The grid's bounding rectangle.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Value of cell `(col, row)`, row 0 at the south edge.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        self.cells[row * self.cols + col]
    }

    /// Cell index containing `p` (clamped to the grid).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let tx = (p.x - self.bounds.min().x) / self.bounds.width();
        let ty = (p.y - self.bounds.min().y) / self.bounds.height();
        let col = ((tx * self.cols as f64).floor() as i64).clamp(0, self.cols as i64 - 1);
        let row = ((ty * self.rows as f64).floor() as i64).clamp(0, self.rows as i64 - 1);
        (col as usize, row as usize)
    }

    /// Adds `weight` to the cell containing `p`.
    pub fn deposit_point(&mut self, p: Point, weight: f64) {
        let (c, r) = self.cell_of(p);
        self.cells[r * self.cols + c] += weight;
    }

    /// Deposits `weight` uniformly along a segment by sampling it at
    /// sub-cell resolution; the total deposited mass is `weight`
    /// regardless of segment length.
    pub fn deposit_segment(&mut self, seg: &Segment, weight: f64) {
        let cell_diag = (self.bounds.width() / self.cols as f64)
            .min(self.bounds.height() / self.rows as f64);
        let steps = ((seg.length() / (cell_diag * 0.5)).ceil() as usize).max(1);
        let w = weight / (steps + 1) as f64;
        for i in 0..=steps {
            self.deposit_point(seg.point_at(i as f64 / steps as f64), w);
        }
    }

    /// Maximum cell value (0 for an untouched grid).
    pub fn max_value(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the grid as ASCII art, north row first, using a ramp of
    /// shade characters scaled to the maximum cell.
    pub fn render_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.max_value();
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let v = self.get(col, row);
                let idx = if max > 0.0 {
                    ((v / max) * (RAMP.len() - 1) as f64).round() as usize
                } else {
                    0
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FloorGrid {
        FloorGrid::new(Rect::with_size(6.0, 3.0), 12, 6)
    }

    #[test]
    fn cell_lookup() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(0.1, 0.1)), (0, 0));
        assert_eq!(g.cell_of(Point::new(5.9, 2.9)), (11, 5));
        assert_eq!(g.cell_of(Point::new(3.0, 1.5)), (6, 3));
        // Clamped outside.
        assert_eq!(g.cell_of(Point::new(-1.0, 9.0)), (0, 5));
    }

    #[test]
    fn point_deposit() {
        let mut g = grid();
        g.deposit_point(Point::new(1.0, 1.0), 2.5);
        assert_eq!(g.get(2, 2), 2.5);
        assert_eq!(g.max_value(), 2.5);
    }

    #[test]
    fn segment_deposit_conserves_mass() {
        let mut g = grid();
        g.deposit_segment(
            &Segment::new(Point::new(0.2, 0.2), Point::new(5.8, 2.8)),
            3.0,
        );
        let total: f64 = (0..12)
            .flat_map(|c| (0..6).map(move |r| (c, r)))
            .map(|(c, r)| g.get(c, r))
            .sum();
        assert!((total - 3.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn segment_deposit_touches_both_end_cells() {
        let mut g = grid();
        g.deposit_segment(
            &Segment::new(Point::new(0.2, 0.2), Point::new(5.8, 0.2)),
            1.0,
        );
        assert!(g.get(0, 0) > 0.0);
        assert!(g.get(11, 0) > 0.0);
        assert_eq!(g.get(5, 5), 0.0);
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut g = grid();
        g.deposit_point(Point::new(3.0, 1.5), 1.0);
        let art = g.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
        assert!(art.contains('@'));
    }

    #[test]
    fn empty_grid_renders_blank() {
        let art = grid().render_ascii();
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        FloorGrid::new(Rect::with_size(1.0, 1.0), 0, 4);
    }
}
