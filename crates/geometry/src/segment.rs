//! Line segments — the geometry of a radio link.
//!
//! Each directed RSSI stream `d_i → d_j` corresponds to the segment
//! between the two sensor positions. The body-shadowing model needs,
//! per tick and per body, the distance from the body to that segment;
//! [`Segment::distance_to_point`] is the single hottest geometric
//! routine in the simulator.

use crate::point::Point;

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from endpoints.
    pub const fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance_to(self.b)
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest
    /// to `p` (0 at `a`, 1 at `b`). A degenerate segment returns 0.
    pub fn closest_param(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let denom = ab.norm_sq();
        if denom <= 0.0 {
            return 0.0;
        }
        ((p - self.a).dot(ab) / denom).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.closest_param(p))
    }

    /// Shortest distance from `p` to the segment.
    ///
    /// ```
    /// use fadewich_geometry::{Point, Segment};
    /// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
    /// assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
    /// assert_eq!(s.distance_to_point(Point::new(-4.0, 3.0)), 5.0); // clamped to endpoint
    /// ```
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).distance_to(p)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Whether `p` lies within `radius` of the segment — i.e. whether a
    /// body of that effective radius obstructs the link at all.
    pub fn is_obstructed_by(&self, p: Point, radius: f64) -> bool {
        self.distance_to_point(p) <= radius
    }

    /// Whether two segments properly intersect (shared endpoints count).
    ///
    /// Used by the trajectory planner to keep walking paths from
    /// crossing walls, and by the Fig. 12 renderer to rasterize streams
    /// onto the floor-plan grid.
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Point, b: Point, c: Point) -> bool {
            // c collinear with a-b: is it within the bounding box?
            c.x >= a.x.min(b.x) - 1e-12
                && c.x <= a.x.max(b.x) + 1e-12
                && c.y >= a.y.min(b.y) - 1e-12
                && c.y <= a.y.max(b.y) + 1e-12
        }
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(other.a, other.b, self.a))
            || (d2 == 0.0 && on_segment(other.a, other.b, self.b))
            || (d3 == 0.0 && on_segment(self.a, self.b, other.a))
            || (d4 == 0.0 && on_segment(self.a, self.b, other.b))
    }

    /// Point at fraction `t` along the segment (not clamped).
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 6.0, 8.0);
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(3.0, 4.0));
    }

    #[test]
    fn distance_perpendicular_and_clamped() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 2.0)), 2.0);
        // Beyond the b endpoint.
        assert!((s.distance_to_point(Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // On the segment.
        assert_eq!(s.distance_to_point(Point::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn closest_param_bounds() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_param(Point::new(-5.0, 1.0)), 0.0);
        assert_eq!(s.closest_param(Point::new(15.0, 1.0)), 1.0);
        assert!((s.closest_param(Point::new(2.5, 3.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_param(Point::new(5.0, 5.0)), 0.0);
        assert!((s.distance_to_point(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn obstruction_radius() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert!(s.is_obstructed_by(Point::new(2.0, 0.3), 0.35));
        assert!(!s.is_obstructed_by(Point::new(2.0, 0.5), 0.35));
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 4.0, 4.0);
        let b = seg(0.0, 4.0, 4.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = seg(0.0, 0.0, 4.0, 0.0);
        let b = seg(0.0, 1.0, 4.0, 1.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn touching_endpoint_counts() {
        let a = seg(0.0, 0.0, 2.0, 2.0);
        let b = seg(2.0, 2.0, 4.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_disjoint_do_not_intersect() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!a.intersects(&b));
    }
}
