//! Channel-integrity guard — operationalizing the paper's §V-C claim.
//!
//! MD's anomaly test is one-sided: it fires when the summed variance
//! *rises*. A saturation jammer (see `fadewich-rfchannel::jamming`)
//! attacks the other side: it pins nearby receivers to a constant
//! reading, collapsing per-stream variance to (near) zero, which can
//! mask a departure on the affected links. The paper asserts such
//! manipulation "is detectable" because one transmission is heard by
//! many devices; this guard is the detector that makes the assertion
//! concrete: it learns each stream's normal variance floor and raises
//! an integrity alarm when any stream goes *implausibly quiet* for a
//! sustained period.

use fadewich_stats::rolling::RollingStd;

/// Guard parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardParams {
    /// Rolling window for per-stream std (s).
    pub window_s: f64,
    /// Ticks of calibration used to learn each stream's noise floor.
    pub learn_ticks: usize,
    /// A stream is "silent" while its rolling std is below this
    /// fraction of its learned floor.
    pub floor_fraction: f64,
    /// Consecutive silent seconds before the alarm fires.
    pub alarm_after_s: f64,
}

impl Default for GuardParams {
    fn default() -> Self {
        GuardParams {
            window_s: 2.0,
            learn_ticks: 300,
            floor_fraction: 0.25,
            alarm_after_s: 3.0,
        }
    }
}

/// An integrity alarm: a stream went implausibly quiet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityAlarm {
    /// The offending stream index.
    pub stream: usize,
    /// When the alarm fired (tick).
    pub tick: usize,
    /// The stream's learned floor.
    pub floor: f64,
    /// Its rolling std at alarm time.
    pub observed: f64,
}

/// The online integrity guard.
#[derive(Debug, Clone)]
pub struct IntegrityGuard {
    params: GuardParams,
    tick_hz: f64,
    windows: Vec<RollingStd>,
    /// Learned per-stream variance floors (mean rolling std during
    /// calibration).
    floors: Vec<f64>,
    floor_sums: Vec<f64>,
    floor_counts: usize,
    learned: bool,
    silent_runs: Vec<usize>,
    alarms: Vec<IntegrityAlarm>,
}

impl IntegrityGuard {
    /// Creates a guard over `n_streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0` or `tick_hz <= 0`.
    pub fn new(n_streams: usize, tick_hz: f64, params: GuardParams) -> IntegrityGuard {
        assert!(n_streams > 0, "guard needs streams");
        assert!(tick_hz > 0.0, "tick rate must be positive");
        let window = (params.window_s * tick_hz).round().max(2.0) as usize;
        IntegrityGuard {
            params,
            tick_hz,
            windows: vec![RollingStd::new(window); n_streams],
            floors: vec![0.0; n_streams],
            floor_sums: vec![0.0; n_streams],
            floor_counts: 0,
            learned: false,
            silent_runs: vec![0; n_streams],
            alarms: Vec::new(),
        }
    }

    /// Whether the noise floors have been learned.
    pub fn is_learned(&self) -> bool {
        self.learned
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[IntegrityAlarm] {
        &self.alarms
    }

    /// Feeds one tick; returns any alarms fired at this tick.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the stream count.
    pub fn step(&mut self, tick: usize, row: &[f64]) -> Vec<IntegrityAlarm> {
        assert_eq!(row.len(), self.windows.len(), "stream count mismatch");
        for (w, &x) in self.windows.iter_mut().zip(row) {
            w.push(x);
        }
        let warmup = self.windows[0].len() < 2;
        if warmup {
            return Vec::new();
        }
        if !self.learned {
            for (s, w) in self.windows.iter().enumerate() {
                self.floor_sums[s] += w.std_dev();
            }
            self.floor_counts += 1;
            if self.floor_counts >= self.params.learn_ticks {
                for (f, &sum) in self.floors.iter_mut().zip(&self.floor_sums) {
                    *f = sum / self.floor_counts as f64;
                }
                self.learned = true;
            }
            return Vec::new();
        }
        let alarm_ticks = (self.params.alarm_after_s * self.tick_hz).round().max(1.0) as usize;
        let mut fired = Vec::new();
        for (s, w) in self.windows.iter().enumerate() {
            let observed = w.std_dev();
            if observed < self.params.floor_fraction * self.floors[s] {
                self.silent_runs[s] += 1;
                if self.silent_runs[s] == alarm_ticks {
                    let alarm = IntegrityAlarm { stream: s, tick, floor: self.floors[s], observed };
                    self.alarms.push(alarm);
                    fired.push(alarm);
                }
            } else {
                self.silent_runs[s] = 0;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::rng::Rng;

    fn run_guard(silence_from: Option<usize>, streams: usize) -> Vec<IntegrityAlarm> {
        let mut guard = IntegrityGuard::new(streams, 5.0, GuardParams::default());
        let mut rng = Rng::seed_from_u64(4);
        for tick in 0..2_000 {
            let row: Vec<f64> = (0..streams)
                .map(|s| {
                    if s == 0 && silence_from.is_some_and(|from| tick >= from) {
                        -35.0 // pinned
                    } else {
                        -50.0 + rng.normal()
                    }
                })
                .collect();
            guard.step(tick, &row);
        }
        guard.alarms().to_vec()
    }

    #[test]
    fn healthy_channel_no_alarms() {
        assert!(run_guard(None, 6).is_empty());
    }

    #[test]
    fn saturated_stream_raises_alarm_quickly() {
        let alarms = run_guard(Some(1_000), 6);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        let a = alarms[0];
        assert_eq!(a.stream, 0);
        // Window drains (~10 ticks) + alarm_after (15 ticks).
        assert!(
            (1_010..=1_060).contains(&a.tick),
            "alarm at tick {} (expected shortly after 1000)",
            a.tick
        );
        assert!(a.observed < a.floor);
    }

    #[test]
    fn brief_quiet_spell_tolerated() {
        // 5 quiet ticks (1 s) < alarm_after (3 s): no alarm.
        let mut guard = IntegrityGuard::new(2, 5.0, GuardParams::default());
        let mut rng = Rng::seed_from_u64(5);
        for tick in 0..1_500 {
            let quiet = (1_000..1_005).contains(&tick);
            let row: Vec<f64> = (0..2)
                .map(|s| {
                    if s == 0 && quiet {
                        -35.0
                    } else {
                        -50.0 + rng.normal()
                    }
                })
                .collect();
            guard.step(tick, &row);
        }
        assert!(guard.alarms().is_empty(), "{:?}", guard.alarms());
    }

    #[test]
    fn learning_completes() {
        let mut guard = IntegrityGuard::new(3, 5.0, GuardParams::default());
        let mut rng = Rng::seed_from_u64(6);
        assert!(!guard.is_learned());
        for tick in 0..400 {
            let row: Vec<f64> = (0..3).map(|_| -50.0 + rng.normal()).collect();
            guard.step(tick, &row);
        }
        assert!(guard.is_learned());
    }
}
