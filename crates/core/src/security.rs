//! Security modeling (paper §V, Figs. 5, 9, 10, 13).
//!
//! The paper scores MD decisions by overlap with ground-truth *true
//! windows* and follows the decision tree of Fig. 5 to a
//! deauthentication time for every departure:
//!
//! - **case A** — MD detected the movement and RE classified it
//!   correctly: deauthenticated at `t1 + t∆`;
//! - **case B** — detected but misclassified: the alert path
//!   deauthenticates at `t + t_ID + t_ss` (last input at `t`);
//! - **case C** — missed by MD: the baseline timeout fires at `t + T`.

use fadewich_officesim::{EventLog, MovementEvent};
use fadewich_stats::DetectionCounts;

use crate::config::FadewichParams;
use crate::windows::VariationWindow;

/// The outcome of matching one day's significant variation windows
/// against the whole experiment's ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// TP/FP/FN counts in the paper's §V-A sense.
    pub counts: DetectionCounts,
    /// For each event (indexed as in the [`EventLog`]): the first
    /// significant window overlapping its true window, if any.
    pub matched: Vec<Option<(usize, VariationWindow)>>,
    /// Significant windows overlapping no true window, with their day.
    pub false_positives: Vec<(usize, VariationWindow)>,
}

/// Matches per-day significant windows to ground-truth events.
///
/// `windows_by_day[d]` must contain only windows already filtered by
/// `t∆`, in chronological order.
///
/// # Panics
///
/// Panics if `windows_by_day` has fewer days than the log references.
pub fn evaluate_detection(
    windows_by_day: &[Vec<VariationWindow>],
    events: &EventLog,
    tick_hz: f64,
    params: &FadewichParams,
) -> DetectionOutcome {
    let delta = params.true_window_delta_s;
    let mut matched: Vec<Option<(usize, VariationWindow)>> = vec![None; events.len()];
    let mut window_used: Vec<Vec<bool>> =
        windows_by_day.iter().map(|ws| vec![false; ws.len()]).collect();

    for (ei, event) in events.events().iter().enumerate() {
        assert!(event.day < windows_by_day.len(), "event day out of range");
        let (lo, hi) = event.true_window(delta);
        for (wi, w) in windows_by_day[event.day].iter().enumerate() {
            if w.overlaps_interval(lo, hi, tick_hz) {
                window_used[event.day][wi] = true;
                if matched[ei].is_none() {
                    matched[ei] = Some((event.day, *w));
                }
            }
        }
    }

    let mut false_positives = Vec::new();
    for (day, ws) in windows_by_day.iter().enumerate() {
        for (wi, w) in ws.iter().enumerate() {
            if !window_used[day][wi] {
                false_positives.push((day, *w));
            }
        }
    }

    let tp = matched.iter().filter(|m| m.is_some()).count();
    let fn_ = matched.len() - tp;
    let counts = DetectionCounts::new(tp, false_positives.len(), fn_);
    DetectionOutcome { counts, matched, false_positives }
}

/// Which leaf of the Fig. 5 decision tree a departure landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeauthCase {
    /// True positive, correct classification → `t1 + t∆`.
    CorrectClassification,
    /// True positive, misclassified → `t + t_ID + t_ss`.
    Misclassified,
    /// False negative → timeout `t + T`.
    MissedByMd,
}

/// The deauthentication outcome of one departure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeauthOutcome {
    /// Index of the departure in the event log.
    pub event_index: usize,
    /// Decision-tree leaf.
    pub case: DeauthCase,
    /// Absolute deauthentication time (seconds from day start).
    pub deauth_time: f64,
    /// Seconds between the user leaving the workstation's vicinity
    /// (`t_proximity` — the paper's reference `t`, which under its
    /// worst-case assumption is also the last-input time) and
    /// deauthentication.
    pub elapsed: f64,
}

/// Applies the Fig. 5 decision tree to every departure.
///
/// `predictions[i]` is RE's label for event `i`'s matched window
/// (ignored for unmatched events); entries may be `None` for events
/// outside the evaluation fold.
///
/// # Panics
///
/// Panics if `predictions.len() != events.len()`.
pub fn deauth_outcomes(
    detection: &DetectionOutcome,
    predictions: &[Option<usize>],
    events: &EventLog,
    params: &FadewichParams,
    tick_hz: f64,
) -> Vec<DeauthOutcome> {
    assert_eq!(predictions.len(), events.len(), "one prediction slot per event");
    let mut outcomes = Vec::new();
    for (ei, event) in events.events().iter().enumerate() {
        if !event.is_leave() {
            continue;
        }
        let outcome = match (&detection.matched[ei], predictions[ei]) {
            (Some((_, w)), Some(pred)) if pred == event.label() => {
                let deauth = w.start_s(tick_hz) + params.t_delta_s;
                DeauthOutcome {
                    event_index: ei,
                    case: DeauthCase::CorrectClassification,
                    deauth_time: deauth,
                    elapsed: deauth - event.t_proximity,
                }
            }
            (Some(_), _) => DeauthOutcome {
                event_index: ei,
                case: DeauthCase::Misclassified,
                deauth_time: event.t_proximity + params.t_id_s + params.t_ss_s,
                elapsed: params.t_id_s + params.t_ss_s,
            },
            (None, _) => DeauthOutcome {
                event_index: ei,
                case: DeauthCase::MissedByMd,
                deauth_time: event.t_proximity + params.timeout_s,
                elapsed: params.timeout_s,
            },
        };
        outcomes.push(outcome);
    }
    outcomes
}

/// The Fig. 9 curve: for each elapsed-time point, the percentage of
/// departures deauthenticated by then.
pub fn deauth_proportion_curve(
    outcomes: &[DeauthOutcome],
    time_points: &[f64],
) -> Vec<(f64, f64)> {
    time_points
        .iter()
        .map(|&t| {
            let done = outcomes.iter().filter(|o| o.elapsed <= t).count();
            let pct = if outcomes.is_empty() {
                0.0
            } else {
                100.0 * done as f64 / outcomes.len() as f64
            };
            (t, pct)
        })
        .collect()
}

/// Attack-opportunity counts (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackAnalysis {
    /// Total office exits considered.
    pub n_exits: usize,
    /// Exits where the *insider* (reaches the workstation
    /// `insider_delay` after the victim passes the door) finds it still
    /// authenticated.
    pub insider_opportunities: usize,
    /// Same for the *co-worker* (zero delay).
    pub coworker_opportunities: usize,
}

impl AttackAnalysis {
    /// Insider opportunities as a percentage of exits.
    pub fn insider_pct(&self) -> f64 {
        percentage(self.insider_opportunities, self.n_exits)
    }

    /// Co-worker opportunities as a percentage of exits.
    pub fn coworker_pct(&self) -> f64 {
        percentage(self.coworker_opportunities, self.n_exits)
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Default seconds an insider needs to reach the workstation from
/// outside the office (paper §VII-C).
pub const INSIDER_DELAY_S: f64 = 4.0;

/// Counts attack opportunities per Fig. 10: an adversary who reaches
/// the workstation before its deauthentication has an opportunity.
pub fn attack_opportunities(
    outcomes: &[DeauthOutcome],
    events: &EventLog,
    insider_delay: f64,
) -> AttackAnalysis {
    let mut insider = 0;
    let mut coworker = 0;
    for o in outcomes {
        let event = &events.events()[o.event_index];
        // The victim is through the door at t_door; a co-worker can be
        // at the workstation immediately, the insider `delay` later.
        if o.deauth_time > event.t_door {
            coworker += 1;
        }
        if o.deauth_time > event.t_door + insider_delay {
            insider += 1;
        }
    }
    AttackAnalysis {
        n_exits: outcomes.len(),
        insider_opportunities: insider,
        coworker_opportunities: coworker,
    }
}

/// Vulnerable time of one departure: the workstation is exposed from
/// the user leaving until deauthentication or the user's return,
/// whichever comes first.
pub fn vulnerable_seconds(outcome: &DeauthOutcome, event: &MovementEvent, return_time: Option<f64>) -> f64 {
    let end = match return_time {
        Some(r) => outcome.deauth_time.min(r),
        None => outcome.deauth_time,
    };
    (end - event.t_proximity).max(0.0)
}

/// Total vulnerable minutes across departures (the Fig. 13 security
/// axis). `return_times[i]` is when event `i`'s user next re-entered
/// (same-day), if ever.
///
/// # Panics
///
/// Panics if `return_times.len() != outcomes.len()`.
pub fn total_vulnerable_minutes(
    outcomes: &[DeauthOutcome],
    events: &EventLog,
    return_times: &[Option<f64>],
) -> f64 {
    assert_eq!(return_times.len(), outcomes.len(), "one return slot per outcome");
    outcomes
        .iter()
        .zip(return_times)
        .map(|(o, &r)| vulnerable_seconds(o, &events.events()[o.event_index], r))
        .sum::<f64>()
        / 60.0
}

/// For each departure outcome, the same-day time its workstation's
/// user next re-entered the office, if any.
pub fn return_times(outcomes: &[DeauthOutcome], events: &EventLog) -> Vec<Option<f64>> {
    outcomes
        .iter()
        .map(|o| {
            let leave = &events.events()[o.event_index];
            events
                .events()
                .iter()
                .filter(|e| {
                    e.day == leave.day
                        && !e.is_leave()
                        && e.t_start > leave.t_start
                        && same_workstation(e, leave)
                })
                .map(|e| e.t_end)
                .next()
        })
        .collect()
}

fn same_workstation(a: &MovementEvent, b: &MovementEvent) -> bool {
    workstation_of(a) == workstation_of(b)
}

fn workstation_of(e: &MovementEvent) -> usize {
    match e.kind {
        fadewich_officesim::EventKind::Enter { workstation }
        | fadewich_officesim::EventKind::Leave { workstation } => workstation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::EventKind;

    fn leave(day: usize, ws: usize, t: f64) -> MovementEvent {
        MovementEvent {
            kind: EventKind::Leave { workstation: ws },
            day,
            t_start: t,
            t_proximity: t + 1.8,
            t_door: t + 5.5,
            t_end: t + 5.5,
        }
    }

    fn enter(day: usize, ws: usize, t: f64) -> MovementEvent {
        MovementEvent {
            kind: EventKind::Enter { workstation: ws },
            day,
            t_start: t,
            t_proximity: t,
            t_door: t,
            t_end: t + 5.0,
        }
    }

    fn win(t1_s: f64, t2_s: f64) -> VariationWindow {
        VariationWindow {
            start_tick: (t1_s * 5.0) as usize,
            end_tick: (t2_s * 5.0) as usize,
        }
    }

    fn params() -> FadewichParams {
        FadewichParams::default()
    }

    #[test]
    fn detection_matching_counts() {
        let events: EventLog =
            vec![leave(0, 0, 100.0), leave(0, 1, 300.0), enter(0, 0, 500.0)].into_iter().collect();
        // One window matches the first leave, one is far from anything,
        // the enter is missed.
        let windows = vec![vec![win(100.5, 106.0), win(200.0, 206.0)]];
        let out = evaluate_detection(&windows, &events, 5.0, &params());
        assert_eq!(out.counts, DetectionCounts::new(1, 1, 2));
        assert!(out.matched[0].is_some());
        assert!(out.matched[1].is_none());
        assert_eq!(out.false_positives.len(), 1);
        assert_eq!(out.false_positives[0].1, win(200.0, 206.0));
    }

    #[test]
    fn two_windows_on_one_event_not_double_counted() {
        let events: EventLog = vec![leave(0, 0, 100.0)].into_iter().collect();
        let windows = vec![vec![win(99.0, 102.0), win(103.0, 107.0)]];
        let out = evaluate_detection(&windows, &events, 5.0, &params());
        assert_eq!(out.counts, DetectionCounts::new(1, 0, 0));
    }

    #[test]
    fn decision_tree_cases() {
        let events: EventLog =
            vec![leave(0, 0, 100.0), leave(0, 1, 300.0), leave(0, 2, 500.0)].into_iter().collect();
        let windows = vec![vec![win(100.4, 106.0), win(300.4, 306.0)]];
        let det = evaluate_detection(&windows, &events, 5.0, &params());
        // Event 0 correctly classified (label 1), event 1 misclassified,
        // event 2 missed.
        let preds = vec![Some(1), Some(3), None];
        let outcomes = deauth_outcomes(&det, &preds, &events, &params(), 5.0);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].case, DeauthCase::CorrectClassification);
        // t1 = 100.4, deauth at t1 + 4.5 = 104.9; proximity left at
        // 101.8 -> elapsed 3.1.
        assert!((outcomes[0].elapsed - 3.1).abs() < 0.21);
        assert_eq!(outcomes[1].case, DeauthCase::Misclassified);
        assert!((outcomes[1].elapsed - 8.0).abs() < 1e-9);
        assert_eq!(outcomes[2].case, DeauthCase::MissedByMd);
        assert!((outcomes[2].elapsed - 300.0).abs() < 1e-9);
    }

    #[test]
    fn proportion_curve_monotone() {
        let events: EventLog = vec![leave(0, 0, 100.0), leave(0, 1, 300.0)].into_iter().collect();
        let windows = vec![vec![win(100.4, 106.0)]];
        let det = evaluate_detection(&windows, &events, 5.0, &params());
        let outcomes =
            deauth_outcomes(&det, &[Some(1), None], &events, &params(), 5.0);
        let curve = deauth_proportion_curve(&outcomes, &[0.0, 5.0, 10.0, 400.0]);
        assert_eq!(curve[0].1, 0.0);
        assert_eq!(curve[1].1, 50.0); // case A done by 5 s
        assert_eq!(curve[2].1, 50.0); // case C still pending
        assert_eq!(curve[3].1, 100.0);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn attack_opportunity_accounting() {
        let events: EventLog = vec![leave(0, 0, 100.0), leave(0, 1, 300.0)].into_iter().collect();
        let windows = vec![vec![win(100.4, 106.0)]];
        let det = evaluate_detection(&windows, &events, 5.0, &params());
        let outcomes = deauth_outcomes(&det, &[Some(1), None], &events, &params(), 5.0);
        let attacks = attack_opportunities(&outcomes, &events, INSIDER_DELAY_S);
        // Case A: deauth at 104.9 < door time 105 -> no opportunity.
        // Case C: deauth at 600 >> door 305 -> both adversaries.
        assert_eq!(attacks.n_exits, 2);
        assert_eq!(attacks.coworker_opportunities, 1);
        assert_eq!(attacks.insider_opportunities, 1);
        assert_eq!(attacks.coworker_pct(), 50.0);
    }

    #[test]
    fn timeout_baseline_always_vulnerable() {
        let events: EventLog = vec![leave(0, 0, 100.0)].into_iter().collect();
        let det = evaluate_detection(&[vec![]], &events, 5.0, &params());
        let outcomes = deauth_outcomes(&det, &[None], &events, &params(), 5.0);
        let attacks = attack_opportunities(&outcomes, &events, INSIDER_DELAY_S);
        assert_eq!(attacks.coworker_pct(), 100.0);
        assert_eq!(attacks.insider_pct(), 100.0);
    }

    #[test]
    fn vulnerable_time_capped_by_return() {
        let events: EventLog =
            vec![leave(0, 0, 100.0), enter(0, 0, 220.0)].into_iter().collect();
        let det = evaluate_detection(&[vec![]], &events, 5.0, &params());
        let outcomes = deauth_outcomes(&det, &[None, None], &events, &params(), 5.0);
        let returns = return_times(&outcomes, &events);
        // Timeout would fire at ~400, but the user is back at 225;
        // vulnerability started when proximity was left at 101.8.
        assert_eq!(returns, vec![Some(225.0)]);
        let minutes = total_vulnerable_minutes(&outcomes, &events, &returns);
        assert!((minutes - 123.2 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn case_a_faster_than_case_b_faster_than_case_c() {
        let p = params();
        assert!(p.t_delta_s + 1.0 < p.t_id_s + p.t_ss_s);
        assert!(p.t_id_s + p.t_ss_s < p.timeout_s);
    }
}
