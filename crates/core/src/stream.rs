//! Channel-typed sensor-stream descriptors.
//!
//! The paper's pipeline is defined over the m×(m−1) RSSI link matrix,
//! but nothing in MD, the controller, or the runtime actually requires
//! the samples to *be* RSSI — they require a per-tick scalar per
//! stream. This module makes that latent assumption explicit: every
//! monitored stream carries a [`ChannelKind`], the engine's sensor
//! layout is a list of typed [`SensorGroup`]s instead of bare
//! `(sensor, positions)` pairs, and a [`StreamSchema`] summarizes the
//! per-stream kinds for the artifact and checkpoint codecs.
//!
//! Two kinds exist today: the paper's RSSI links and the ambient-light
//! photosensors of the fusion study (one per workstation, in the
//! spirit of the ambient-light deauthentication line of work). The
//! representation is deliberately closed — an enum, not a string — so
//! the wire codec and the artifact can tag streams with a single
//! validated byte.
//!
//! Everything downstream keys typed streams as `(kind, sensor id)`
//! pairs: sensor id namespaces are per channel kind, so a light sensor
//! numbered 0 never collides with RF sensor 0.

/// What physical quantity a sensor stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelKind {
    /// Received signal strength of one RF link (dBm, quantized) — the
    /// paper's modality.
    Rssi,
    /// Ambient illuminance at one workstation (lux, quantized) — the
    /// fusion study's second modality.
    AmbientLight,
}

impl ChannelKind {
    /// Every kind, in tag order. `ALL[k.index()] == k`.
    pub const ALL: [ChannelKind; 2] = [ChannelKind::Rssi, ChannelKind::AmbientLight];

    /// Number of channel kinds (array-index bound for per-kind state).
    pub const COUNT: usize = 2;

    /// The stable single-byte tag the wire codec and artifact carry.
    pub fn tag(self) -> u8 {
        match self {
            ChannelKind::Rssi => 0,
            ChannelKind::AmbientLight => 1,
        }
    }

    /// Decodes a wire/artifact tag; unknown tags are a decode error at
    /// the caller, never a default.
    pub fn from_tag(tag: u8) -> Option<ChannelKind> {
        match tag {
            0 => Some(ChannelKind::Rssi),
            1 => Some(ChannelKind::AmbientLight),
            _ => None,
        }
    }

    /// Dense index for per-kind arrays (`== tag`, but `usize`).
    pub fn index(self) -> usize {
        self.tag() as usize
    }

    /// Short lowercase label for summaries and metric names.
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::Rssi => "rssi",
            ChannelKind::AmbientLight => "light",
        }
    }
}

impl std::fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One sensor's contribution to the engine row: which streams
/// (row positions) it reports, and what kind of channel they are.
/// The typed successor of the bare `(u16, Vec<usize>)` layout pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorGroup {
    /// Sensor id — namespaced per [`ChannelKind`], so ids may repeat
    /// across kinds without ambiguity.
    pub sensor: u16,
    /// What the sensor's streams carry.
    pub kind: ChannelKind,
    /// Engine-row positions this sensor fills each tick, ascending.
    pub positions: Vec<usize>,
}

impl SensorGroup {
    /// An RSSI group — the shape every pre-refactor layout had.
    pub fn rssi(sensor: u16, positions: Vec<usize>) -> SensorGroup {
        SensorGroup { sensor, kind: ChannelKind::Rssi, positions }
    }
}

/// Lifts a legacy untyped layout (every stream an RSSI link) into the
/// typed representation. This is the compatibility seam: engines built
/// through the historical `(sensor, positions)` API go through here,
/// so their behavior is the all-RSSI special case of the typed path.
pub fn rssi_groups(groups: Vec<(u16, Vec<usize>)>) -> Vec<SensorGroup> {
    groups.into_iter().map(|(sensor, positions)| SensorGroup::rssi(sensor, positions)).collect()
}

/// Per-stream channel kinds, in engine-row order — the compact
/// descriptor the artifact and checkpoint codecs carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSchema {
    /// `kinds[i]` is stream `i`'s channel kind.
    pub kinds: Vec<ChannelKind>,
}

impl StreamSchema {
    /// The schema of `n` plain RSSI streams — what every pre-refactor
    /// artifact implicitly described.
    pub fn rssi(n: usize) -> StreamSchema {
        StreamSchema { kinds: vec![ChannelKind::Rssi; n] }
    }

    /// Derives the schema from a typed sensor layout. Positions must
    /// partition `0..n` (the engine validates that separately); any
    /// position no group claims would panic here, which the engine's
    /// layout check rules out first.
    pub fn from_groups(groups: &[SensorGroup]) -> StreamSchema {
        let n: usize = groups.iter().map(|g| g.positions.len()).sum();
        let mut kinds = vec![ChannelKind::Rssi; n];
        for g in groups {
            for &p in &g.positions {
                kinds[p] = g.kind;
            }
        }
        StreamSchema { kinds }
    }

    /// Total streams described.
    pub fn n_streams(&self) -> usize {
        self.kinds.len()
    }

    /// Streams of one kind.
    pub fn count(&self, kind: ChannelKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Whether every stream is RSSI — the case that must stay
    /// byte-identical to the pre-refactor engine.
    pub fn is_all_rssi(&self) -> bool {
        self.kinds.iter().all(|&k| k == ChannelKind::Rssi)
    }

    /// Whether RSSI streams occupy a prefix `0..k` and every other
    /// kind the suffix — the row ordering the fusion engine requires
    /// so it can hand `row[..k]` to MD/RE untouched.
    pub fn rssi_is_prefix(&self) -> bool {
        let first_non_rssi =
            self.kinds.iter().position(|&k| k != ChannelKind::Rssi).unwrap_or(self.kinds.len());
        self.kinds[first_non_rssi..].iter().all(|&k| k != ChannelKind::Rssi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_and_unknown_rejected() {
        for k in ChannelKind::ALL {
            assert_eq!(ChannelKind::from_tag(k.tag()), Some(k));
            assert_eq!(ChannelKind::ALL[k.index()], k);
        }
        assert_eq!(ChannelKind::from_tag(2), None);
        assert_eq!(ChannelKind::from_tag(255), None);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(ChannelKind::Rssi.label(), ChannelKind::AmbientLight.label());
        assert_eq!(format!("{}", ChannelKind::AmbientLight), "light");
    }

    #[test]
    fn schema_from_groups_assigns_kinds_by_position() {
        let groups = vec![
            SensorGroup::rssi(0, vec![0, 1]),
            SensorGroup { sensor: 0, kind: ChannelKind::AmbientLight, positions: vec![3] },
            SensorGroup::rssi(2, vec![2]),
        ];
        let schema = StreamSchema::from_groups(&groups);
        assert_eq!(schema.n_streams(), 4);
        assert_eq!(schema.kinds[3], ChannelKind::AmbientLight);
        assert_eq!(schema.count(ChannelKind::Rssi), 3);
        assert!(!schema.is_all_rssi());
        assert!(schema.rssi_is_prefix());
    }

    #[test]
    fn prefix_check_catches_interleaved_kinds() {
        let schema = StreamSchema {
            kinds: vec![ChannelKind::Rssi, ChannelKind::AmbientLight, ChannelKind::Rssi],
        };
        assert!(!schema.rssi_is_prefix());
        assert!(StreamSchema::rssi(5).rssi_is_prefix());
        assert!(StreamSchema::rssi(5).is_all_rssi());
    }

    #[test]
    fn legacy_lift_is_all_rssi() {
        let typed = rssi_groups(vec![(4, vec![0, 2]), (7, vec![1])]);
        assert!(typed.iter().all(|g| g.kind == ChannelKind::Rssi));
        assert_eq!(typed[0].positions, vec![0, 2]);
        assert!(StreamSchema::from_groups(&typed).is_all_rssi());
    }
}
