//! Keyboard/Mouse Activity module (paper §IV-B).
//!
//! Each workstation reports its input events to the central station;
//! KMA answers the query `S(s)_t` — which workstations have been idle
//! for the whole interval `[t − s, t]`.

use fadewich_officesim::InputTrace;

/// The KMA module: a thin query layer over per-workstation input
/// timestamps.
#[derive(Debug, Clone)]
pub struct Kma<'a> {
    inputs: &'a InputTrace,
}

impl<'a> Kma<'a> {
    /// Wraps an input trace for one day.
    pub fn new(inputs: &'a InputTrace) -> Kma<'a> {
        Kma { inputs }
    }

    /// Number of monitored workstations.
    pub fn n_workstations(&self) -> usize {
        self.inputs.n_workstations()
    }

    /// Idle time of workstation `ws` at time `t` (seconds since its
    /// last input, or since day start if it has produced none).
    pub fn idle_time(&self, ws: usize, t: f64) -> f64 {
        self.inputs.idle_time(ws, t)
    }

    /// The paper's `S(s)_t`: workstations with no input during
    /// `[t − s, t]`.
    pub fn idle_set(&self, s: f64, t: f64) -> Vec<usize> {
        (0..self.n_workstations())
            .filter(|&ws| self.idle_time(ws, t) >= s)
            .collect()
    }

    /// Whether `ws ∈ S(s)_t`.
    pub fn is_idle(&self, ws: usize, s: f64, t: f64) -> bool {
        self.idle_time(ws, t) >= s
    }

    /// The most recent input at or before `t`, if any.
    pub fn last_input_before(&self, ws: usize, t: f64) -> Option<f64> {
        self.inputs.last_input_before(ws, t)
    }

    /// Whether `ws` produced any input strictly inside `(from, to)`.
    pub fn any_input_in(&self, ws: usize, from: f64, to: f64) -> bool {
        self.inputs.any_input_in(ws, from, to)
    }

    /// The per-workstation idle clocks at time `t`: for each
    /// workstation, its most recent input at or before `t` (`None` if
    /// it has produced none yet). KMA itself is a stateless query layer
    /// — these clocks are a *fingerprint* of the input trace as seen up
    /// to `t`, which the checkpoint layer persists so a resume can
    /// detect that it was handed a different scenario than the one the
    /// checkpoint was taken from.
    pub fn clock_state(&self, t: f64) -> Vec<Option<f64>> {
        (0..self.n_workstations()).map(|ws| self.last_input_before(ws, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kma_fixture() -> InputTrace {
        InputTrace::from_times(vec![
            vec![10.0, 20.0, 100.0], // w1
            vec![95.0, 99.0, 103.0], // w2
            vec![],                  // w3: never present
        ])
    }

    #[test]
    fn idle_set_matches_definition() {
        let inputs = kma_fixture();
        let kma = Kma::new(&inputs);
        // At t = 105 with s = 4: w1 idle 5 s (>=4), w2 idle 2 s, w3 idle 105 s.
        assert_eq!(kma.idle_set(4.0, 105.0), vec![0, 2]);
        // With s = 1: w2 still active 2 s ago -> not in S(1)? idle 2 >= 1, so in.
        assert_eq!(kma.idle_set(1.0, 105.0), vec![0, 1, 2]);
        assert_eq!(kma.idle_set(1.0, 103.5), vec![0, 2]);
    }

    #[test]
    fn idle_time_counts_from_day_start_without_input() {
        let inputs = kma_fixture();
        let kma = Kma::new(&inputs);
        assert_eq!(kma.idle_time(2, 50.0), 50.0);
        assert!(kma.is_idle(2, 45.0, 50.0));
    }

    #[test]
    fn input_resets_idle() {
        let inputs = kma_fixture();
        let kma = Kma::new(&inputs);
        assert_eq!(kma.idle_time(0, 100.0), 0.0);
        assert_eq!(kma.idle_time(0, 101.5), 1.5);
        assert!(!kma.is_idle(0, 2.0, 101.5));
    }

    #[test]
    fn pass_through_queries() {
        let inputs = kma_fixture();
        let kma = Kma::new(&inputs);
        assert_eq!(kma.n_workstations(), 3);
        assert_eq!(kma.last_input_before(0, 15.0), Some(10.0));
        assert!(kma.any_input_in(1, 96.0, 100.0));
        assert!(!kma.any_input_in(2, 0.0, 1000.0));
    }

    #[test]
    fn clock_state_fingerprints_the_trace_at_t() {
        let inputs = kma_fixture();
        let kma = Kma::new(&inputs);
        assert_eq!(kma.clock_state(0.0), vec![None, None, None]);
        assert_eq!(kma.clock_state(97.0), vec![Some(20.0), Some(95.0), None]);
        assert_eq!(kma.clock_state(1000.0), vec![Some(100.0), Some(103.0), None]);
    }
}
