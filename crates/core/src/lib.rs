//! FADEWICH: Fast Deauthentication over the Wireless Channel.
//!
//! A faithful reimplementation of the system from Conti, Lovisotto,
//! Martinovic & Tsudik (ICDCS 2017): automatic deauthentication of
//! users who walk away from their workstations, sensed purely through
//! the effect of their bodies on the RSSI of wireless links between
//! cheap office sensors.
//!
//! # Architecture (paper Fig. 1)
//!
//! - [`kma`] — Keyboard/Mouse Activity: per-workstation idle times and
//!   the `S(s)_t` idle-set query;
//! - [`md`] — Movement Detection: rolling per-stream standard
//!   deviations summed into `s_t`, compared against a KDE-estimated
//!   normal profile (Algorithm 1), producing *variation windows*
//!   ([`windows`]);
//! - [`features`]/[`re`] — Radio Environment: per-stream
//!   variance/entropy/autocorrelation features over a window's first
//!   `t∆` seconds, classified by an SVM into "user entered" (`w0`) or
//!   "user left workstation i" (`wi`), with KMA-driven automatic
//!   training labels;
//! - [`controller`] — the Quiet/Noisy automaton applying Rule 1
//!   (classify & deauthenticate) and Rule 2 (alert state, screen saver,
//!   delayed deauthentication);
//! - [`security`] — the decision-tree timing model (cases A/B/C),
//!   attack-opportunity and vulnerable-time analyses;
//! - [`usability`] — the user-cost simulation behind Table IV;
//! - [`guard`] — a channel-integrity detector operationalizing the
//!   §V-C claim that signal-suppression attacks are detectable;
//! - [`artifact`] — the versioned, CRC-guarded model bundle that
//!   carries a trained MD profile + RE classifier from a training run
//!   to a serving process;
//! - [`auth`] — per-sensor frame-authentication keys ([`auth::AuthKey`],
//!   [`auth::KeyTable`]) carried by artifact v3 and verified by the
//!   wire v4 codec;
//! - [`stream`] — the channel-typed sensor-stream descriptors
//!   ([`stream::ChannelKind`], [`stream::StreamSchema`]) that
//!   generalize the pipeline beyond the RSSI link matrix;
//! - [`fusion`] — the per-workstation ambient-light detector and the
//!   RSSI-only / light-only / fused decision modes.
//!
//! # Examples
//!
//! End-to-end detection on a recorded trace:
//!
//! ```
//! use fadewich_core::{config::FadewichParams, md};
//! use fadewich_officesim::{Scenario, ScenarioConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::generate(ScenarioConfig::small())?;
//! let trace = scenario.simulate()?;
//! let params = FadewichParams::default();
//! let streams: Vec<usize> = (0..trace.n_streams()).collect();
//! let run = md::run_md_over_day(&trace.days()[0], &streams, trace.tick_hz(), params)?;
//! let significant = run.significant_windows(params.t_delta_ticks(trace.tick_hz()));
//! println!("{} significant variation windows", significant.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod auth;
pub mod config;
pub mod controller;
pub mod features;
pub mod fusion;
pub mod guard;
pub mod kma;
pub mod md;
pub mod re;
pub mod security;
pub mod stream;
pub mod usability;
pub mod windows;

pub use artifact::{ArtifactError, FeatureSchema, ModelBundle};
pub use auth::{AuthKey, KeyTable};
pub use config::FadewichParams;
pub use controller::{Action, ActionKind, Controller, SystemState};
pub use features::TrainingSample;
pub use fusion::{
    DecisionMode, FusionConfig, LightDetector, LightDetectorState, LightEvent, LightParams,
};
pub use guard::{GuardParams, IntegrityAlarm, IntegrityGuard};
pub use kma::Kma;
pub use md::{MdBatchStep, MdRun, MdSnapshot, MovementDetector};
pub use re::{auto_label, AutoLabelParams, RadioEnvironment};
pub use security::{AttackAnalysis, DeauthCase, DeauthOutcome, DetectionOutcome};
pub use stream::{rssi_groups, ChannelKind, SensorGroup, StreamSchema};
pub use usability::{DayUsability, UsabilityParams};
pub use windows::VariationWindow;
