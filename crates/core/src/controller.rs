//! The FADEWICH control automaton (paper §IV-F/G, Fig. 4, Table I).
//!
//! Two states drive the system. In **Quiet**, the controller waits for
//! the current variation window to reach `t∆`; at that instant it
//! applies **Rule 1**: query RE for the window's label `c_i` and
//! deauthenticate workstation `c_i` if it has been idle for the whole
//! window (`c_i ∈ S(t∆)` — the paper's table prints `∉`, an evident
//! typo, since deauthenticating a workstation whose user is actively
//! typing contradicts both the usability goal and the case-B analysis).
//! The controller then moves to **Noisy**, where — as long as the
//! window persists — **Rule 2** puts every workstation idle for ≥ 1 s
//! into *alert state*: a screen saver starts after `t_ID` seconds of
//! idleness and the session is deauthenticated `t_ss` seconds later
//! unless input arrives. When MD reports the window over, the system
//! returns to Quiet.
//!
//! A plain inactivity timeout `T` runs underneath, exactly as in the
//! paper's baseline comparison.

use fadewich_stats::rolling::{HistoryBuffer, HistoryState};
use fadewich_svm::PredictScratch;
use fadewich_telemetry::{SpanId, Telemetry, Value};

use crate::config::FadewichParams;
use crate::features::{extract_features_from_histories, extract_features_from_histories_into};
use crate::fusion::{DecisionMode, FusionConfig, LightDetector, LightDetectorState, LightEvent};
use crate::kma::Kma;
use crate::md::{MdBatchStep, MdRuntimeState, MovementDetector};
use crate::re::RadioEnvironment;

/// The controller's top-level state (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemState {
    /// No significant variation window in progress.
    Quiet,
    /// A window of ≥ `t∆` is in progress; Rule 2 applies.
    Noisy,
}

/// Something the controller did to a workstation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Action {
    /// When it happened (seconds from day start).
    pub t: f64,
    /// What happened.
    pub kind: ActionKind,
}

/// The kinds of controller actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Rule 1 deauthenticated the workstation (case A/B head).
    DeauthenticateRule1 {
        /// The workstation deauthenticated.
        workstation: usize,
    },
    /// The alert path deauthenticated the workstation (`t_ID + t_ss`).
    DeauthenticateAlert {
        /// The workstation deauthenticated.
        workstation: usize,
    },
    /// The baseline timeout `T` deauthenticated the workstation.
    DeauthenticateTimeout {
        /// The workstation deauthenticated.
        workstation: usize,
    },
    /// The ambient-light departure detector deauthenticated the
    /// workstation (light-only or fused decision mode).
    DeauthenticateLight {
        /// The workstation deauthenticated.
        workstation: usize,
    },
    /// A workstation entered alert state (Rule 2).
    AlertEntered {
        /// The workstation now in alert state.
        workstation: usize,
    },
    /// The screen saver started on an alerted workstation.
    ScreenSaverOn {
        /// The workstation whose screen saver started.
        workstation: usize,
    },
    /// Input cancelled an alert/screen saver.
    AlertCancelled {
        /// The workstation whose alert ended.
        workstation: usize,
    },
    /// Input after a deauthentication: the user re-authenticated.
    Reauthenticated {
        /// The workstation that logged back in.
        workstation: usize,
    },
}

impl ActionKind {
    /// The workstation this action concerns.
    pub fn workstation(&self) -> usize {
        match *self {
            ActionKind::DeauthenticateRule1 { workstation }
            | ActionKind::DeauthenticateAlert { workstation }
            | ActionKind::DeauthenticateTimeout { workstation }
            | ActionKind::DeauthenticateLight { workstation }
            | ActionKind::AlertEntered { workstation }
            | ActionKind::ScreenSaverOn { workstation }
            | ActionKind::AlertCancelled { workstation }
            | ActionKind::Reauthenticated { workstation } => workstation,
        }
    }

    /// Whether this is any flavor of deauthentication.
    pub fn is_deauth(&self) -> bool {
        matches!(
            self,
            ActionKind::DeauthenticateRule1 { .. }
                | ActionKind::DeauthenticateAlert { .. }
                | ActionKind::DeauthenticateTimeout { .. }
                | ActionKind::DeauthenticateLight { .. }
        )
    }
}

/// Per-workstation session bookkeeping.
#[derive(Debug, Clone, Copy)]
struct WsSession {
    logged_in: bool,
    in_alert: bool,
    screensaver_on: bool,
}

/// Exported per-workstation session flags (the public mirror of the
/// controller's internal bookkeeping, for checkpointing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionState {
    /// Whether the session is authenticated.
    pub logged_in: bool,
    /// Whether Rule 2 has put the workstation in alert state.
    pub in_alert: bool,
    /// Whether the alert escalated to a running screen saver.
    pub screensaver_on: bool,
}

/// The complete in-flight controller state for crash-safe
/// checkpointing: the FSM, every per-workstation session flag, the
/// feature-history ring buffers Rule 1 classifies from, and the full
/// MD runtime state. The borrowed collaborators (`RadioEnvironment`,
/// `Kma`) are *not* captured — they are reconstructed from the model
/// artifact and scenario on restore and validated against this state.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerState {
    /// Complete movement-detector state.
    pub md: MdRuntimeState,
    /// The Fig. 4 FSM state.
    pub system_state: SystemState,
    /// Per-workstation session flags, in workstation order.
    pub sessions: Vec<SessionState>,
    /// Per-stream RSSI feature histories, in stream order.
    pub histories: Vec<HistoryState>,
    /// Whether Rule 1 already fired for the current window.
    pub rule1_done: bool,
    /// Per-light-stream detector state, in light-stream order (empty
    /// for RSSI-only controllers).
    pub lights: Vec<LightDetectorState>,
    /// The most recent tick MD reported an open variation window —
    /// the fused mode's corroboration clock. Tracked in every mode
    /// (it is pure recording), so mode never changes its value.
    pub last_window_tick: Option<u64>,
    /// Time of the last processed tick (seconds from day start).
    pub prev_t: f64,
    /// How many actions the controller had emitted when captured. The
    /// restored controller starts with an *empty* action log; this
    /// count lets a caller stitch pre- and post-crash logs together.
    pub n_actions: u64,
}

impl WsSession {
    /// Day-start state: nobody is logged in overnight; the first input
    /// of the day authenticates the user.
    fn fresh() -> WsSession {
        WsSession { logged_in: false, in_alert: false, screensaver_on: false }
    }
}

/// The online FADEWICH controller for one day of operation.
#[derive(Debug)]
pub struct Controller<'a> {
    params: FadewichParams,
    tick_hz: f64,
    md: MovementDetector,
    re: &'a RadioEnvironment,
    kma: Kma<'a>,
    state: SystemState,
    sessions: Vec<WsSession>,
    histories: Vec<HistoryBuffer>,
    /// Rule 1 fires once per window.
    rule1_done: bool,
    actions: Vec<Action>,
    prev_t: f64,
    /// Observability only — deliberately absent from
    /// [`ControllerState`]; a restored controller starts disabled.
    telemetry: Telemetry,
    /// When `true`, Rule 1's untraced decision path uses the original
    /// allocating feature/classify routines instead of the scratch
    /// buffers below. Decisions are bit-identical either way (the
    /// differential suites pin this); the flag exists so the reference
    /// arithmetic stays exercisable end-to-end. Deliberately absent
    /// from [`ControllerState`] — it changes cost, never behavior.
    reference_paths: bool,
    /// Scratch for Rule 1's hot path: the per-stream feature window.
    win_buf: Vec<f64>,
    /// Scratch for Rule 1's hot path: the assembled feature vector.
    feat_buf: Vec<f64>,
    /// Scratch for the SVM vote tally in the untraced classify.
    predict_scratch: PredictScratch,
    /// Scratch for [`Controller::step_batch`]: the per-tick MD
    /// verdicts + tracker readings of the current block.
    md_batch: Vec<MdBatchStep>,
    /// Fusion: decision arbitration mode (RSSI-only by default).
    mode: DecisionMode,
    /// Fusion: one detector per light stream.
    lights: Vec<LightDetector>,
    /// Fusion: workstation each light stream watches.
    light_ws: Vec<usize>,
    /// Fusion: corroboration window in ticks.
    corroborate_ticks: u64,
    /// Most recent tick MD reported an open window (see
    /// [`ControllerState::last_window_tick`]).
    last_window_tick: Option<u64>,
}

impl<'a> Controller<'a> {
    /// Builds a controller over `n_streams` RSSI streams, a trained RE
    /// classifier, and the day's KMA source.
    ///
    /// # Errors
    ///
    /// Propagates MD construction errors (invalid params or stream
    /// count).
    pub fn new(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
    ) -> Result<Controller<'a>, String> {
        Controller::with_fusion(n_streams, tick_hz, params, re, kma, FusionConfig::rssi_only())
    }

    /// Builds a controller that additionally consumes
    /// `fusion.light_workstations.len()` ambient-light streams (fed
    /// through [`Controller::observe_light`]) and arbitrates decisions
    /// per `fusion.mode`. With [`FusionConfig::rssi_only`] this is
    /// exactly [`Controller::new`].
    ///
    /// # Errors
    ///
    /// MD construction errors plus invalid fusion configurations.
    pub fn with_fusion(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
        fusion: FusionConfig,
    ) -> Result<Controller<'a>, String> {
        fusion.validate(kma.n_workstations()).map_err(|e| format!("fusion: {e}"))?;
        let md = MovementDetector::new(n_streams, tick_hz, params)?;
        let history_len = ((params.t_delta_s + params.window_hangover_s + 4.0) * tick_hz) as usize;
        let lights = fusion
            .light_workstations
            .iter()
            .map(|_| LightDetector::new(tick_hz, fusion.light))
            .collect();
        Ok(Controller {
            params,
            tick_hz,
            md,
            re,
            sessions: vec![WsSession::fresh(); kma.n_workstations()],
            kma,
            state: SystemState::Quiet,
            histories: vec![HistoryBuffer::new(history_len.max(8)); n_streams],
            rule1_done: false,
            actions: Vec::new(),
            prev_t: 0.0,
            telemetry: Telemetry::disabled(),
            reference_paths: false,
            win_buf: Vec::new(),
            feat_buf: Vec::new(),
            predict_scratch: PredictScratch::new(),
            md_batch: Vec::new(),
            mode: fusion.mode,
            lights,
            light_ws: fusion.light_workstations,
            corroborate_ticks: ((fusion.corroborate_s * tick_hz).round() as u64).max(1),
            last_window_tick: None,
        })
    }

    /// The decision arbitration mode this controller runs in.
    pub fn mode(&self) -> DecisionMode {
        self.mode
    }

    /// Number of ambient-light streams this controller consumes.
    pub fn n_light_streams(&self) -> usize {
        self.lights.len()
    }

    /// Switches between the optimized batched/scratch hot paths
    /// (default) and the original scalar reference paths, cascading to
    /// the movement detector's rolling-std bank. Both produce
    /// bit-identical decisions, actions, traces and checkpoints; the
    /// toggle exists for the differential pin tests and the bench
    /// harness's reference/fast comparison.
    pub fn set_reference_paths(&mut self, reference: bool) {
        self.md.set_reference_paths(reference);
        self.reference_paths = reference;
    }

    /// Installs a telemetry handle and cascades it to the movement
    /// detector, so Rule 1/Rule 2 audit spans parent onto MD's
    /// variation-window spans. The default handle is disabled; with it,
    /// decisions and actions are bit-identical to an uninstrumented
    /// controller.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.md.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The controller's current top-level state.
    pub fn state(&self) -> SystemState {
        self.state
    }

    /// Exports the complete in-flight state for crash-safe
    /// checkpointing. Capture between ticks (never mid-tick): every
    /// invariant [`Controller::from_runtime_state`] enforces holds at
    /// tick boundaries.
    pub fn runtime_state(&self) -> ControllerState {
        ControllerState {
            md: self.md.runtime_state(),
            system_state: self.state,
            sessions: self
                .sessions
                .iter()
                .map(|s| SessionState {
                    logged_in: s.logged_in,
                    in_alert: s.in_alert,
                    screensaver_on: s.screensaver_on,
                })
                .collect(),
            histories: self.histories.iter().map(HistoryBuffer::state).collect(),
            rule1_done: self.rule1_done,
            lights: self.lights.iter().map(LightDetector::state).collect(),
            last_window_tick: self.last_window_tick,
            prev_t: self.prev_t,
            n_actions: self.actions.len() as u64,
        }
    }

    /// The per-workstation KMA idle clocks as of the last processed
    /// tick — the input-trace fingerprint the checkpoint layer uses to
    /// detect a scenario mismatch on resume.
    pub fn kma_clock_state(&self) -> Vec<Option<f64>> {
        self.kma.clock_state(self.prev_t)
    }

    /// Rebuilds a controller mid-day from a
    /// [`Controller::runtime_state`] export plus freshly reconstructed
    /// collaborators (the artifact-loaded `re`, the scenario's `kma`).
    /// Subsequent steps emit actions bit-identical to the controller
    /// the state was captured from; the restored action log starts
    /// empty (see [`ControllerState::n_actions`]).
    ///
    /// # Errors
    ///
    /// [`Controller::new`] and [`MovementDetector::from_runtime_state`]
    /// errors, plus a description when the state disagrees with the
    /// collaborators (workstation or stream counts, history capacity)
    /// or is internally inconsistent (non-finite `prev_t`, FSM and
    /// `rule1_done` out of sync, sessions logged out yet alerted).
    pub fn from_runtime_state(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
        state: &ControllerState,
    ) -> Result<Controller<'a>, String> {
        Controller::from_runtime_state_fused(
            n_streams,
            tick_hz,
            params,
            re,
            kma,
            FusionConfig::rssi_only(),
            state,
        )
    }

    /// [`Controller::from_runtime_state`] for a fusion-configured
    /// controller: the light detector bank is restored bit-exactly
    /// from the captured state (params come from `fusion`, exactly as
    /// the RSSI side reconstructs from the artifact).
    ///
    /// # Errors
    ///
    /// Everything [`Controller::from_runtime_state`] rejects, plus a
    /// light-stream count disagreeing with the fusion configuration.
    pub fn from_runtime_state_fused(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
        fusion: FusionConfig,
        state: &ControllerState,
    ) -> Result<Controller<'a>, String> {
        let mut ctl = Controller::with_fusion(n_streams, tick_hz, params, re, kma, fusion)?;
        if state.lights.len() != ctl.lights.len() {
            return Err(format!(
                "state carries {} light detectors for {} light streams",
                state.lights.len(),
                ctl.lights.len()
            ));
        }
        for (d, s) in ctl.lights.iter_mut().zip(&state.lights) {
            if !s.baseline.is_finite() {
                return Err(format!("light baseline {} is not finite", s.baseline));
            }
            d.restore(s);
        }
        ctl.last_window_tick = state.last_window_tick;
        let md = MovementDetector::from_runtime_state(n_streams, tick_hz, params, &state.md)
            .map_err(|e| format!("md: {e}"))?;
        if state.sessions.len() != ctl.sessions.len() {
            return Err(format!(
                "state carries {} sessions for {} workstations",
                state.sessions.len(),
                ctl.sessions.len()
            ));
        }
        for (ws, s) in state.sessions.iter().enumerate() {
            if !s.logged_in && (s.in_alert || s.screensaver_on) {
                return Err(format!("workstation {ws} is logged out yet alerted"));
            }
            if s.screensaver_on && !s.in_alert {
                return Err(format!("workstation {ws} has a screen saver outside alert"));
            }
        }
        if state.histories.len() != n_streams {
            return Err(format!(
                "state carries {} histories for {n_streams} streams",
                state.histories.len()
            ));
        }
        let expected_cap = ctl.histories[0].capacity();
        let mut histories = Vec::with_capacity(n_streams);
        for (i, h) in state.histories.iter().enumerate() {
            if h.capacity != expected_cap {
                return Err(format!(
                    "stream {i} history capacity {} disagrees with params ({expected_cap})",
                    h.capacity
                ));
            }
            histories.push(HistoryBuffer::from_state(h).map_err(|e| format!("stream {i}: {e}"))?);
        }
        if !state.prev_t.is_finite() || state.prev_t < 0.0 {
            return Err(format!("prev_t {} is not a valid day time", state.prev_t));
        }
        if (state.system_state == SystemState::Noisy) != state.rule1_done {
            return Err(format!(
                "FSM {:?} disagrees with rule1_done = {}",
                state.system_state, state.rule1_done
            ));
        }
        ctl.md = md;
        ctl.state = state.system_state;
        ctl.sessions = state
            .sessions
            .iter()
            .map(|s| WsSession {
                logged_in: s.logged_in,
                in_alert: s.in_alert,
                screensaver_on: s.screensaver_on,
            })
            .collect();
        ctl.histories = histories;
        ctl.rule1_done = state.rule1_done;
        ctl.prev_t = state.prev_t;
        Ok(ctl)
    }

    /// Whether the session at `ws` is currently authenticated.
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn is_logged_in(&self, ws: usize) -> bool {
        self.sessions[ws].logged_in
    }

    /// Everything the controller has done so far.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Feeds one tick of RSSI samples; returns how many actions were
    /// emitted this tick (they are appended to [`Controller::actions`]).
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the stream count.
    pub fn step(&mut self, tick: usize, row: &[f64]) -> usize {
        self.step_inner(tick, row, None)
    }

    /// Feeds one tick in which some streams are masked out (see
    /// [`MovementDetector::step_masked`]). Histories still receive the
    /// supplied row for every stream — the caller (e.g. the streaming
    /// runtime) passes gap-filled values there — but MD excludes the
    /// masked streams from `s_t`. With an all-`false` mask this is
    /// exactly [`Controller::step`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` or `mask.len()` differs from the stream
    /// count.
    pub fn step_masked(&mut self, tick: usize, row: &[f64], mask: &[bool]) -> usize {
        self.step_inner(tick, row, Some(mask))
    }

    fn step_inner(&mut self, tick: usize, row: &[f64], mask: Option<&[bool]>) -> usize {
        let before = self.actions.len();
        let t = tick as f64 / self.tick_hz;
        for (h, &x) in self.histories.iter_mut().zip(row) {
            h.push(x);
        }
        match mask {
            None => self.md.step(tick, row),
            Some(m) => self.md.step_masked(tick, row, m),
        };
        let dwt = self.md.open_duration_ticks(tick);
        let open_start = self.md.open_window_start();
        self.fsm_tick(tick, t, dwt, open_start);

        self.housekeeping(tick, t);
        self.prev_t = t;
        self.actions.len() - before
    }

    /// One Fig. 4 FSM advance given this tick's window readings —
    /// shared by per-tick stepping (live readings) and
    /// [`Controller::step_batch`] (captured readings).
    fn fsm_tick(&mut self, tick: usize, t: f64, dwt: usize, open_start: Option<usize>) {
        if dwt > 0 {
            // Corroboration clock for the fused light path — pure
            // recording, identical in every mode.
            self.last_window_tick = Some(tick as u64);
        }
        let t_delta_ticks = self.params.t_delta_ticks(self.tick_hz);
        match self.state {
            SystemState::Quiet => {
                if dwt >= t_delta_ticks && !self.rule1_done {
                    self.apply_rule1(tick, dwt, t, open_start);
                    self.rule1_done = true;
                    self.state = SystemState::Noisy;
                    self.fsm_event(tick, "noisy", dwt);
                }
            }
            SystemState::Noisy => {
                if dwt == 0 {
                    self.state = SystemState::Quiet;
                    self.rule1_done = false;
                    self.fsm_event(tick, "quiet", dwt);
                } else if dwt > t_delta_ticks {
                    self.apply_rule2(tick, t);
                }
            }
        }
    }

    /// Feeds a block of consecutive *unmasked* ticks (row-major: tick
    /// `i` of the block at `rows[i*n_streams .. (i+1)*n_streams]`,
    /// starting at `start_tick`). Appends one per-tick action count to
    /// `actions_per_tick` (so a streaming caller can attribute emitted
    /// actions to their ticks) and returns the block's total.
    ///
    /// Decisions are bit-identical to calling [`Controller::step`] per
    /// tick: MD runs ahead over the whole block via
    /// [`MovementDetector::step_batch_tracked`] — legal because the
    /// detector takes no feedback from the FSM — while the FSM and
    /// session housekeeping then replay per tick against the captured
    /// window readings and incrementally grown histories. With
    /// telemetry enabled or the reference paths pinned, this falls back
    /// to the per-tick loop so trace emission order is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the stream count.
    pub fn step_batch(
        &mut self,
        start_tick: usize,
        rows: &[f64],
        actions_per_tick: &mut Vec<usize>,
    ) -> usize {
        let n = self.histories.len();
        assert_eq!(rows.len() % n, 0, "row block width must be a multiple of the stream count");
        let block_start = self.actions.len();
        if self.telemetry.is_enabled() || self.reference_paths {
            for (i, row) in rows.chunks_exact(n).enumerate() {
                actions_per_tick.push(self.step(start_tick + i, row));
            }
            return self.actions.len() - block_start;
        }
        let mut meta = std::mem::take(&mut self.md_batch);
        meta.clear();
        self.md.step_batch_tracked(start_tick, rows, &mut meta);
        for (i, row) in rows.chunks_exact(n).enumerate() {
            let tick = start_tick + i;
            let t = tick as f64 / self.tick_hz;
            let before = self.actions.len();
            for (h, &x) in self.histories.iter_mut().zip(row) {
                h.push(x);
            }
            let step = &meta[i];
            self.fsm_tick(tick, t, step.open_duration_ticks, step.open_window_start);
            self.housekeeping(tick, t);
            self.prev_t = t;
            actions_per_tick.push(self.actions.len() - before);
        }
        self.md_batch = meta;
        self.actions.len() - block_start
    }

    /// Feeds one tick of ambient-light samples (one per configured
    /// light stream, in [`FusionConfig::light_workstations`] order),
    /// after this tick's [`Controller::step`]. `mask[i]` marks a
    /// stream with no sample this tick (transport gap): its detector
    /// state is frozen, exactly like MD's masked streams. Returns how
    /// many actions were emitted.
    ///
    /// In [`DecisionMode::RssiOnly`] the detectors still run (their
    /// state is live for a later mode switch or checkpoint) but never
    /// act, so the decision stream is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `lux.len()` or `mask.len()` differs from the
    /// configured light-stream count.
    pub fn observe_light(&mut self, tick: usize, lux: &[f64], mask: &[bool]) -> usize {
        assert_eq!(lux.len(), self.lights.len(), "light row width mismatch");
        assert_eq!(mask.len(), self.lights.len(), "light mask width mismatch");
        let before = self.actions.len();
        let t = tick as f64 / self.tick_hz;
        for i in 0..self.lights.len() {
            if mask[i] {
                self.lights[i].step_masked();
                continue;
            }
            match self.lights[i].step(lux[i]) {
                Some(LightEvent::Departure) => self.light_departure(tick, t, self.light_ws[i]),
                Some(LightEvent::Arrival) | None => {}
            }
        }
        self.actions.len() - before
    }

    /// A confirmed light release edge on `ws`'s desk: deauthenticate
    /// if the mode allows, the session is live, the user's input is
    /// idle, and (fused mode) RF movement corroborates.
    fn light_departure(&mut self, tick: usize, t: f64, ws: usize) {
        let (deauth, reason) = if self.mode == DecisionMode::RssiOnly {
            (false, "rssi_only_mode")
        } else if !self.sessions[ws].logged_in {
            (false, "not_logged_in")
        } else if !self.kma.is_idle(ws, self.params.alert_idle_s, t) {
            (false, "not_idle")
        } else if self.mode == DecisionMode::Fused
            && !self
                .last_window_tick
                .is_some_and(|w| tick as u64 <= w + self.corroborate_ticks)
        {
            (false, "no_rf_corroboration")
        } else {
            (true, "departure_confirmed")
        };
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                tick as u64,
                "light_departure",
                self.md.window_span(),
                &[
                    ("ws", Value::U64(ws as u64)),
                    ("deauth", Value::Bool(deauth)),
                    ("reason", Value::Str(reason.to_string())),
                ],
            );
            self.telemetry
                .counter_add(if deauth { "light_deauths" } else { "light_no_deauths" }, 1);
        }
        if deauth {
            self.sessions[ws].logged_in = false;
            self.sessions[ws].in_alert = false;
            self.sessions[ws].screensaver_on = false;
            let parent = self.md.window_span();
            self.act(tick, t, ActionKind::DeauthenticateLight { workstation: ws }, parent);
        }
    }

    /// Marks a Fig. 4 FSM transition in the trace.
    fn fsm_event(&mut self, tick: usize, to: &str, dwt: usize) {
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("controller_transitions", 1);
            self.telemetry.event(
                tick as u64,
                "fsm_transition",
                self.md.window_span(),
                &[("to", Value::Str(to.to_string())), ("dwt_ticks", Value::U64(dwt as u64))],
            );
        }
    }

    /// Appends an action and mirrors it into the trace/registry under
    /// a stable kind name.
    fn act(&mut self, tick: usize, t: f64, kind: ActionKind, parent: Option<SpanId>) {
        if self.telemetry.is_enabled() {
            let name = match kind {
                ActionKind::DeauthenticateRule1 { .. } => "deauth_rule1",
                ActionKind::DeauthenticateAlert { .. } => "deauth_alert",
                ActionKind::DeauthenticateTimeout { .. } => "deauth_timeout",
                ActionKind::DeauthenticateLight { .. } => "deauth_light",
                ActionKind::AlertEntered { .. } => "alert_entered",
                ActionKind::ScreenSaverOn { .. } => "screensaver_on",
                ActionKind::AlertCancelled { .. } => "alert_cancelled",
                ActionKind::Reauthenticated { .. } => "reauth",
            };
            self.telemetry.counter_add(&format!("actions_{name}"), 1);
            self.telemetry.event(
                tick as u64,
                name,
                parent,
                &[("ws", Value::U64(kind.workstation() as u64)), ("t", Value::F64(t))],
            );
        }
        self.actions.push(Action { t, kind });
    }

    /// The start tick Rule 1 should classify from. Normally MD still
    /// reports the open window; if it does not (the window closed on the
    /// very tick `dW_t` crossed `t∆`, e.g. when a watermark-driven
    /// runtime advances a tick late), the start is reconstructed from
    /// the watermark tick and the window duration instead of silently
    /// assuming the previous tick — `tick - 1` would hand RE a
    /// `t∆`-second feature window shifted almost entirely past the
    /// actual variation.
    fn rule1_window_start(open_start: Option<usize>, tick: usize, dwt: usize) -> usize {
        open_start.unwrap_or_else(|| (tick + 1).saturating_sub(dwt.max(1)))
    }

    /// Rule 1: classify the window's first `t∆` seconds and
    /// deauthenticate the predicted workstation if it is idle.
    ///
    /// With telemetry enabled, the whole evaluation is wrapped in a
    /// `rule1_eval` span parented onto MD's `md_window` span, carrying
    /// the RE feature vector, the per-class SVM votes/margins, the KMA
    /// idle set and the final verdict (deauth or the reason there was
    /// none) — the decision audit trail.
    /// `open_start` is MD's open-window start *as of this tick* — the
    /// live reading in per-tick stepping, or the captured per-tick
    /// reading when the detector ran ahead in [`Controller::step_batch`].
    fn apply_rule1(&mut self, tick: usize, dwt: usize, t: f64, open_start: Option<usize>) {
        let start = Self::rule1_window_start(open_start, tick, dwt);
        let audit = self.telemetry.span_open(
            tick as u64,
            "rule1_eval",
            self.md.window_span(),
            &[
                ("window_start_tick", Value::U64(start as u64)),
                ("dwt_ticks", Value::U64(dwt as u64)),
                ("t", Value::F64(t)),
            ],
        );
        let label = if audit.is_some() || self.reference_paths {
            // Traced or reference path: the original allocating
            // extraction (the audit event clones the features anyway).
            let features = extract_features_from_histories(
                &self.histories,
                start as u64,
                self.tick_hz,
                &self.params,
            );
            match &features {
                Some(features) => {
                    if audit.is_some() {
                        let p = self.re.classify_with_margins(features);
                        self.telemetry.event(
                            tick as u64,
                            "re_prediction",
                            audit,
                            &[
                                ("label", Value::U64(p.label as u64)),
                                (
                                    "classes",
                                    Value::U64s(
                                        self.re.classes().iter().map(|&c| c as u64).collect(),
                                    ),
                                ),
                                ("votes", Value::U64s(p.votes.iter().map(|&v| v as u64).collect())),
                                ("margins", Value::F64s(p.margins.clone())),
                                ("features", Value::F64s(features.clone())),
                            ],
                        );
                        p.label
                    } else {
                        self.re.classify(features)
                    }
                }
                None => {
                    // History evicted (cannot happen in practice).
                    self.rule1_verdict(tick, audit, start, None, false, "no_features");
                    return;
                }
            }
        } else if extract_features_from_histories_into(
            &self.histories,
            start as u64,
            self.tick_hz,
            &self.params,
            &mut self.win_buf,
            &mut self.feat_buf,
        ) {
            // Untraced hot path: reuse the window/feature scratch and
            // the SVM vote tally — allocation-free at steady state,
            // bit-identical label.
            self.re.classify_into(&self.feat_buf, &mut self.predict_scratch)
        } else {
            // History evicted (cannot happen in practice).
            self.rule1_verdict(tick, audit, start, None, false, "no_features");
            return;
        };
        if label == 0 {
            // w0: someone entered; nobody to deauthenticate.
            self.rule1_verdict(tick, audit, start, None, false, "w0_arrival");
            return;
        }
        let ws = label - 1;
        let (deauth, reason) = if self.mode == DecisionMode::LightOnly {
            // The ablation's light-only arm: RE still classifies (the
            // audit trail stays complete) but the RSSI rule never
            // deauthenticates.
            (false, "light_only_mode")
        } else if ws >= self.sessions.len() {
            (false, "ws_out_of_range")
        } else if !self.sessions[ws].logged_in {
            (false, "not_logged_in")
        } else if !self.kma.is_idle(ws, self.params.t_delta_s, t) {
            (false, "not_idle")
        } else {
            (true, "idle_and_predicted")
        };
        self.rule1_verdict(tick, audit, start, Some(ws), deauth, reason);
        if deauth {
            self.sessions[ws].logged_in = false;
            self.sessions[ws].in_alert = false;
            self.sessions[ws].screensaver_on = false;
            if self.telemetry.is_enabled() {
                self.telemetry
                    .histo_record("deauth_latency_ticks", (tick.saturating_sub(start)) as u64);
            }
            self.act(tick, t, ActionKind::DeauthenticateRule1 { workstation: ws }, audit);
        }
    }

    /// Emits the Rule 1 verdict event (and closes the audit span) —
    /// deauth or not, with the reason and the KMA idle-set membership
    /// at `t∆` the decision hinged on.
    fn rule1_verdict(
        &mut self,
        tick: usize,
        audit: Option<SpanId>,
        start: usize,
        ws: Option<usize>,
        deauth: bool,
        reason: &str,
    ) {
        if let Some(span) = audit {
            let idle_set: Vec<u64> = self
                .kma
                .idle_set(self.params.t_delta_s, tick as f64 / self.tick_hz)
                .iter()
                .map(|&w| w as u64)
                .collect();
            let mut attrs = vec![
                ("deauth", Value::Bool(deauth)),
                ("reason", Value::Str(reason.to_string())),
                ("window_start_tick", Value::U64(start as u64)),
                ("idle_set", Value::U64s(idle_set)),
            ];
            if let Some(ws) = ws {
                attrs.push(("ws", Value::U64(ws as u64)));
            }
            self.telemetry.event(tick as u64, "rule1_verdict", Some(span), &attrs);
            self.telemetry.span_close(tick as u64, span);
            self.telemetry.counter_add(
                if deauth { "rule1_deauths" } else { "rule1_no_deauths" },
                1,
            );
        }
    }

    /// Rule 2: every workstation idle ≥ 1 s enters alert state while
    /// the window persists.
    ///
    /// Runs every tick while a long window persists, so it queries
    /// [`Kma::is_idle`] per workstation instead of materializing
    /// [`Kma::idle_set`]'s `Vec` (which remains available for
    /// reporting); `benches/micro.rs` quantifies the difference.
    fn apply_rule2(&mut self, tick: usize, t: f64) {
        for ws in 0..self.sessions.len() {
            if !self.kma.is_idle(ws, self.params.alert_idle_s, t) {
                continue;
            }
            let session = &mut self.sessions[ws];
            if session.logged_in && !session.in_alert {
                session.in_alert = true;
                let parent = self.md.window_span();
                self.act(tick, t, ActionKind::AlertEntered { workstation: ws }, parent);
            }
        }
    }

    /// Per-tick session housekeeping: input cancellation, alert
    /// escalation, baseline timeout, re-authentication.
    fn housekeeping(&mut self, tick: usize, t: f64) {
        let parent = self.md.window_span();
        for ws in 0..self.sessions.len() {
            let had_input = self.kma.any_input_in(ws, self.prev_t, t + 1e-9);
            let session = &mut self.sessions[ws];
            if session.logged_in {
                if had_input && session.in_alert {
                    session.in_alert = false;
                    session.screensaver_on = false;
                    self.act(tick, t, ActionKind::AlertCancelled { workstation: ws }, parent);
                }
                let idle = self.kma.idle_time(ws, t);
                let session = &mut self.sessions[ws];
                if session.in_alert {
                    if !session.screensaver_on && idle >= self.params.t_id_s {
                        session.screensaver_on = true;
                        self.act(tick, t, ActionKind::ScreenSaverOn { workstation: ws }, parent);
                    }
                    let session = &mut self.sessions[ws];
                    if session.screensaver_on && idle >= self.params.t_id_s + self.params.t_ss_s {
                        session.logged_in = false;
                        session.in_alert = false;
                        session.screensaver_on = false;
                        self.act(
                            tick,
                            t,
                            ActionKind::DeauthenticateAlert { workstation: ws },
                            parent,
                        );
                        continue;
                    }
                }
                let session = &mut self.sessions[ws];
                if session.logged_in && idle >= self.params.timeout_s {
                    session.logged_in = false;
                    session.in_alert = false;
                    session.screensaver_on = false;
                    self.act(
                        tick,
                        t,
                        ActionKind::DeauthenticateTimeout { workstation: ws },
                        parent,
                    );
                }
            } else if had_input {
                session.logged_in = true;
                self.act(tick, t, ActionKind::Reauthenticated { workstation: ws }, parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::TrainingSample;
    use fadewich_officesim::InputTrace;
    use fadewich_stats::rng::Rng;

    /// A classifier trained on features drawn from the same synthetic
    /// distributions the controller tests generate: quiet windows
    /// (noise sd 0.6) are class 0 ("entered"), burst windows (sd 4.0)
    /// are class 1 ("left w1"). Training from the true generating
    /// process makes Rule 1's prediction deterministic in these tests.
    fn fixed_re(n_streams: usize) -> RadioEnvironment {
        use crate::features::extract_features;
        use fadewich_officesim::DayTrace;
        let mut rng = Rng::seed_from_u64(1);
        let params = FadewichParams::default();
        let mut samples = Vec::new();
        for i in 0..30 {
            let hot = i % 2 == 1;
            let sd = if hot { 4.0 } else { 0.6 };
            let mut day = DayTrace::with_capacity(n_streams, 30);
            for _ in 0..30 {
                let row: Vec<f64> =
                    (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
                day.push_row(&row);
            }
            let streams: Vec<usize> = (0..n_streams).collect();
            let features = extract_features(&day, &streams, 0, 5.0, &params);
            samples.push(TrainingSample { features, label: usize::from(hot) });
        }
        RadioEnvironment::train(&samples, None, &mut rng).unwrap()
    }

    /// Runs the controller over synthetic streams: quiet noise, then a
    /// strong fluctuation burst on every stream starting at `burst_at`.
    fn run_controller(
        inputs: &InputTrace,
        burst: Option<(usize, usize)>,
        n_ticks: usize,
    ) -> Vec<Action> {
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let kma = Kma::new(inputs);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let mut ctl = Controller::new(n_streams, 5.0, params, &re, kma).unwrap();
        let mut rng = Rng::seed_from_u64(7);
        for tick in 0..n_ticks {
            let noisy = burst.is_some_and(|(a, b)| tick >= a && tick < b);
            let sd = if noisy { 4.0 } else { 0.6 };
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
            ctl.step(tick, &row);
        }
        ctl.actions().to_vec()
    }

    /// Input trace: w1's user types until 120 s then leaves; w2 and w3
    /// keep typing all day.
    fn departure_inputs(n_seconds: usize) -> InputTrace {
        let busy: Vec<f64> = (0..n_seconds).step_by(3).map(|s| s as f64).collect();
        let w1: Vec<f64> = busy.iter().copied().filter(|&s| s <= 120.0).collect();
        InputTrace::from_times(vec![w1, busy.clone(), busy])
    }

    #[test]
    fn departing_user_deauthenticated_by_rule1() {
        let inputs = departure_inputs(400);
        // Burst starts at tick 600 (t = 120 s, the departure moment).
        let actions = run_controller(&inputs, Some((600, 640)), 1200);
        let deauth: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { workstation: 0 }))
            .collect();
        assert_eq!(deauth.len(), 1, "actions: {actions:?}");
        // Rule 1 fires when the window reaches t_delta (~4.6 s after 120).
        let dt = deauth[0].t - 120.0;
        assert!((3.0..=7.0).contains(&dt), "deauth after {dt} s");
    }

    #[test]
    fn reference_and_fast_paths_act_bit_identically() {
        // Same seeded day (with a deauth-triggering burst and masked
        // ticks) through the default fast paths and the scalar
        // reference paths: identical actions and identical exported
        // runtime state, bit for bit.
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let run = |reference: bool| {
            let kma = Kma::new(&inputs);
            let mut ctl = Controller::new(n_streams, 5.0, params, &re, kma).unwrap();
            ctl.set_reference_paths(reference);
            let mut rng = Rng::seed_from_u64(7);
            let mut mask = vec![false; n_streams];
            for tick in 0..1200 {
                let noisy = (600..640).contains(&tick);
                let sd = if noisy { 4.0 } else { 0.6 };
                let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
                if tick % 97 == 0 {
                    mask[tick / 97 % n_streams] = true;
                    ctl.step_masked(tick, &row, &mask);
                    mask[tick / 97 % n_streams] = false;
                } else {
                    ctl.step(tick, &row);
                }
            }
            (ctl.actions().to_vec(), ctl.runtime_state())
        };
        let (fast_actions, fast_state) = run(false);
        let (ref_actions, ref_state) = run(true);
        assert_eq!(fast_actions, ref_actions);
        assert_eq!(fast_state, ref_state);
        assert!(
            fast_actions.iter().any(|a| a.kind.is_deauth()),
            "day should exercise Rule 1: {fast_actions:?}"
        );
    }

    #[test]
    fn quiet_day_no_deauth_of_active_users() {
        let inputs = departure_inputs(400);
        let actions = run_controller(&inputs, None, 1200);
        // w2/w3 type constantly: never deauthenticated.
        assert!(
            !actions.iter().any(|a| a.kind.is_deauth() && a.kind.workstation() != 0),
            "actions: {actions:?}"
        );
    }

    #[test]
    fn idle_user_hits_baseline_timeout() {
        // w1 stops typing at 120 s; without any detected window the
        // timeout T = 300 s must fire at ~420 s.
        let inputs = departure_inputs(3000);
        let actions = run_controller(&inputs, None, 2400);
        let timeout: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::DeauthenticateTimeout { workstation: 0 }))
            .collect();
        assert_eq!(timeout.len(), 1);
        assert!((timeout[0].t - 420.0).abs() < 2.0, "timeout at {}", timeout[0].t);
    }

    #[test]
    fn reauthentication_on_return() {
        // w1 leaves at 120, returns and types at 300.
        let mut w1: Vec<f64> = (0..=120).step_by(3).map(f64::from).collect();
        w1.push(300.0);
        w1.push(303.0);
        let busy: Vec<f64> = (0..500).step_by(3).map(|s| s as f64).collect();
        let inputs = InputTrace::from_times(vec![w1, busy.clone(), busy]);
        let actions = run_controller(&inputs, Some((600, 640)), 1600);
        // Skip the day-start login (sessions begin logged out); the
        // return from the break is the reauth of interest.
        let reauth = actions
            .iter()
            .find(|a| {
                matches!(a.kind, ActionKind::Reauthenticated { workstation: 0 }) && a.t > 150.0
            });
        let reauth = reauth.expect("user should re-authenticate on return");
        assert!((reauth.t - 300.0).abs() < 1.0, "reauth at {}", reauth.t);
    }

    #[test]
    fn rule2_alerts_idle_workstations_in_long_windows() {
        // Long burst (12 s): the departed w1 is already handled by
        // Rule 1; the *other* workstations pass through alert whenever
        // their users' typing pauses exceed 1 s, and are released by
        // the next input without ever being deauthenticated.
        let inputs = departure_inputs(400);
        let actions = run_controller(&inputs, Some((600, 660)), 1200);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a.kind, ActionKind::AlertEntered { workstation: 1 | 2 })),
            "actions: {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a.kind, ActionKind::AlertCancelled { workstation: 1 | 2 })),
            "actions: {actions:?}"
        );
        assert!(!actions.iter().any(|a| a.kind.is_deauth() && a.kind.workstation() != 0));
    }

    #[test]
    fn rule1_fallback_uses_window_duration_not_previous_tick() {
        // MD reports the open window: use it verbatim.
        assert_eq!(Controller::rule1_window_start(Some(500), 523, 23), 500);
        // No open window: reconstruct the start from the watermark tick
        // and dW_t. The window covering ticks [501, 523] has dwt = 23.
        assert_eq!(Controller::rule1_window_start(None, 523, 23), 501);
        // The old fallback assumed `tick - 1` regardless of duration.
        assert_ne!(Controller::rule1_window_start(None, 523, 23), 522);
        // Degenerate durations stay in range.
        assert_eq!(Controller::rule1_window_start(None, 10, 0), 10);
        assert_eq!(Controller::rule1_window_start(None, 0, 50), 0);
    }

    #[test]
    fn masked_step_with_all_false_mask_matches_step() {
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let mut plain = Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mut masked = Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mask = vec![false; n_streams];
        let mut rng = Rng::seed_from_u64(7);
        for tick in 0..1200 {
            let noisy = (600..640).contains(&tick);
            let sd = if noisy { 4.0 } else { 0.6 };
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
            plain.step(tick, &row);
            masked.step_masked(tick, &row, &mask);
        }
        assert_eq!(plain.actions(), masked.actions());
    }

    #[test]
    fn runtime_state_restore_continues_bit_identically() {
        // Run a full day in one controller; run the same day in a
        // second controller that is checkpointed and rebuilt mid-burst
        // (Noisy state, sessions in flight). The stitched action logs
        // must match the uninterrupted run exactly.
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let mut full =
            Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mut pre = Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mut rng_full = Rng::seed_from_u64(7);
        let mut rng_split = Rng::seed_from_u64(7);
        let row_at = |rng: &mut Rng, tick: usize| -> Vec<f64> {
            let sd = if (600..660).contains(&tick) { 4.0 } else { 0.6 };
            (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect()
        };
        // Cut at tick 640: mid-window, Rule 1 already fired, Rule 2
        // alerts in flight.
        let cut = 640;
        for tick in 0..1200 {
            full.step(tick, &row_at(&mut rng_full, tick));
        }
        for tick in 0..cut {
            pre.step(tick, &row_at(&mut rng_split, tick));
        }
        let state = pre.runtime_state();
        assert_eq!(state.system_state, SystemState::Noisy, "cut should land mid-window");
        let mut post = Controller::from_runtime_state(
            n_streams,
            5.0,
            params,
            &re,
            Kma::new(&inputs),
            &state,
        )
        .unwrap();
        let roundtrip = post.runtime_state();
        assert_eq!(roundtrip.n_actions, 0, "restored action log starts empty");
        assert_eq!(
            ControllerState { n_actions: state.n_actions, ..roundtrip },
            state,
            "round trip changed the state"
        );
        for tick in cut..1200 {
            post.step(tick, &row_at(&mut rng_split, tick));
        }
        let mut stitched = pre.actions()[..state.n_actions as usize].to_vec();
        stitched.extend_from_slice(post.actions());
        assert_eq!(stitched, full.actions());
    }

    #[test]
    fn bad_controller_states_rejected() {
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let mut ctl = Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mut rng = Rng::seed_from_u64(7);
        for tick in 0..700 {
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * 0.6).collect();
            ctl.step(tick, &row);
        }
        let good = ctl.runtime_state();
        let rebuild = |s: &ControllerState| {
            Controller::from_runtime_state(n_streams, 5.0, params, &re, Kma::new(&inputs), s)
        };
        assert!(rebuild(&good).is_ok());

        // Wrong workstation count.
        let mut bad = good.clone();
        bad.sessions.pop();
        assert!(rebuild(&bad).is_err());
        // Logged-out session claiming an alert.
        let mut bad = good.clone();
        bad.sessions[0] =
            SessionState { logged_in: false, in_alert: true, screensaver_on: false };
        assert!(rebuild(&bad).is_err());
        // Screen saver outside alert state.
        let mut bad = good.clone();
        bad.sessions[0] =
            SessionState { logged_in: true, in_alert: false, screensaver_on: true };
        assert!(rebuild(&bad).is_err());
        // Wrong stream count.
        let mut bad = good.clone();
        bad.histories.pop();
        assert!(rebuild(&bad).is_err());
        // History capacity disagreeing with params.
        let mut bad = good.clone();
        bad.histories[0].capacity += 1;
        assert!(rebuild(&bad).is_err());
        // Non-finite prev_t.
        let mut bad = good.clone();
        bad.prev_t = f64::NAN;
        assert!(rebuild(&bad).is_err());
        // FSM and rule1_done out of sync.
        let mut bad = good.clone();
        bad.rule1_done = true;
        assert!(rebuild(&bad).is_err());
    }

    #[test]
    fn rule1_deauth_emits_causally_linked_audit_chain() {
        use fadewich_telemetry::{RecordKind, Telemetry, Value};

        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let telemetry = Telemetry::buffering();
        let mut ctl =
            Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        ctl.set_telemetry(telemetry.clone());
        let mut rng = Rng::seed_from_u64(7);
        for tick in 0..1200 {
            let sd = if (600..640).contains(&tick) { 4.0 } else { 0.6 };
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
            ctl.step(tick, &row);
        }
        assert!(
            ctl.actions()
                .iter()
                .any(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { workstation: 0 })),
            "scenario should produce a Rule 1 deauth: {:?}",
            ctl.actions()
        );

        let records = telemetry.records();
        // The deauth action event is parented on the rule1_eval span...
        let deauth = records
            .iter()
            .find(|r| r.kind == RecordKind::Event && r.name == "deauth_rule1")
            .expect("deauth event in trace");
        let audit_span = deauth.parent.expect("deauth parented on the audit span");
        let audit_open = records
            .iter()
            .find(|r| r.kind == RecordKind::Open && r.span == Some(audit_span))
            .expect("audit span open record");
        assert_eq!(audit_open.name, "rule1_eval");
        // ...which names the window-open tick and is itself parented on
        // the md_window span that opened at the s_t crossing.
        let start = match audit_open.attr("window_start_tick") {
            Some(Value::U64(s)) => *s,
            other => panic!("window_start_tick missing: {other:?}"),
        };
        let window_span = audit_open.parent.expect("audit span parented on md_window");
        let window_open = records
            .iter()
            .find(|r| r.kind == RecordKind::Open && r.span == Some(window_span))
            .expect("md_window open record");
        assert_eq!(window_open.name, "md_window");
        assert_eq!(window_open.attr("start_tick"), Some(&Value::U64(start)));
        // The RE prediction under the audit span carries the margins.
        let prediction = records
            .iter()
            .find(|r| r.name == "re_prediction" && r.parent == Some(audit_span))
            .expect("re_prediction under the audit span");
        match prediction.attr("margins") {
            Some(Value::F64s(m)) => assert_eq!(m.len(), re.classes().len()),
            other => panic!("margins missing: {other:?}"),
        }
        // The verdict names the rule and the idle-set membership.
        let verdict = records
            .iter()
            .find(|r| r.name == "rule1_verdict" && r.parent == Some(audit_span))
            .expect("rule1_verdict under the audit span");
        assert_eq!(verdict.attr("deauth"), Some(&Value::Bool(true)));
        assert_eq!(verdict.attr("reason"), Some(&Value::Str("idle_and_predicted".into())));
        match verdict.attr("idle_set") {
            Some(Value::U64s(set)) => assert!(set.contains(&0), "ws 0 should be idle: {set:?}"),
            other => panic!("idle_set missing: {other:?}"),
        }
        // Metrics side: the deauth latency histogram saw the decision.
        assert_eq!(
            telemetry.with_registry(|r| r.histogram("deauth_latency_ticks").map(|h| h.count())),
            Some(Some(1))
        );

        // And the instrumented run's actions are identical to an
        // uninstrumented controller's over the same inputs.
        let mut plain =
            Controller::new(n_streams, 5.0, params, &re, Kma::new(&inputs)).unwrap();
        let mut rng = Rng::seed_from_u64(7);
        for tick in 0..1200 {
            let sd = if (600..640).contains(&tick) { 4.0 } else { 0.6 };
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
            plain.step(tick, &row);
        }
        assert_eq!(plain.actions(), ctl.actions());
    }

    /// Fusion harness: w1's user types until 120 s then leaves. The
    /// desk's light stream dips while they sit (ticks 10..dip_end) and
    /// recovers afterwards; an optional RSSI burst simulates the RF
    /// movement of the departure.
    fn run_fused(
        mode: DecisionMode,
        burst: Option<(usize, usize)>,
        dip_end: usize,
    ) -> Vec<Action> {
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let fusion = FusionConfig {
            mode,
            light_workstations: vec![0, 1, 2],
            ..FusionConfig::rssi_only()
        };
        let mut ctl =
            Controller::with_fusion(n_streams, 5.0, params, &re, Kma::new(&inputs), fusion)
                .unwrap();
        let mut rng = Rng::seed_from_u64(7);
        let mask = vec![false; 3];
        for tick in 0..1200 {
            let noisy = burst.is_some_and(|(a, b)| tick >= a && tick < b);
            let sd = if noisy { 4.0 } else { 0.6 };
            let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
            ctl.step(tick, &row);
            let w0_lux = if (10..dip_end).contains(&tick) { 280.0 } else { 400.0 };
            ctl.observe_light(tick, &[w0_lux, 400.0, 400.0], &mask);
        }
        ctl.actions().to_vec()
    }

    #[test]
    fn light_only_mode_deauthenticates_on_release_and_suppresses_rule1() {
        // Dip ends at tick 600 (t = 120 s, the departure moment);
        // release hysteresis is 1.5 s, so the light deauth lands ~121.6
        // — ahead of the Rule 2 alert chain (~128 s), which finds the
        // session already closed.
        let actions = run_fused(DecisionMode::LightOnly, Some((600, 640)), 600);
        let light: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::DeauthenticateLight { workstation: 0 }))
            .collect();
        assert_eq!(light.len(), 1, "actions: {actions:?}");
        assert!((121.0..124.0).contains(&light[0].t), "light deauth at {}", light[0].t);
        // The RSSI rule is suppressed in this mode.
        assert!(
            !actions.iter().any(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { .. })),
            "rule 1 must not fire in light-only mode: {actions:?}"
        );
    }

    #[test]
    fn rssi_only_mode_never_acts_on_light() {
        let actions = run_fused(DecisionMode::RssiOnly, Some((600, 640)), 640);
        assert!(
            !actions.iter().any(|a| matches!(a.kind, ActionKind::DeauthenticateLight { .. })),
            "light must not act in rssi-only mode: {actions:?}"
        );
        // Rule 1 still handles the departure.
        assert!(actions
            .iter()
            .any(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { workstation: 0 })));
    }

    #[test]
    fn fused_mode_light_wins_with_corroboration_and_defers_without() {
        // Dip ends at 600 — the same moment the RF burst starts, so the
        // light release (~608) is corroborated by the open MD window
        // and beats Rule 1 (~623) to the deauthentication.
        let actions = run_fused(DecisionMode::Fused, Some((600, 660)), 600);
        let light: Vec<&Action> = actions
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::DeauthenticateLight { workstation: 0 }))
            .collect();
        assert_eq!(light.len(), 1, "actions: {actions:?}");
        assert!(
            !actions.iter().any(
                |a| matches!(a.kind, ActionKind::DeauthenticateRule1 { workstation: 0 })
            ),
            "light already logged w1 out: {actions:?}"
        );
        // Without any RF movement, the same release is refused.
        let no_rf = run_fused(DecisionMode::Fused, None, 600);
        assert!(
            !no_rf.iter().any(|a| matches!(a.kind, ActionKind::DeauthenticateLight { .. })),
            "uncorroborated release must not deauth in fused mode: {no_rf:?}"
        );
    }

    #[test]
    fn fused_runtime_state_restores_bit_identically() {
        let inputs = departure_inputs(400);
        let n_streams = 4;
        let re = fixed_re(n_streams);
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let fusion = FusionConfig {
            mode: DecisionMode::Fused,
            light_workstations: vec![0, 1, 2],
            ..FusionConfig::rssi_only()
        };
        let build = || {
            Controller::with_fusion(
                n_streams,
                5.0,
                params,
                &re,
                Kma::new(&inputs),
                fusion.clone(),
            )
            .unwrap()
        };
        let mut full = build();
        let mut pre = build();
        let row_at = |rng: &mut Rng, tick: usize| -> Vec<f64> {
            let sd = if (600..660).contains(&tick) { 4.0 } else { 0.6 };
            (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect()
        };
        let lux_at = |tick: usize| -> [f64; 3] {
            [if (10..600).contains(&tick) { 280.0 } else { 400.0 }, 400.0, 400.0]
        };
        let mask = [false; 3];
        let mut rng_full = Rng::seed_from_u64(7);
        let mut rng_split = Rng::seed_from_u64(7);
        // Cut at 604: detector armed, dip released, run-lengths mid-count.
        let cut = 604;
        for tick in 0..1200 {
            full.step(tick, &row_at(&mut rng_full, tick));
            full.observe_light(tick, &lux_at(tick), &mask);
        }
        for tick in 0..cut {
            pre.step(tick, &row_at(&mut rng_split, tick));
            pre.observe_light(tick, &lux_at(tick), &mask);
        }
        let state = pre.runtime_state();
        assert!(state.lights[0].armed, "cut should land with the detector armed");
        let mut post = Controller::from_runtime_state_fused(
            n_streams,
            5.0,
            params,
            &re,
            Kma::new(&inputs),
            fusion.clone(),
            &state,
        )
        .unwrap();
        assert_eq!(
            ControllerState { n_actions: state.n_actions, ..post.runtime_state() },
            state
        );
        for tick in cut..1200 {
            post.step(tick, &row_at(&mut rng_split, tick));
            post.observe_light(tick, &lux_at(tick), &mask);
        }
        let mut stitched = pre.actions()[..state.n_actions as usize].to_vec();
        stitched.extend_from_slice(post.actions());
        assert_eq!(stitched, full.actions());
        assert!(
            full.actions()
                .iter()
                .any(|a| matches!(a.kind, ActionKind::DeauthenticateLight { .. })),
            "day should exercise the light path: {:?}",
            full.actions()
        );
        // A state with the wrong light-stream count is rejected.
        let mut bad = state.clone();
        bad.lights.pop();
        assert!(Controller::from_runtime_state_fused(
            n_streams,
            5.0,
            params,
            &re,
            Kma::new(&inputs),
            fusion,
            &bad
        )
        .is_err());
    }

    #[test]
    fn active_user_not_deauthenticated_even_when_misclassified() {
        // Everyone keeps typing; even with a detected burst, Rule 1's
        // S(t_delta) check protects the active workstations.
        let busy: Vec<f64> = (0..400).step_by(3).map(|s| s as f64).collect();
        let inputs = InputTrace::from_times(vec![busy.clone(), busy.clone(), busy]);
        let actions = run_controller(&inputs, Some((600, 640)), 1200);
        assert!(
            !actions.iter().any(|a| a.kind.is_deauth()),
            "no one left; no deauth should occur: {actions:?}"
        );
    }
}
