//! FADEWICH system parameters.

/// All tunables of the FADEWICH pipeline, with the paper's §VII values
/// as defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadewichParams {
    /// Sliding-window length `d` for per-stream standard deviations (s).
    pub std_window_s: f64,
    /// Length of the initial normal-profile collection phase (s); the
    /// paper collects an installation-time profile with nobody moving.
    pub profile_init_s: f64,
    /// Anomaly percentile parameter α: `s_t` above the `(100 − α)`-th
    /// percentile of the profile CDF is anomalous (paper Fig. 2 marks
    /// the 99th percentile, i.e. α = 1).
    pub alpha: f64,
    /// Profile-update batch size `b` (in ticks / `s_t` values).
    pub batch_size: usize,
    /// Maximum fraction τ of anomalous values allowed in an update
    /// batch.
    pub tau: f64,
    /// Maximum number of `s_t` values retained in the normal profile.
    pub profile_capacity: usize,
    /// Variation-window duration threshold `t∆` (s); paper uses 4.5.
    pub t_delta_s: f64,
    /// Length of the window-initial segment RE extracts features from
    /// (s). The paper uses the first `t∆` seconds because "initial
    /// segments of users' paths are naturally less likely to overlap";
    /// in our 6 × 3 m office the paths merge onto the shared corridor
    /// sooner, so a slightly shorter segment keeps the signature
    /// workstation-specific. Must be ≤ `t∆` (classification happens at
    /// `t1 + t∆`, so the samples are available).
    pub feature_window_s: f64,
    /// Hangover: a window closes after this many seconds of continuous
    /// normal readings (bridges momentary dips below the threshold
    /// during one movement).
    pub window_hangover_s: f64,
    /// Alert-state screen-saver delay `t_ID` (s).
    pub t_id_s: f64,
    /// Screen-saver-to-deauthentication delay `t_ss` (s).
    pub t_ss_s: f64,
    /// Baseline inactivity timeout `T` (s); paper compares against 300.
    pub timeout_s: f64,
    /// Half-width δ of the ground-truth *true window* when matching MD
    /// windows to events (s).
    pub true_window_delta_s: f64,
    /// Histogram bins for the per-stream entropy feature.
    pub entropy_bins: usize,
    /// Autocorrelation lags averaged into the `ac` feature.
    pub acf_max_lag: usize,
    /// Idle threshold for Rule 2's `S(1)` query (s).
    pub alert_idle_s: f64,
    /// Robustness extension beyond Algorithm 1: after this many
    /// *consecutive* rejected update batches the profile is
    /// re-initialized from the most recent batch. Algorithm 1 as
    /// printed deadlocks if the radio environment shifts abruptly —
    /// every batch stays > τ anomalous against the stale profile
    /// forever. Set very high to disable.
    pub max_rejected_batches: usize,
}

impl Default for FadewichParams {
    fn default() -> Self {
        FadewichParams {
            std_window_s: 2.0,
            profile_init_s: 60.0,
            alpha: 1.0,
            batch_size: 100,
            tau: 0.1,
            profile_capacity: 1500,
            t_delta_s: 4.5,
            feature_window_s: 3.0,
            window_hangover_s: 0.6,
            t_id_s: 5.0,
            t_ss_s: 3.0,
            timeout_s: 300.0,
            true_window_delta_s: 3.0,
            entropy_bins: 16,
            acf_max_lag: 5,
            alert_idle_s: 1.0,
            max_rejected_batches: 15,
        }
    }
}

impl FadewichParams {
    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha < 100.0) {
            return Err(format!("alpha {} must be in (0, 100)", self.alpha));
        }
        if !(0.0..=1.0).contains(&self.tau) {
            return Err(format!("tau {} must be in [0, 1]", self.tau));
        }
        if self.batch_size == 0 || self.profile_capacity < self.batch_size {
            return Err("profile capacity must be >= batch size > 0".to_string());
        }
        if self.t_delta_s <= 0.0 || self.std_window_s <= 0.0 {
            return Err("time parameters must be positive".to_string());
        }
        if !(self.feature_window_s > 0.0) || self.feature_window_s > self.t_delta_s {
            return Err("feature window must be in (0, t_delta]".to_string());
        }
        if self.timeout_s < self.t_id_s + self.t_ss_s {
            return Err("timeout must exceed the alert path".to_string());
        }
        if self.entropy_bins == 0 || self.acf_max_lag == 0 {
            return Err("feature parameters must be positive".to_string());
        }
        if self.max_rejected_batches == 0 {
            return Err("max_rejected_batches must be positive".to_string());
        }
        Ok(())
    }

    /// Number of values in the [`FadewichParams::to_field_array`]
    /// representation.
    pub const N_FIELDS: usize = 17;

    /// Flattens the parameters into a fixed-order `f64` array for the
    /// model-artifact codec. The order below **is** the artifact v1
    /// field contract — changing it, or adding a field, requires a new
    /// artifact format version:
    ///
    /// `std_window_s, profile_init_s, alpha, batch_size, tau,
    /// profile_capacity, t_delta_s, feature_window_s,
    /// window_hangover_s, t_id_s, t_ss_s, timeout_s,
    /// true_window_delta_s, entropy_bins, acf_max_lag, alert_idle_s,
    /// max_rejected_batches`
    ///
    /// Integer fields are stored as `f64` (all realistic values are far
    /// below 2⁵³, so the round-trip is exact).
    pub fn to_field_array(&self) -> [f64; Self::N_FIELDS] {
        [
            self.std_window_s,
            self.profile_init_s,
            self.alpha,
            self.batch_size as f64,
            self.tau,
            self.profile_capacity as f64,
            self.t_delta_s,
            self.feature_window_s,
            self.window_hangover_s,
            self.t_id_s,
            self.t_ss_s,
            self.timeout_s,
            self.true_window_delta_s,
            self.entropy_bins as f64,
            self.acf_max_lag as f64,
            self.alert_idle_s,
            self.max_rejected_batches as f64,
        ]
    }

    /// Rebuilds parameters from a [`FadewichParams::to_field_array`]
    /// flattening and validates them.
    ///
    /// # Errors
    ///
    /// Returns a description when an integer-valued field is not a
    /// non-negative whole number, or when the assembled parameters
    /// fail [`FadewichParams::validate`].
    pub fn from_field_array(fields: &[f64; Self::N_FIELDS]) -> Result<FadewichParams, String> {
        let as_usize = |v: f64, name: &str| -> Result<usize, String> {
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64) {
                return Err(format!("{name} {v} is not a valid count"));
            }
            Ok(v as usize)
        };
        let params = FadewichParams {
            std_window_s: fields[0],
            profile_init_s: fields[1],
            alpha: fields[2],
            batch_size: as_usize(fields[3], "batch_size")?,
            tau: fields[4],
            profile_capacity: as_usize(fields[5], "profile_capacity")?,
            t_delta_s: fields[6],
            feature_window_s: fields[7],
            window_hangover_s: fields[8],
            t_id_s: fields[9],
            t_ss_s: fields[10],
            timeout_s: fields[11],
            true_window_delta_s: fields[12],
            entropy_bins: as_usize(fields[13], "entropy_bins")?,
            acf_max_lag: as_usize(fields[14], "acf_max_lag")?,
            alert_idle_s: fields[15],
            max_rejected_batches: as_usize(fields[16], "max_rejected_batches")?,
        };
        params.validate()?;
        Ok(params)
    }

    /// `t∆` in ticks at the given rate.
    pub fn t_delta_ticks(&self, tick_hz: f64) -> usize {
        (self.t_delta_s * tick_hz).round().max(1.0) as usize
    }

    /// The std window length in ticks.
    pub fn std_window_ticks(&self, tick_hz: f64) -> usize {
        (self.std_window_s * tick_hz).round().max(2.0) as usize
    }

    /// The RE feature window length in ticks.
    pub fn feature_window_ticks(&self, tick_hz: f64) -> usize {
        (self.feature_window_s * tick_hz).round().max(2.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid_and_match_paper() {
        let p = FadewichParams::default();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.t_delta_s, 4.5);
        assert_eq!(p.t_id_s, 5.0);
        assert_eq!(p.t_ss_s, 3.0);
        assert_eq!(p.timeout_s, 300.0);
        assert_eq!(p.alpha, 1.0);
    }

    #[test]
    fn tick_conversions() {
        let p = FadewichParams::default();
        assert_eq!(p.t_delta_ticks(5.0), 23); // 4.5 s * 5 Hz = 22.5 -> 23
        assert_eq!(p.std_window_ticks(5.0), 10);
    }

    #[test]
    fn field_array_round_trip_is_exact() {
        let p = FadewichParams { alpha: 2.5, batch_size: 77, ..Default::default() };
        let back = FadewichParams::from_field_array(&p.to_field_array()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn field_array_rejects_bad_counts_and_invalid_params() {
        let mut fields = FadewichParams::default().to_field_array();
        fields[3] = 2.5; // fractional batch_size
        assert!(FadewichParams::from_field_array(&fields).is_err());
        let mut fields = FadewichParams::default().to_field_array();
        fields[13] = f64::NAN; // entropy_bins
        assert!(FadewichParams::from_field_array(&fields).is_err());
        let mut fields = FadewichParams::default().to_field_array();
        fields[2] = 0.0; // alpha out of range -> validate() fires
        assert!(FadewichParams::from_field_array(&fields).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = FadewichParams { alpha: 0.0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = FadewichParams { tau: 1.5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = FadewichParams { batch_size: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = FadewichParams { timeout_s: 5.0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = FadewichParams { feature_window_s: 9.0, ..Default::default() };
        assert!(bad.validate().is_err());
    }
}
