//! Usability cost simulation (paper §VI-A, §VII-D, Table IV).
//!
//! The system's errors cost present users time: a screen saver that
//! starts while the user is at the desk must be cancelled (3 s), a
//! wrongful deauthentication forces a re-login (13 s). The paper
//! simulates keyboard/mouse input (78% of 5-s slots), replays the
//! detected windows and classifier outputs through Rules 1–2, counts
//! the errors, and averages over 100 input draws.

use fadewich_officesim::InputTrace;
use fadewich_stats::rng::Rng;

use crate::config::FadewichParams;
use crate::windows::VariationWindow;

/// Cost model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsabilityParams {
    /// Seconds a user spends cancelling a spurious screen saver.
    pub screensaver_cost_s: f64,
    /// Seconds a user spends re-authenticating after a wrongful
    /// deauthentication.
    pub relogin_cost_s: f64,
    /// Bounds on how quickly a present user reacts to a screen saver
    /// (must stay under `t_ss` or the session locks).
    pub reaction_bounds_s: (f64, f64),
}

impl Default for UsabilityParams {
    fn default() -> Self {
        UsabilityParams {
            screensaver_cost_s: 3.0,
            relogin_cost_s: 13.0,
            reaction_bounds_s: (0.5, 2.5),
        }
    }
}

/// Error counts of one simulated day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DayUsability {
    /// Screen savers that started while the user was present.
    pub error_screensavers: usize,
    /// Deauthentications that hit a present user.
    pub error_deauths: usize,
}

impl DayUsability {
    /// Total user cost in seconds under the given cost model.
    pub fn cost_seconds(&self, params: &UsabilityParams) -> f64 {
        self.error_screensavers as f64 * params.screensaver_cost_s
            + self.error_deauths as f64 * params.relogin_cost_s
    }
}

/// Whether workstation `ws`'s user is seated at `t`, given per-
/// workstation seated intervals.
fn seated_at(seated: &[Vec<(f64, f64)>], ws: usize, t: f64) -> bool {
    seated[ws].iter().any(|&(a, b)| t >= a && t < b)
}

/// Replays one day's detected windows and predictions through
/// Rules 1–2 against one realization of the input process, counting
/// user-facing errors.
///
/// - `windows` must be the significant (≥ `t∆`) windows of the day, in
///   order, with `predictions[i]` the classifier label of window `i`;
/// - `seated[ws]` are the ground-truth seated intervals of the user of
///   workstation `ws` (used only to decide whether an action hit a
///   present user);
/// - `rng` draws the users' screen-saver reaction times.
///
/// # Panics
///
/// Panics if `windows` and `predictions` lengths differ.
pub fn simulate_day(
    windows: &[VariationWindow],
    predictions: &[usize],
    inputs: &InputTrace,
    seated: &[Vec<(f64, f64)>],
    params: &FadewichParams,
    usability: &UsabilityParams,
    tick_hz: f64,
    rng: &mut Rng,
) -> DayUsability {
    assert_eq!(windows.len(), predictions.len(), "one prediction per window");
    let n_ws = inputs.n_workstations();
    let mut result = DayUsability::default();
    // Alerts already being escalated, to avoid double counting.
    let mut pending_until = vec![0.0f64; n_ws];
    // Cancelling a screen saver is itself an input (a nudge of the
    // mouse); the input trace doesn't contain it, so track it here.
    let mut virtual_input = vec![f64::NEG_INFINITY; n_ws];
    let effective_idle = |virtual_input: &[f64], ws: usize, t: f64| -> f64 {
        (t - virtual_input[ws]).min(inputs.idle_time(ws, t))
    };

    for (w, &pred) in windows.iter().zip(predictions) {
        let t1 = w.start_s(tick_hz);
        let t_rule1 = t1 + params.t_delta_s;
        let t2 = w.end_s(tick_hz);

        // Rule 1: deauthenticate the predicted workstation if idle for
        // the whole window.
        if pred > 0 {
            let ws = pred - 1;
            if ws < n_ws && inputs.idle_time(ws, t_rule1) >= params.t_delta_s {
                if seated_at(seated, ws, t_rule1) {
                    result.error_deauths += 1;
                }
                // Absent user: the correct case-A deauth; no user cost.
            }
        }

        // Rule 2: while the window persists past t∆, idle workstations
        // enter alert state. We scan the tail at tick resolution.
        let step = 1.0 / tick_hz;
        let mut t = t_rule1;
        while t <= t2 + 1e-9 {
            for ws in 0..n_ws {
                if t < pending_until[ws] {
                    continue;
                }
                if effective_idle(&virtual_input, ws, t) < params.alert_idle_s {
                    continue;
                }
                // Alert entered at time t; escalate from the effective
                // last input (real or screen-saver cancellation).
                let last = inputs
                    .last_input_before(ws, t)
                    .unwrap_or(0.0)
                    .max(virtual_input[ws]);
                let ss_on = (last + params.t_id_s).max(t);
                match inputs.next_input_after(ws, t) {
                    Some(next) if next < ss_on => {
                        // Input cancels the alert silently.
                        pending_until[ws] = next;
                    }
                    _ => {
                        if seated_at(seated, ws, ss_on) {
                            // Screen saver on a present user: cancelled
                            // after the reaction time, costing 3 s.
                            result.error_screensavers += 1;
                            let reaction = rng
                                .range_f64(usability.reaction_bounds_s.0, usability.reaction_bounds_s.1);
                            virtual_input[ws] = ss_on + reaction;
                            pending_until[ws] = ss_on + reaction;
                        } else {
                            // Absent: alert path deauthenticates at
                            // last + t_ID + t_ss (case-B handling, not
                            // a user-facing error).
                            pending_until[ws] = last + params.t_id_s + params.t_ss_s;
                        }
                    }
                }
            }
            t += step;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FadewichParams {
        FadewichParams::default()
    }

    fn win(t1_s: f64, t2_s: f64) -> VariationWindow {
        VariationWindow {
            start_tick: (t1_s * 5.0) as usize,
            end_tick: (t2_s * 5.0) as usize,
        }
    }

    /// Inputs: w1 typing steadily except for a 12 s pause around the
    /// window; w2 typing steadily; w3 absent all day.
    fn fixture_inputs() -> InputTrace {
        let mut w1: Vec<f64> = (0..200).map(|i| i as f64 * 3.0).collect();
        w1.retain(|&t| !(100.0..112.0).contains(&t));
        let w2: Vec<f64> = (0..200).map(|i| 1.5 + i as f64 * 3.0).collect();
        InputTrace::from_times(vec![w1, w2, vec![]])
    }

    fn seated_fixture() -> Vec<Vec<(f64, f64)>> {
        vec![vec![(0.0, 600.0)], vec![(0.0, 600.0)], vec![]]
    }

    #[test]
    fn idle_present_user_gets_screensaver_error() {
        // Window spans 100..110 s while w1's user is pausing: the alert
        // escalates to a screen saver on a present user.
        let windows = vec![win(100.0, 110.0)];
        let predictions = vec![0]; // w0 -> no rule-1 deauth
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(1);
        let day = simulate_day(
            &windows,
            &predictions,
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        // The 12-s pause earns the initial screen saver plus one
        // re-alert while the window is still open (Rule 2 re-applies
        // after the cancellation input).
        assert_eq!(day.error_screensavers, 2, "{day:?}");
        assert_eq!(day.error_deauths, 0);
        assert!((day.cost_seconds(&UsabilityParams::default()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn misclassification_deauths_present_idle_user() {
        // Prediction says "w1's user left"; w1's user is present but in
        // an idle spell of >= t_delta: rule 1 wrongly deauthenticates.
        let windows = vec![win(104.6, 110.0)];
        let predictions = vec![1];
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(2);
        let day = simulate_day(
            &windows,
            &predictions,
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        assert_eq!(day.error_deauths, 1, "{day:?}");
        assert!(day.cost_seconds(&UsabilityParams::default()) >= 13.0);
    }

    #[test]
    fn active_user_immune() {
        // w2's user never pauses: predictions against w2 do nothing.
        let windows = vec![win(100.0, 110.0)];
        let predictions = vec![2];
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(3);
        let day = simulate_day(
            &windows,
            &predictions,
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        assert_eq!(day.error_deauths, 0);
    }

    #[test]
    fn absent_workstation_incurs_no_cost() {
        // w3 is absent; its alert path runs to deauth without errors.
        let windows = vec![win(100.0, 110.0)];
        let predictions = vec![3];
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(4);
        let day = simulate_day(
            &windows,
            &predictions,
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        // w1 pausing still earns its screensaver; but no deauth errors.
        assert_eq!(day.error_deauths, 0);
    }

    #[test]
    fn no_windows_no_cost() {
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(5);
        let day = simulate_day(
            &[],
            &[],
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        assert_eq!(day, DayUsability::default());
        assert_eq!(day.cost_seconds(&UsabilityParams::default()), 0.0);
    }

    #[test]
    fn alert_not_charged_unboundedly() {
        // A longer window must not keep charging the same pause beyond
        // the cancellation/re-alert cycle: exactly two screen savers
        // fit in the 12-s pause regardless of window length.
        let windows = vec![win(100.0, 115.0)];
        let predictions = vec![0];
        let inputs = fixture_inputs();
        let mut rng = Rng::seed_from_u64(6);
        let day = simulate_day(
            &windows,
            &predictions,
            &inputs,
            &seated_fixture(),
            &params(),
            &UsabilityParams::default(),
            5.0,
            &mut rng,
        );
        assert_eq!(day.error_screensavers, 2, "{day:?}");
    }
}
