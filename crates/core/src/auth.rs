//! Per-sensor frame-authentication keys.
//!
//! "Rejecting the Attack" (PAPERS.md) defends 802.11 management frames
//! by authenticating their source; FADEWICH's sensor → station link
//! needs the same defense, because a deployed station otherwise ingests
//! unauthenticated RSSI frames straight off the air. This module holds
//! the key material side of that defense:
//!
//! - [`AuthKey`] — one sensor's 128-bit SipHash-2-4 MAC key;
//! - [`KeyTable`] — the station's sensor-id → key map, carried inside
//!   the versioned model artifact (v3) so serving processes receive
//!   keys through the same guarded channel as the model itself.
//!
//! Key hygiene is enforced by construction *and* by lint:
//! [`AuthKey::derive`] is the blessed way to mint keys (a keyed
//! derivation from a master seed, so two sensors never share a key and
//! a leaked per-sensor key does not reveal the master);
//! [`AuthKey::from_bytes`] exists for the artifact codec to
//! reconstitute stored keys, and `scripts/ci.sh` greps that no other
//! non-test code calls it — constants in source are how hardcoded
//! credentials happen.

use fadewich_stats::mac::{siphash24, SipHasher};

/// A 128-bit per-sensor MAC key.
///
/// Deliberately *not* `Debug`-transparent, `Display`, or serialized by
/// any derive: the only way bytes leave is [`AuthKey::to_bytes`], used
/// by the artifact codec.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey([u8; 16]);

impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; a truncated digest is enough to
        // tell two keys apart in test failures.
        let digest = siphash24(&self.0, b"authkey-debug");
        write!(f, "AuthKey(#{:04x})", digest as u16)
    }
}

impl AuthKey {
    /// Derives sensor `sensor_id`'s key from a deployment master seed.
    ///
    /// The derivation is itself a SipHash PRF keyed by the master seed
    /// over a domain-separated message, so per-sensor keys are
    /// pairwise independent and the master seed is not recoverable
    /// from any of them.
    pub fn derive(master_seed: u64, sensor_id: u16) -> AuthKey {
        let master: [u8; 16] = {
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&master_seed.to_le_bytes());
            k[8..].copy_from_slice(&master_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
            k
        };
        let mut key = [0u8; 16];
        for (half, out) in key.chunks_exact_mut(8).enumerate() {
            let mut h = SipHasher::new(&master);
            h.write(b"fadewich-sensor-key");
            h.write(&[half as u8]);
            h.write(&sensor_id.to_le_bytes());
            out.copy_from_slice(&h.finish().to_le_bytes());
        }
        AuthKey(key)
    }

    /// Reconstitutes a key from stored bytes. **Codec use only** — new
    /// keys come from [`AuthKey::derive`]; CI lints that nothing else
    /// calls this outside tests.
    pub fn from_bytes(bytes: [u8; 16]) -> AuthKey {
        AuthKey(bytes)
    }

    /// The raw key bytes, for the artifact codec.
    pub fn to_bytes(self) -> [u8; 16] {
        self.0
    }

    /// MACs a two-part message (header ‖ payload) without copying.
    pub fn tag_parts(&self, head: &[u8], tail: &[u8]) -> u64 {
        let mut h = SipHasher::new(&self.0);
        h.write(head);
        h.write(tail);
        h.finish()
    }
}

/// The station's sensor-id → key map.
///
/// Stored sorted by sensor id so the artifact encoding is canonical
/// (same table ⇒ same bytes ⇒ same CRC).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeyTable {
    /// `(sensor id, key)` pairs, strictly ascending by sensor id.
    entries: Vec<(u16, AuthKey)>,
}

impl KeyTable {
    /// An empty table.
    pub fn new() -> KeyTable {
        KeyTable::default()
    }

    /// Derives a full table for sensors `0..n_sensors` from one master
    /// seed — the normal deployment path.
    pub fn derive(master_seed: u64, n_sensors: u16) -> KeyTable {
        KeyTable {
            entries: (0..n_sensors).map(|s| (s, AuthKey::derive(master_seed, s))).collect(),
        }
    }

    /// Inserts or replaces one sensor's key.
    pub fn insert(&mut self, sensor: u16, key: AuthKey) {
        match self.entries.binary_search_by_key(&sensor, |&(s, _)| s) {
            Ok(i) => self.entries[i].1 = key,
            Err(i) => self.entries.insert(i, (sensor, key)),
        }
    }

    /// Looks up one sensor's key.
    pub fn get(&self, sensor: u16) -> Option<&AuthKey> {
        self.entries
            .binary_search_by_key(&sensor, |&(s, _)| s)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of keyed sensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(sensor id, key)` in ascending sensor order — the
    /// canonical encoding order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &AuthKey)> {
        self.entries.iter().map(|(s, k)| (*s, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_per_sensor() {
        let a = AuthKey::derive(0xD3B, 0);
        assert_eq!(a, AuthKey::derive(0xD3B, 0), "same inputs must re-derive the same key");
        assert_ne!(a, AuthKey::derive(0xD3B, 1), "sensors must not share keys");
        assert_ne!(a, AuthKey::derive(0xD3C, 0), "master seeds must not share keys");
        // Both key halves must depend on the inputs (a constant half
        // would halve the effective key size).
        let b = AuthKey::derive(0xD3B, 1).to_bytes();
        let ab = a.to_bytes();
        assert_ne!(ab[..8], b[..8]);
        assert_ne!(ab[8..], b[8..]);
    }

    #[test]
    fn tag_parts_matches_contiguous_mac() {
        let key = AuthKey::derive(7, 3);
        let head = b"header bytes";
        let tail = b"payload bytes";
        let mut joined = head.to_vec();
        joined.extend_from_slice(tail);
        assert_eq!(key.tag_parts(head, tail), siphash24(&key.to_bytes(), &joined));
    }

    #[test]
    fn key_table_lookup_and_canonical_order() {
        let mut table = KeyTable::new();
        table.insert(5, AuthKey::derive(1, 5));
        table.insert(2, AuthKey::derive(1, 2));
        table.insert(5, AuthKey::derive(9, 5)); // replace
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(5), Some(&AuthKey::derive(9, 5)));
        assert_eq!(table.get(2), Some(&AuthKey::derive(1, 2)));
        assert_eq!(table.get(3), None);
        let order: Vec<u16> = table.iter().map(|(s, _)| s).collect();
        assert_eq!(order, vec![2, 5], "iteration must be ascending by sensor id");

        let derived = KeyTable::derive(0xD3B, 4);
        assert_eq!(derived.len(), 4);
        for s in 0..4 {
            assert_eq!(derived.get(s), Some(&AuthKey::derive(0xD3B, s)));
        }
        assert!(!derived.is_empty());
        assert!(KeyTable::new().is_empty());
    }

    #[test]
    fn debug_never_prints_key_bytes() {
        let key = AuthKey::derive(0xFEED, 1);
        let shown = format!("{key:?}");
        for window in key.to_bytes().windows(2) {
            let hex = format!("{:02x}{:02x}", window[0], window[1]);
            assert!(!shown.to_lowercase().contains(&hex) || hex == "0000" || shown.len() < 4);
        }
        assert!(shown.starts_with("AuthKey(#"));
    }
}
