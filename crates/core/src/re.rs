//! Radio Environment module (paper §IV-D).
//!
//! RE owns the trained classifier. During training, variation-window
//! samples are labeled *automatically* by correlating them with KMA
//! idle times — a workstation that went idle exactly when the window
//! started, and stayed idle, is the departure; a long-idle workstation
//! that comes alive right after is an arrival (`w0`). Ambiguous windows
//! are discarded, exactly as §IV-D3 prescribes.

use fadewich_stats::rng::Rng;
use fadewich_svm::{Kernel, MultiClassSvm, SmoParams, TrainError};

use crate::features::TrainingSample;
use crate::kma::Kma;

/// Parameters of the automatic labeling heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoLabelParams {
    /// A departure candidate's last input must fall within
    /// `[t1 − slack_before, t1 + slack_after]`.
    pub slack_before_s: f64,
    /// See `slack_before_s`.
    pub slack_after_s: f64,
    /// The departure candidate must then stay idle until
    /// `t1 + departure_probe_s`.
    pub departure_probe_s: f64,
    /// An arrival candidate must have been idle at least this long at
    /// `t1`...
    pub arrival_min_idle_s: f64,
    /// ...and produce input within `t1 + arrival_probe_s`.
    pub arrival_probe_s: f64,
}

impl Default for AutoLabelParams {
    fn default() -> Self {
        AutoLabelParams {
            slack_before_s: 3.0,
            slack_after_s: 2.0,
            departure_probe_s: 15.0,
            arrival_min_idle_s: 60.0,
            arrival_probe_s: 25.0,
        }
    }
}

/// Automatically labels the variation window starting at `t1` (seconds
/// from day start), or `None` when the evidence is ambiguous.
///
/// Returns the paper's label convention: `0` for `w0` (arrival),
/// `ws + 1` for a departure from `ws`.
pub fn auto_label(kma: &Kma<'_>, t1: f64, params: &AutoLabelParams) -> Option<usize> {
    let mut departures = Vec::new();
    let mut arrivals = Vec::new();
    for ws in 0..kma.n_workstations() {
        let probe_t = t1 + params.departure_probe_s;
        match kma.last_input_before(ws, probe_t) {
            Some(last)
                if last >= t1 - params.slack_before_s && last <= t1 + params.slack_after_s =>
            {
                // Went idle right at the window start and stayed idle.
                departures.push(ws);
            }
            _ => {}
        }
        let was_long_idle = kma.idle_time(ws, t1) >= params.arrival_min_idle_s;
        if was_long_idle && kma.any_input_in(ws, t1, t1 + params.arrival_probe_s) {
            arrivals.push(ws);
        }
    }
    match (departures.len(), arrivals.len()) {
        (1, 0) => Some(departures[0] + 1),
        (0, n) if n >= 1 => Some(0),
        _ => None,
    }
}

/// The trained Radio Environment classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioEnvironment {
    svm: MultiClassSvm,
}

impl RadioEnvironment {
    /// Trains on labeled samples with the given kernel. `None` selects
    /// the default: a linear kernel, which handles RE's
    /// high-dimensional, small-sample feature matrices markedly better
    /// than RBF (the classifier ablation bench quantifies this).
    ///
    /// # Errors
    ///
    /// Propagates SVM training errors (empty set, single class, ragged
    /// feature rows).
    pub fn train(
        samples: &[TrainingSample],
        kernel: Option<Kernel>,
        rng: &mut Rng,
    ) -> Result<RadioEnvironment, TrainError> {
        // Borrowed views into the samples: training standardizes into
        // its own buffers, so the O(n·d) feature copy is unnecessary.
        let xs: Vec<&[f64]> = samples.iter().map(|s| s.features.as_slice()).collect();
        let ys: Vec<usize> = samples.iter().map(|s| s.label).collect();
        let kernel = kernel.unwrap_or(Kernel::Linear);
        let svm = MultiClassSvm::train(&xs, &ys, kernel, SmoParams::default(), rng)?;
        Ok(RadioEnvironment { svm })
    }

    /// Wraps an already-assembled classifier (the model-artifact load
    /// path).
    pub fn from_svm(svm: MultiClassSvm) -> RadioEnvironment {
        RadioEnvironment { svm }
    }

    /// The underlying ensemble, for state export.
    pub fn svm(&self) -> &MultiClassSvm {
        &self.svm
    }

    /// Classifies one sample's features into a label.
    pub fn classify(&self, features: &[f64]) -> usize {
        self.svm.predict(features)
    }

    /// Allocation-free [`classify`](Self::classify) into caller-owned
    /// scratch (the controller's untraced per-tick decision path).
    /// Returns the same label bit-identically.
    pub fn classify_into(
        &self,
        features: &[f64],
        scratch: &mut fadewich_svm::PredictScratch,
    ) -> usize {
        self.svm.predict_into(features, scratch)
    }

    /// Classifies one sample and returns the full per-class vote and
    /// margin tally (the audit trail records it next to the verdict).
    /// The label agrees bit-exactly with [`classify`](Self::classify).
    pub fn classify_with_margins(&self, features: &[f64]) -> fadewich_svm::Prediction {
        self.svm.predict_with_margins(features)
    }

    /// Classes seen at training time.
    pub fn classes(&self) -> &[usize] {
        self.svm.classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::InputTrace;

    fn label_with(inputs: InputTrace, t1: f64) -> Option<usize> {
        let kma = Kma::new(&inputs);
        auto_label(&kma, t1, &AutoLabelParams::default())
    }

    #[test]
    fn clean_departure_labeled() {
        // w2's user types until t = 100, then silence; others keep typing.
        let inputs = InputTrace::from_times(vec![
            (0..30).map(|i| 4.0 * i as f64).collect(),     // w1 active
            vec![90.0, 95.0, 100.0],                       // w2 departs at 100
            (0..30).map(|i| 1.0 + 4.0 * i as f64).collect(), // w3 active
        ]);
        assert_eq!(label_with(inputs, 100.5), Some(2));
    }

    #[test]
    fn arrival_labeled_w0() {
        // w3 idle since day start, first input at 106 (sat down after
        // entering at ~100); others active.
        let inputs = InputTrace::from_times(vec![
            (0..40).map(|i| 3.0 * i as f64).collect(),
            (0..40).map(|i| 1.0 + 3.0 * i as f64).collect(),
            vec![106.0, 109.0, 114.0],
        ]);
        assert_eq!(label_with(inputs, 100.0), Some(0));
    }

    #[test]
    fn ambiguous_double_departure_discarded() {
        // Two workstations go idle at the window start.
        let inputs = InputTrace::from_times(vec![
            vec![98.0, 100.0],
            vec![99.5],
            (0..40).map(|i| 3.0 * i as f64).collect(),
        ]);
        assert_eq!(label_with(inputs, 100.5), None);
    }

    #[test]
    fn burst_with_no_activity_change_discarded() {
        // Everyone keeps typing through the window: nothing to label.
        let inputs = InputTrace::from_times(vec![
            (0..60).map(|i| 3.0 * i as f64).collect(),
            (0..60).map(|i| 1.0 + 3.0 * i as f64).collect(),
            (0..60).map(|i| 2.0 + 3.0 * i as f64).collect(),
        ]);
        assert_eq!(label_with(inputs, 100.0), None);
    }

    #[test]
    fn departure_candidate_must_stay_idle() {
        // w1 stops at 100 but types again at 108 (< probe 15): a pause,
        // not a departure. No other signals -> discard.
        let inputs = InputTrace::from_times(vec![
            vec![96.0, 100.0, 108.0],
            (0..60).map(|i| 3.0 * i as f64).collect(),
            (0..60).map(|i| 1.5 + 3.0 * i as f64).collect(),
        ]);
        assert_eq!(label_with(inputs, 100.5), None);
    }

    #[test]
    fn training_and_classification_roundtrip() {
        let mut rng = Rng::seed_from_u64(2);
        let mut samples = Vec::new();
        for i in 0..40 {
            let label = i % 3;
            let mut features = vec![0.0; 6];
            features[label * 2] = 5.0 + rng.normal() * 0.3;
            features[label * 2 + 1] = 3.0 + rng.normal() * 0.3;
            samples.push(TrainingSample { features, label });
        }
        let re = RadioEnvironment::train(&samples, None, &mut rng).unwrap();
        assert_eq!(re.classes(), &[0, 1, 2]);
        let mut correct = 0;
        for s in &samples {
            if re.classify(&s.features) == s.label {
                correct += 1;
            }
        }
        assert!(correct >= 36, "correct = {correct}/40");
    }

    #[test]
    fn training_errors_propagate() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(
            RadioEnvironment::train(&[], None, &mut rng).unwrap_err(),
            TrainError::Empty
        );
        let one_class = vec![
            TrainingSample { features: vec![1.0], label: 1 },
            TrainingSample { features: vec![2.0], label: 1 },
        ];
        assert_eq!(
            RadioEnvironment::train(&one_class, None, &mut rng).unwrap_err(),
            TrainError::BadLabels
        );
    }
}
