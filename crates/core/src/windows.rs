//! Variation windows (paper §IV-C4).
//!
//! A variation window `[t1, t2]` is a maximal interval during which MD
//! reports anomalous fluctuations. Windows shorter than `t∆` are
//! ignored; longer ones trigger system decisions. The tracker applies a
//! short *hangover* so that a movement whose `s_t` momentarily dips
//! below the threshold still forms one window.

/// A closed variation window, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariationWindow {
    /// First anomalous tick.
    pub start_tick: usize,
    /// Last anomalous tick (inclusive).
    pub end_tick: usize,
}

impl VariationWindow {
    /// Window duration in ticks (inclusive of both ends).
    pub fn duration_ticks(&self) -> usize {
        self.end_tick - self.start_tick + 1
    }

    /// Duration in seconds at the given rate.
    pub fn duration_s(&self, tick_hz: f64) -> f64 {
        self.duration_ticks() as f64 / tick_hz
    }

    /// Start time in seconds.
    pub fn start_s(&self, tick_hz: f64) -> f64 {
        self.start_tick as f64 / tick_hz
    }

    /// End time in seconds.
    pub fn end_s(&self, tick_hz: f64) -> f64 {
        self.end_tick as f64 / tick_hz
    }

    /// Whether `[a, b]` (seconds) overlaps this window.
    pub fn overlaps_interval(&self, a: f64, b: f64, tick_hz: f64) -> bool {
        self.start_s(tick_hz) <= b && self.end_s(tick_hz) >= a
    }
}

/// The complete runtime state of a [`WindowTracker`], exportable for
/// crash-safe checkpointing: the open window (if any), the hangover
/// countdown, and the closed-window log.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTrackerState {
    /// Hangover length the tracker was built with.
    pub hangover_ticks: usize,
    /// Start tick of the currently open window, if one is open.
    pub open_start: Option<usize>,
    /// Last anomalous tick of the open window.
    pub last_anomalous: usize,
    /// Consecutive normal ticks since the last anomalous one.
    pub quiet_run: usize,
    /// All windows closed so far, in order.
    pub closed: Vec<VariationWindow>,
}

/// Online tracker turning a per-tick anomalous/normal stream into
/// variation windows.
#[derive(Debug, Clone)]
pub struct WindowTracker {
    hangover_ticks: usize,
    /// Open window start, if any.
    open_start: Option<usize>,
    /// Last anomalous tick of the open window.
    last_anomalous: usize,
    /// Normal ticks seen since the last anomalous one.
    quiet_run: usize,
    closed: Vec<VariationWindow>,
}

impl WindowTracker {
    /// Creates a tracker; the window closes after `hangover_ticks`
    /// consecutive normal ticks.
    pub fn new(hangover_ticks: usize) -> WindowTracker {
        WindowTracker {
            hangover_ticks: hangover_ticks.max(1),
            open_start: None,
            last_anomalous: 0,
            quiet_run: 0,
            closed: Vec::new(),
        }
    }

    /// Feeds one tick's MD verdict; returns a window when one closes.
    pub fn push(&mut self, tick: usize, anomalous: bool) -> Option<VariationWindow> {
        if anomalous {
            if self.open_start.is_none() {
                self.open_start = Some(tick);
            }
            self.last_anomalous = tick;
            self.quiet_run = 0;
            None
        } else if let Some(start) = self.open_start {
            self.quiet_run += 1;
            if self.quiet_run >= self.hangover_ticks {
                let w = VariationWindow { start_tick: start, end_tick: self.last_anomalous };
                self.open_start = None;
                self.quiet_run = 0;
                self.closed.push(w);
                Some(w)
            } else {
                None
            }
        } else {
            None
        }
    }

    /// Duration (ticks) of the currently open window as of `tick`:
    /// `dW_t` in the paper's state machine; 0 when no window is open.
    pub fn open_duration_ticks(&self, tick: usize) -> usize {
        match self.open_start {
            Some(start) => tick.saturating_sub(start) + 1,
            None => 0,
        }
    }

    /// The currently open window's start tick.
    pub fn open_start(&self) -> Option<usize> {
        self.open_start
    }

    /// Flushes any open window at end of stream.
    pub fn finish(&mut self, last_tick: usize) -> Option<VariationWindow> {
        let _ = last_tick;
        if let Some(start) = self.open_start.take() {
            let w = VariationWindow { start_tick: start, end_tick: self.last_anomalous };
            self.closed.push(w);
            Some(w)
        } else {
            None
        }
    }

    /// All windows closed so far, in order.
    pub fn closed_windows(&self) -> &[VariationWindow] {
        &self.closed
    }

    /// Exports the full runtime state for checkpointing.
    pub fn state(&self) -> WindowTrackerState {
        WindowTrackerState {
            hangover_ticks: self.hangover_ticks,
            open_start: self.open_start,
            last_anomalous: self.last_anomalous,
            quiet_run: self.quiet_run,
            closed: self.closed.clone(),
        }
    }

    /// Rebuilds a tracker from an exported state.
    ///
    /// # Errors
    ///
    /// Returns a description when the state is inconsistent: a zero
    /// hangover, a quiet run that should already have closed the open
    /// window, an open window starting after its last anomalous tick,
    /// or a closed-window log that is not ordered and disjoint.
    pub fn from_state(state: &WindowTrackerState) -> Result<WindowTracker, String> {
        if state.hangover_ticks == 0 {
            return Err("window hangover must be positive".to_string());
        }
        if let Some(start) = state.open_start {
            if state.last_anomalous < start {
                return Err(format!(
                    "open window starts at {} but last anomalous tick is {}",
                    start, state.last_anomalous
                ));
            }
            if state.quiet_run >= state.hangover_ticks {
                return Err(format!(
                    "quiet run {} should already have closed the window (hangover {})",
                    state.quiet_run, state.hangover_ticks
                ));
            }
        }
        for w in &state.closed {
            if w.end_tick < w.start_tick {
                return Err(format!("closed window [{}, {}] is inverted", w.start_tick, w.end_tick));
            }
        }
        for pair in state.closed.windows(2) {
            if pair[0].end_tick >= pair[1].start_tick {
                return Err("closed windows overlap or are out of order".to_string());
            }
        }
        Ok(WindowTracker {
            hangover_ticks: state.hangover_ticks,
            open_start: state.open_start,
            last_anomalous: state.last_anomalous,
            quiet_run: state.quiet_run,
            closed: state.closed.clone(),
        })
    }
}

/// Filters windows by the `t∆` duration threshold (paper: shorter
/// windows are ignored as non-movements).
pub fn significant_windows(
    windows: &[VariationWindow],
    t_delta_ticks: usize,
) -> Vec<VariationWindow> {
    windows
        .iter()
        .copied()
        .filter(|w| w.duration_ticks() >= t_delta_ticks)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tracker: &mut WindowTracker, pattern: &[bool]) -> Vec<VariationWindow> {
        let mut out = Vec::new();
        for (tick, &a) in pattern.iter().enumerate() {
            if let Some(w) = tracker.push(tick, a) {
                out.push(w);
            }
        }
        if let Some(w) = tracker.finish(pattern.len().saturating_sub(1)) {
            out.push(w);
        }
        out
    }

    #[test]
    fn simple_window() {
        let mut t = WindowTracker::new(2);
        let ws = run(&mut t, &[false, true, true, true, false, false, false]);
        assert_eq!(ws, vec![VariationWindow { start_tick: 1, end_tick: 3 }]);
        assert_eq!(ws[0].duration_ticks(), 3);
    }

    #[test]
    fn hangover_bridges_short_dips() {
        let mut t = WindowTracker::new(3);
        // Dip of 2 normal ticks inside a movement: still one window.
        let ws = run(&mut t, &[true, true, false, false, true, true, false, false, false]);
        assert_eq!(ws, vec![VariationWindow { start_tick: 0, end_tick: 5 }]);
    }

    #[test]
    fn long_gap_splits_windows() {
        let mut t = WindowTracker::new(2);
        let ws = run(&mut t, &[true, false, false, false, true, true, false, false]);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0], VariationWindow { start_tick: 0, end_tick: 0 });
        assert_eq!(ws[1], VariationWindow { start_tick: 4, end_tick: 5 });
    }

    #[test]
    fn open_duration_tracks_dwt() {
        let mut t = WindowTracker::new(2);
        assert_eq!(t.open_duration_ticks(5), 0);
        t.push(10, true);
        t.push(11, true);
        assert_eq!(t.open_duration_ticks(11), 2);
        assert_eq!(t.open_start(), Some(10));
        // One quiet tick: still open (hangover).
        t.push(12, false);
        assert_eq!(t.open_duration_ticks(12), 3);
    }

    #[test]
    fn finish_flushes_open_window() {
        let mut t = WindowTracker::new(2);
        t.push(0, true);
        t.push(1, true);
        let w = t.finish(1).unwrap();
        assert_eq!(w, VariationWindow { start_tick: 0, end_tick: 1 });
        assert!(t.finish(2).is_none());
    }

    #[test]
    fn windows_are_disjoint_and_ordered() {
        // Property-style check over a pseudo-random pattern.
        let mut rng = fadewich_stats::rng::Rng::seed_from_u64(3);
        let pattern: Vec<bool> = (0..2000).map(|_| rng.bernoulli(0.2)).collect();
        let mut t = WindowTracker::new(3);
        let ws = run(&mut t, &pattern);
        for pair in ws.windows(2) {
            assert!(pair[0].end_tick < pair[1].start_tick, "windows overlap or disordered");
        }
        for w in &ws {
            assert!(pattern[w.start_tick] && pattern[w.end_tick], "ends must be anomalous");
        }
    }

    #[test]
    fn tracker_state_round_trip_continues_identically() {
        let mut rng = fadewich_stats::rng::Rng::seed_from_u64(9);
        let pattern: Vec<bool> = (0..600).map(|_| rng.bernoulli(0.3)).collect();
        let mut t = WindowTracker::new(3);
        for (tick, &a) in pattern.iter().take(300).enumerate() {
            t.push(tick, a);
        }
        let mut restored = WindowTracker::from_state(&t.state()).unwrap();
        assert_eq!(restored.state(), t.state());
        for (tick, &a) in pattern.iter().enumerate().skip(300) {
            assert_eq!(t.push(tick, a), restored.push(tick, a), "diverged at {tick}");
        }
        assert_eq!(t.finish(599), restored.finish(599));
        assert_eq!(t.closed_windows(), restored.closed_windows());
    }

    #[test]
    fn tracker_state_rejects_inconsistencies() {
        let good = WindowTracker::new(3).state();
        assert!(WindowTracker::from_state(&WindowTrackerState {
            hangover_ticks: 0,
            ..good.clone()
        })
        .is_err());
        assert!(WindowTracker::from_state(&WindowTrackerState {
            open_start: Some(10),
            last_anomalous: 5,
            ..good.clone()
        })
        .is_err());
        assert!(WindowTracker::from_state(&WindowTrackerState {
            open_start: Some(10),
            last_anomalous: 12,
            quiet_run: 3,
            ..good.clone()
        })
        .is_err());
        assert!(WindowTracker::from_state(&WindowTrackerState {
            closed: vec![VariationWindow { start_tick: 5, end_tick: 2 }],
            ..good.clone()
        })
        .is_err());
        assert!(WindowTracker::from_state(&WindowTrackerState {
            closed: vec![
                VariationWindow { start_tick: 1, end_tick: 8 },
                VariationWindow { start_tick: 4, end_tick: 9 },
            ],
            ..good
        })
        .is_err());
    }

    #[test]
    fn significance_filter() {
        let ws = vec![
            VariationWindow { start_tick: 0, end_tick: 3 },
            VariationWindow { start_tick: 10, end_tick: 30 },
        ];
        let sig = significant_windows(&ws, 10);
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].start_tick, 10);
    }

    #[test]
    fn seconds_conversions_and_overlap() {
        let w = VariationWindow { start_tick: 10, end_tick: 19 };
        assert_eq!(w.duration_s(5.0), 2.0);
        assert_eq!(w.start_s(5.0), 2.0);
        assert!((w.end_s(5.0) - 3.8).abs() < 1e-12);
        assert!(w.overlaps_interval(3.0, 10.0, 5.0));
        assert!(!w.overlaps_interval(4.0, 10.0, 5.0));
        assert!(w.overlaps_interval(0.0, 2.0, 5.0));
    }
}
