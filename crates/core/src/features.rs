//! Per-stream sample features (paper §IV-D1).
//!
//! For a variation window `[t1, t2]`, RE builds a sample from the
//! *initial* `t∆` seconds only — the beginning of the user's path is
//! workstation-specific, while later portions converge on the shared
//! approach to the door. Per stream, three features: the window's
//! variance, the entropy of its value histogram, and its
//! autocorrelation.

use fadewich_officesim::DayTrace;
use fadewich_rfchannel::LinkId;
use fadewich_stats::{autocorr, descriptive, histogram::Histogram};

use crate::config::FadewichParams;

/// Number of features extracted per stream.
pub const FEATURES_PER_STREAM: usize = 3;

/// Feature-kind suffixes, in extraction order (matching the paper's
/// Table V naming).
pub const FEATURE_SUFFIXES: [&str; FEATURES_PER_STREAM] = ["var", "ent", "ac"];

/// Extracts the feature vector of the window-initial segment
/// `[t1, t1 + feature_window)` over the given streams. Windows
/// truncated by the end of the day use whatever samples exist
/// (minimum 2).
///
/// The result is `streams.len() × 3` values ordered
/// `[var, ent, ac]` per stream, streams in the given order.
///
/// # Panics
///
/// Panics if `t1` is out of range or a stream index is invalid.
pub fn extract_features(
    day: &DayTrace,
    streams: &[usize],
    t1_tick: usize,
    tick_hz: f64,
    params: &FadewichParams,
) -> Vec<f64> {
    assert!(t1_tick < day.n_ticks(), "window start out of range");
    let t_end = (t1_tick + params.feature_window_ticks(tick_hz)).min(day.n_ticks());
    let t_end = t_end.max(t1_tick + 2);
    let mut features = Vec::with_capacity(streams.len() * FEATURES_PER_STREAM);
    for &s in streams {
        let window = day.window(s, t1_tick, t_end.min(day.n_ticks()));
        features.push(descriptive::variance(&window));
        features.push(Histogram::of_data(&window, params.entropy_bins).entropy_bits());
        features.push(autocorr::mean_acf(&window, params.acf_max_lag));
    }
    features
}

/// Names of the features produced by [`extract_features`], in the
/// paper's `d<i>-d<j>-<kind>` convention.
pub fn feature_names(link_ids: &[LinkId], streams: &[usize]) -> Vec<String> {
    let mut names = Vec::with_capacity(streams.len() * FEATURES_PER_STREAM);
    for &s in streams {
        let stream = link_ids[s].stream_name();
        for suffix in FEATURE_SUFFIXES {
            names.push(format!("{stream}-{suffix}"));
        }
    }
    names
}

/// Extracts the same features as [`extract_features`], but from the
/// online per-stream history buffers the controller maintains instead
/// of a recorded trace. Returns `None` if the window has already been
/// evicted from history (the buffers are sized so this cannot happen
/// during normal operation).
pub fn extract_features_from_histories(
    histories: &[fadewich_stats::rolling::HistoryBuffer],
    t1_tick: u64,
    tick_hz: f64,
    params: &FadewichParams,
) -> Option<Vec<f64>> {
    let mut features = Vec::with_capacity(histories.len() * FEATURES_PER_STREAM);
    for h in histories {
        let t_end = (t1_tick + params.feature_window_ticks(tick_hz) as u64)
            .min(h.total_pushed())
            .max(t1_tick + 2);
        let window = h.range(t1_tick, t_end)?;
        features.push(descriptive::variance(&window));
        features.push(Histogram::of_data(&window, params.entropy_bins).entropy_bits());
        features.push(autocorr::mean_acf(&window, params.acf_max_lag));
    }
    Some(features)
}

/// Scratch-buffer variant of [`extract_features_from_histories`] for
/// the controller's per-tick loop: the window samples land in
/// `win_buf` and the features are appended to a cleared `out`, so once
/// both buffers have reached steady-state capacity a call performs no
/// feature-vector or window allocation. Returns `false` (leaving
/// `out` empty) where the allocating variant returns `None`.
///
/// Produces bit-identical feature values to the allocating variant —
/// both feed the same per-window slices through the same estimators.
pub fn extract_features_from_histories_into(
    histories: &[fadewich_stats::rolling::HistoryBuffer],
    t1_tick: u64,
    tick_hz: f64,
    params: &FadewichParams,
    win_buf: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> bool {
    out.clear();
    for h in histories {
        let t_end = (t1_tick + params.feature_window_ticks(tick_hz) as u64)
            .min(h.total_pushed())
            .max(t1_tick + 2);
        if !h.range_into(t1_tick, t_end, win_buf) {
            out.clear();
            return false;
        }
        out.push(descriptive::variance(win_buf));
        out.push(Histogram::of_data(win_buf, params.entropy_bins).entropy_bits());
        out.push(autocorr::mean_acf(win_buf, params.acf_max_lag));
    }
    true
}

/// A labeled training sample for RE.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// The feature vector from [`extract_features`].
    pub features: Vec<f64>,
    /// The class: `0` = `w0` (entered office), `i + 1` = left
    /// workstation `i`.
    pub label: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::rng::Rng;

    fn day_with_ramp() -> DayTrace {
        // Stream 0: noisy ramp (high variance & autocorrelation);
        // stream 1: constant; stream 2: white noise.
        let mut rng = Rng::seed_from_u64(1);
        let mut day = DayTrace::with_capacity(3, 100);
        for t in 0..100 {
            day.push_row(&[
                -50.0 + t as f64 * 0.3 + rng.normal() * 0.1,
                -55.0,
                -60.0 + rng.normal(),
            ]);
        }
        day
    }

    #[test]
    fn feature_vector_shape() {
        let day = day_with_ramp();
        let f = extract_features(&day, &[0, 1, 2], 10, 5.0, &FadewichParams::default());
        assert_eq!(f.len(), 9);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn ramp_has_high_variance_and_autocorrelation() {
        let day = day_with_ramp();
        let f = extract_features(&day, &[0, 1, 2], 10, 5.0, &FadewichParams::default());
        let (var_ramp, ac_ramp) = (f[0], f[2]);
        let (var_const, ent_const, ac_const) = (f[3], f[4], f[5]);
        let ac_noise = f[8];
        assert!(var_ramp > 1.0, "ramp variance = {var_ramp}");
        assert!(ac_ramp > 0.3, "ramp autocorrelation = {ac_ramp}");
        assert_eq!(var_const, 0.0);
        assert_eq!(ent_const, 0.0);
        assert_eq!(ac_const, 0.0);
        assert!(ac_noise.abs() < 0.5);
    }

    #[test]
    fn truncated_window_at_day_end() {
        let day = day_with_ramp();
        let f = extract_features(&day, &[0], 97, 5.0, &FadewichParams::default());
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn names_follow_paper_convention() {
        let ids = vec![
            LinkId { tx: 0, rx: 1 },
            LinkId { tx: 8, rx: 1 },
        ];
        let names = feature_names(&ids, &[1, 0]);
        assert_eq!(
            names,
            vec![
                "d9-d2-var", "d9-d2-ent", "d9-d2-ac",
                "d1-d2-var", "d1-d2-ent", "d1-d2-ac",
            ]
        );
    }

    #[test]
    fn histories_into_matches_allocating_variant() {
        use fadewich_stats::rolling::HistoryBuffer;
        let mut rng = Rng::seed_from_u64(2);
        let params = FadewichParams::default();
        let mut histories: Vec<HistoryBuffer> = (0..3).map(|_| HistoryBuffer::new(64)).collect();
        for _ in 0..100 {
            for h in histories.iter_mut() {
                h.push(-50.0 + rng.normal());
            }
        }
        let mut win_buf = Vec::new();
        let mut out = Vec::new();
        for t1 in [40u64, 80, 98] {
            let reference = extract_features_from_histories(&histories, t1, 5.0, &params);
            let ok =
                extract_features_from_histories_into(&histories, t1, 5.0, &params, &mut win_buf, &mut out);
            assert!(ok);
            let reference = reference.unwrap();
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // An evicted window fails the same way in both variants.
        assert!(extract_features_from_histories(&histories, 2, 5.0, &params).is_none());
        assert!(!extract_features_from_histories_into(
            &histories, 2, 5.0, &params, &mut win_buf, &mut out
        ));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_start_panics() {
        let day = day_with_ramp();
        extract_features(&day, &[0], 100, 5.0, &FadewichParams::default());
    }
}
