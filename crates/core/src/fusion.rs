//! Ambient-light detection and RSSI/light fusion.
//!
//! The ambient-light deauthentication line of work (see PAPERS.md)
//! replaces the RF link matrix with a single photosensor per
//! workstation: a seated user occludes the sensor, so illuminance dips
//! while they are present and recovers when they stand up and leave.
//! That recovery edge is a departure signal with much lower intrinsic
//! latency than the paper's movement-window pipeline, at the cost of
//! being blind to *where the person went* — a light sensor cannot tell
//! "left the office" from "stood up and stayed".
//!
//! This module implements the per-workstation [`LightDetector`] (a
//! small threshold/run-length state machine — no training pass, unlike
//! the RSSI profile) and the [`DecisionMode`] selector the controller
//! uses to arbitrate between modalities:
//!
//! * [`DecisionMode::RssiOnly`] — the paper's pipeline, bit-identical
//!   to the pre-fusion engine. Light samples (if any arrive) update
//!   detector state but never act.
//! * [`DecisionMode::LightOnly`] — departures fire deauthentication
//!   directly from the light release edge; the RSSI rule-1 path is
//!   suppressed (MD/RE still run so telemetry and audit stay live).
//! * [`DecisionMode::Fused`] — a light departure deauthenticates only
//!   when MD saw anomalous RF movement within a corroboration window,
//!   which filters photometric false releases (shadows, flicker);
//!   rule 1 remains active as the fallback for departures the light
//!   channel misses.
//!
//! All arithmetic is plain deterministic f64 + integer run-lengths, so
//! detector state snapshots restore bit-identically (the checkpoint
//! carries [`LightDetectorState`] verbatim).

/// Which modalities may trigger deauthentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionMode {
    /// Paper pipeline only; the pre-fusion behavior.
    RssiOnly,
    /// Light release edges deauthenticate; RSSI rule 1 is suppressed.
    LightOnly,
    /// Light deauthenticates when RF movement corroborates; rule 1
    /// stays active as fallback.
    Fused,
}

impl DecisionMode {
    /// Stable byte tag for the checkpoint codec.
    pub fn tag(self) -> u8 {
        match self {
            DecisionMode::RssiOnly => 0,
            DecisionMode::LightOnly => 1,
            DecisionMode::Fused => 2,
        }
    }

    /// Decodes a checkpoint tag.
    pub fn from_tag(tag: u8) -> Option<DecisionMode> {
        match tag {
            0 => Some(DecisionMode::RssiOnly),
            1 => Some(DecisionMode::LightOnly),
            2 => Some(DecisionMode::Fused),
            _ => None,
        }
    }

    /// Lowercase label for tables and metric names.
    pub fn label(self) -> &'static str {
        match self {
            DecisionMode::RssiOnly => "rssi-only",
            DecisionMode::LightOnly => "light-only",
            DecisionMode::Fused => "fused",
        }
    }
}

impl std::fmt::Display for DecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning for one workstation's light detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightParams {
    /// A sample this many lux below the tracked ambient baseline
    /// counts as occluded (user seated).
    pub dip_lux: f64,
    /// EMA coefficient for the ambient baseline; applied only while
    /// the desk is *not* occluded, so the baseline tracks daylight
    /// drift without chasing the occupancy dip itself.
    pub baseline_alpha: f64,
    /// The dip must persist this long before the detector arms — a
    /// passer-by shadow must not arm a departure trigger.
    pub min_occupied_s: f64,
    /// After arming, illuminance must stay recovered this long before
    /// the detector fires `Departure`. This is the light channel's
    /// intrinsic decision latency.
    pub release_s: f64,
}

impl Default for LightParams {
    fn default() -> LightParams {
        LightParams {
            dip_lux: 60.0,
            baseline_alpha: 0.02,
            min_occupied_s: 20.0,
            release_s: 1.5,
        }
    }
}

impl LightParams {
    /// Rejects tunings the state machine cannot run on.
    pub fn validate(&self) -> Result<(), String> {
        if !self.dip_lux.is_finite() || self.dip_lux <= 0.0 {
            return Err(format!("dip_lux must be finite and positive, got {}", self.dip_lux));
        }
        if !self.baseline_alpha.is_finite() || !(0.0..=1.0).contains(&self.baseline_alpha) {
            return Err(format!("baseline_alpha must be in [0, 1], got {}", self.baseline_alpha));
        }
        if !self.min_occupied_s.is_finite() || self.min_occupied_s <= 0.0 {
            return Err(format!("min_occupied_s must be positive, got {}", self.min_occupied_s));
        }
        if !self.release_s.is_finite() || self.release_s <= 0.0 {
            return Err(format!("release_s must be positive, got {}", self.release_s));
        }
        Ok(())
    }
}

/// How a controller consumes the light modality: which mode arbitrates
/// decisions, which workstation each light stream watches, and the
/// detector tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionConfig {
    /// Decision arbitration mode.
    pub mode: DecisionMode,
    /// Workstation watched by each light stream, in light-stream
    /// order. Empty means no light streams (mandatory for
    /// [`DecisionMode::RssiOnly`]-parity configurations built through
    /// the legacy constructors).
    pub light_workstations: Vec<usize>,
    /// Detector tuning shared by every light stream.
    pub light: LightParams,
    /// In [`DecisionMode::Fused`], a light departure deauthenticates
    /// only if MD saw an open variation window within this many
    /// seconds — RF movement corroborating the photometric release.
    pub corroborate_s: f64,
}

impl FusionConfig {
    /// The pre-fusion configuration: no light streams, RSSI decides.
    pub fn rssi_only() -> FusionConfig {
        FusionConfig {
            mode: DecisionMode::RssiOnly,
            light_workstations: Vec::new(),
            light: LightParams::default(),
            corroborate_s: 6.0,
        }
    }

    /// Rejects configurations the controller cannot run.
    pub fn validate(&self, n_workstations: usize) -> Result<(), String> {
        self.light.validate()?;
        if !self.corroborate_s.is_finite() || self.corroborate_s <= 0.0 {
            return Err(format!("corroborate_s must be positive, got {}", self.corroborate_s));
        }
        for &ws in &self.light_workstations {
            if ws >= n_workstations {
                return Err(format!(
                    "light stream watches workstation {ws}, office has {n_workstations}"
                ));
            }
        }
        if self.mode != DecisionMode::RssiOnly && self.light_workstations.is_empty() {
            return Err(format!("{} mode requires light streams", self.mode));
        }
        Ok(())
    }
}

/// What a light detector observed this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LightEvent {
    /// Sustained occlusion — someone sat down at the workstation.
    Arrival,
    /// Sustained recovery after occupancy — they stood up and the desk
    /// cleared. The fusion layer's deauthentication trigger.
    Departure,
}

/// Snapshot of one detector's mutable state, bit-exact for the
/// checkpoint codec.
#[derive(Debug, Clone, PartialEq)]
pub struct LightDetectorState {
    /// Tracked ambient baseline (lux); meaningless until
    /// `initialized`.
    pub baseline: f64,
    /// Whether the first sample seeded the baseline yet.
    pub initialized: bool,
    /// Whether sustained occupancy armed the departure trigger.
    pub armed: bool,
    /// Consecutive occluded ticks (resets on recovery).
    pub occupied_run: u64,
    /// Consecutive recovered ticks while armed (resets on occlusion).
    pub release_run: u64,
}

/// Per-workstation occupancy state machine over an ambient-light
/// stream. Thresholded against a slow ambient baseline with run-length
/// hysteresis on both edges; emits at most one [`LightEvent`] per
/// tick.
#[derive(Debug, Clone)]
pub struct LightDetector {
    params: LightParams,
    min_occupied_ticks: u64,
    release_ticks: u64,
    baseline: f64,
    initialized: bool,
    armed: bool,
    occupied_run: u64,
    release_run: u64,
}

impl LightDetector {
    /// Builds a detector for a stream sampled at `tick_hz`.
    pub fn new(tick_hz: f64, params: LightParams) -> LightDetector {
        let to_ticks = |s: f64| ((s * tick_hz).round() as u64).max(1);
        LightDetector {
            min_occupied_ticks: to_ticks(params.min_occupied_s),
            release_ticks: to_ticks(params.release_s),
            params,
            baseline: 0.0,
            initialized: false,
            armed: false,
            occupied_run: 0,
            release_run: 0,
        }
    }

    /// The release hysteresis in ticks — the light channel's intrinsic
    /// decision latency, used by the fusion study's latency table.
    pub fn release_ticks(&self) -> u64 {
        self.release_ticks
    }

    /// Feeds one illuminance sample; returns an event when an edge is
    /// confirmed. Non-finite samples are ignored (sensor glitch), like
    /// a masked tick.
    pub fn step(&mut self, lux: f64) -> Option<LightEvent> {
        if !lux.is_finite() {
            return None;
        }
        if !self.initialized {
            // Seed the baseline from the first sample. If the desk is
            // already occupied at boot the baseline starts low and the
            // recovery on departure re-seeds it upward via the EMA.
            self.baseline = lux;
            self.initialized = true;
            return None;
        }
        let occluded = lux < self.baseline - self.params.dip_lux;
        if occluded {
            self.occupied_run += 1;
            self.release_run = 0;
            if !self.armed && self.occupied_run >= self.min_occupied_ticks {
                self.armed = true;
                return Some(LightEvent::Arrival);
            }
        } else {
            // Track ambient drift only while unoccluded.
            self.baseline += self.params.baseline_alpha * (lux - self.baseline);
            self.occupied_run = 0;
            if self.armed {
                self.release_run += 1;
                if self.release_run >= self.release_ticks {
                    self.armed = false;
                    self.release_run = 0;
                    return Some(LightEvent::Departure);
                }
            }
        }
        None
    }

    /// A tick with no sample (gap-fill masked the stream): state is
    /// frozen — run-lengths neither grow nor reset, so a transport gap
    /// cannot manufacture or cancel an edge.
    pub fn step_masked(&mut self) {}

    /// Captures the mutable state, bit-exact.
    pub fn state(&self) -> LightDetectorState {
        LightDetectorState {
            baseline: self.baseline,
            initialized: self.initialized,
            armed: self.armed,
            occupied_run: self.occupied_run,
            release_run: self.release_run,
        }
    }

    /// Restores a captured state onto a freshly-constructed detector
    /// (params come from config, not the snapshot).
    pub fn restore(&mut self, state: &LightDetectorState) {
        self.baseline = state.baseline;
        self.initialized = state.initialized;
        self.armed = state.armed;
        self.occupied_run = state.occupied_run;
        self.release_run = state.release_run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> LightDetector {
        LightDetector::new(
            5.0,
            LightParams {
                dip_lux: 50.0,
                baseline_alpha: 0.02,
                min_occupied_s: 2.0,
                release_s: 1.0,
                // 5 Hz → arm after 10 occluded ticks, release after 5.
            },
        )
    }

    #[test]
    fn arrival_then_departure_fire_once_each() {
        let mut d = detector();
        assert_eq!(d.step(400.0), None);
        let mut events = Vec::new();
        for _ in 0..12 {
            if let Some(e) = d.step(300.0) {
                events.push(e);
            }
        }
        assert_eq!(events, vec![LightEvent::Arrival]);
        events.clear();
        for _ in 0..8 {
            if let Some(e) = d.step(400.0) {
                events.push(e);
            }
        }
        assert_eq!(events, vec![LightEvent::Departure]);
        assert!(!d.state().armed);
    }

    #[test]
    fn brief_shadow_does_not_arm_and_brief_recovery_does_not_release() {
        let mut d = detector();
        d.step(400.0);
        // 3 occluded ticks < the 10-tick arming threshold.
        for _ in 0..3 {
            assert_eq!(d.step(300.0), None);
        }
        assert!(!d.state().armed);
        // Arm properly, then bounce: 2 recovered ticks < the 5-tick
        // release threshold must not fire, and re-occlusion resets it.
        for _ in 0..10 {
            d.step(300.0);
        }
        assert!(d.state().armed);
        assert_eq!(d.step(400.0), None);
        assert_eq!(d.step(400.0), None);
        assert_eq!(d.step(300.0), None);
        assert_eq!(d.state().release_run, 0);
        assert!(d.state().armed);
    }

    #[test]
    fn baseline_tracks_drift_only_while_clear() {
        let mut d = detector();
        d.step(400.0);
        let clear = d.state().baseline;
        d.step(420.0);
        assert!(d.state().baseline > clear);
        let before_dip = d.state().baseline;
        d.step(100.0);
        assert_eq!(d.state().baseline, before_dip);
    }

    #[test]
    fn non_finite_and_masked_ticks_freeze_state() {
        let mut d = detector();
        d.step(400.0);
        for _ in 0..10 {
            d.step(300.0);
        }
        let armed = d.state();
        assert_eq!(d.step(f64::NAN), None);
        d.step_masked();
        assert_eq!(d.state(), armed);
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let mut d = detector();
        d.step(400.0);
        for _ in 0..7 {
            d.step(310.0);
        }
        let snap = d.state();
        let mut fresh = detector();
        fresh.restore(&snap);
        assert_eq!(fresh.state(), snap);
        // Both replicas must evolve identically from here.
        let a: Vec<_> = (0..20).map(|i| d.step(if i < 5 { 310.0 } else { 400.0 })).collect();
        let b: Vec<_> = (0..20).map(|i| fresh.step(if i < 5 { 310.0 } else { 400.0 })).collect();
        assert_eq!(a, b);
        assert_eq!(d.state(), fresh.state());
    }

    #[test]
    fn mode_tags_round_trip() {
        for m in [DecisionMode::RssiOnly, DecisionMode::LightOnly, DecisionMode::Fused] {
            assert_eq!(DecisionMode::from_tag(m.tag()), Some(m));
        }
        assert_eq!(DecisionMode::from_tag(9), None);
        assert_eq!(format!("{}", DecisionMode::Fused), "fused");
    }

    #[test]
    fn params_validate_rejects_nonsense() {
        assert!(LightParams::default().validate().is_ok());
        let bad = LightParams { dip_lux: -1.0, ..LightParams::default() };
        assert!(bad.validate().is_err());
        let bad = LightParams { baseline_alpha: 1.5, ..LightParams::default() };
        assert!(bad.validate().is_err());
        let bad = LightParams { release_s: 0.0, ..LightParams::default() };
        assert!(bad.validate().is_err());
    }
}
