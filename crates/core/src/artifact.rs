//! The versioned model-artifact bundle.
//!
//! The paper's deployment trains the RE classifier and the MD normal
//! profile once per office, then serves online for days (§VII–VIII).
//! This module is the boundary between those two phases: everything a
//! serving process needs — pipeline parameters, the feature schema,
//! MD's learned profile and threshold, the feature scaler, and the
//! full one-vs-one SVM ensemble — packs into one [`ModelBundle`],
//! serialized with a hand-rolled, CRC-32-guarded, length-prefixed
//! binary format in the style of the sensor wire codec
//! (`fadewich-runtime::wire`). No serde: the workspace is offline.
//!
//! # Binary layout (versions 1 and 2)
//!
//! ```text
//! offset  size      field
//! 0       4         magic        "FWMB", byte-literal
//! 4       2         version      u16 little-endian, 1 or 2
//! 6       4         body_len     u32 little-endian
//! 10      body_len  body         see below
//! …       4         crc32        IEEE CRC-32 of ALL preceding bytes
//! ```
//!
//! The total length must be exactly `10 + body_len + 4`: a corrupted
//! `body_len` therefore fails the length check, and every other
//! corruption fails magic, version, or the checksum — a property test
//! flips every bit to prove it. All multi-byte values are
//! little-endian; `f64`s are raw IEEE-754 bits, so a round-trip
//! preserves every prediction bit-exactly.
//!
//! Body, in order:
//!
//! 1. **params** — the 17 `f64` fields of
//!    [`FadewichParams::to_field_array`] (that order is the v1
//!    contract);
//! 2. **schema** — `tick_hz: f64`, `n_streams: u32`, the stream ids as
//!    `u32`s, *(v2 only)* one [`ChannelKind`] tag byte per stream,
//!    `features_per_stream: u32`;
//! 3. **MD snapshot** — `has_threshold: u8` (0/1), the threshold `f64`
//!    when present, `profile_len: u32`, the profile `f64`s;
//! 4. **scaler** — `d: u32`, `d` means, `d` stds;
//! 5. **classes** — `k: u32`, `k` labels as `u64`s;
//! 6. **machines** — `m: u32`, then per machine: `class_a: u64`,
//!    `class_b: u64`, kernel tag `u8` (0 = linear, 1 = RBF followed by
//!    `gamma: f64`), `bias: f64`, `n_sv: u32`, `sv_dim: u32`, the
//!    `n_sv` coefficients, then the support vectors row-major;
//! 7. **keys** *(v3 only)* — `n_keys: u32`, then per key: `sensor:
//!    u16` (strictly ascending) + 16 raw key bytes. The sensor →
//!    MAC-key table the wire v4 codec authenticates frames against.
//!
//! # Version / compatibility rules
//!
//! - Any layout change — field added, removed, reordered, or
//!   re-encoded — bumps the version. There are no minor versions and
//!   no in-place extension points; readers reject any version they do
//!   not know with [`ArtifactError::UnsupportedVersion`].
//! - Version 2 adds one channel-kind tag byte per stream to the schema
//!   section. Version-1 artifacts decode with every stream defaulting
//!   to [`ChannelKind::Rssi`] — bundles trained before the fusion
//!   refactor keep loading unchanged.
//! - Version 3 adds the per-sensor key table and *always* carries the
//!   channel tags (even when every stream is RSSI — the version choice
//!   is driven by the keys, not the channels).
//! - Encoding picks the **oldest version that can represent the
//!   bundle**: an all-RSSI schema still writes version 1 byte-for-byte
//!   identically to older builds, so pinned artifacts and their
//!   checksums stay stable. A bundle carries keys ⇒ version 3; mixed
//!   channels without keys ⇒ version 2; all-RSSI without keys ⇒
//!   version 1.
//! - Decoding validates semantics, not just framing: parameters must
//!   pass [`FadewichParams::validate`], the scaler/SVM parts must pass
//!   their `from_parts` checks, and the scaler dimension must equal
//!   `stream_ids.len() × features_per_stream`. A syntactically intact
//!   but meaningless artifact fails with [`ArtifactError::Malformed`].

use std::path::Path;

use fadewich_stats::checksum::crc32;
use fadewich_svm::{BinarySvm, Kernel, MultiClassSvm, StandardScaler};

use crate::auth::{AuthKey, KeyTable};
use crate::config::FadewichParams;
use crate::md::MdSnapshot;
use crate::re::RadioEnvironment;
use crate::stream::ChannelKind;

/// Artifact preamble: `b"FWMB"` (FadeWich Model Bundle).
pub const ARTIFACT_MAGIC: [u8; 4] = *b"FWMB";

/// The all-RSSI format version; still written for pure-RSSI schemas.
pub const ARTIFACT_VERSION: u16 = 1;

/// The channel-typed format version, written when any stream is not
/// RSSI.
pub const ARTIFACT_VERSION_V2: u16 = 2;

/// The authenticated format version, written when the bundle carries a
/// per-sensor MAC key table.
pub const ARTIFACT_VERSION_V3: u16 = 3;

/// Bytes before the body: magic + version + body length.
pub const HEADER_LEN: usize = 10;

/// What the feature vectors in the bundle were computed over: which
/// sensor streams (and of what channel kind), at what rate, with how
/// many features per stream. A serving process checks this against the
/// live deployment before classifying anything.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSchema {
    /// Sampling rate the model was trained at.
    pub tick_hz: f64,
    /// Monitored stream indices, in feature order.
    pub stream_ids: Vec<u32>,
    /// Channel kind of each monitored stream, parallel to
    /// `stream_ids`. Version-1 artifacts decode as all-RSSI.
    pub channels: Vec<ChannelKind>,
    /// Features extracted per stream (variance, entropy, autocorr = 3).
    pub features_per_stream: usize,
}

impl FeatureSchema {
    /// An all-RSSI schema — the shape every pre-fusion bundle had.
    pub fn rssi(tick_hz: f64, stream_ids: Vec<u32>, features_per_stream: usize) -> FeatureSchema {
        let channels = vec![ChannelKind::Rssi; stream_ids.len()];
        FeatureSchema { tick_hz, stream_ids, channels, features_per_stream }
    }

    /// The feature dimension implied by the schema.
    pub fn n_features(&self) -> usize {
        self.stream_ids.len() * self.features_per_stream
    }

    /// True when every monitored stream is an RSSI link — the condition
    /// under which the bundle still encodes as version 1.
    pub fn is_all_rssi(&self) -> bool {
        self.channels.iter().all(|&k| k == ChannelKind::Rssi)
    }
}

/// Everything a serving process needs, in one versioned file.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBundle {
    /// Pipeline tunables the model was trained under.
    pub params: FadewichParams,
    /// The feature layout contract.
    pub schema: FeatureSchema,
    /// MD's learned normal profile and threshold.
    pub md: MdSnapshot,
    /// The trained RE classifier (scaler + one-vs-one SVM ensemble).
    pub re: RadioEnvironment,
    /// Per-sensor frame-authentication keys, when the deployment runs
    /// the engine in authenticated mode. `None` keeps the artifact at
    /// version 1/2, byte-identical to pre-auth builds. When present the
    /// table must be non-empty.
    pub keys: Option<KeyTable>,
}

/// Why a byte buffer failed to decode into a [`ModelBundle`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Fewer bytes than the declared (or minimum) artifact length.
    Truncated,
    /// The first four bytes are not [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// Bytes past the declared end of the artifact.
    TrailingBytes,
    /// The trailing CRC-32 does not match the artifact contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the artifact.
        carried: u32,
    },
    /// Framing was intact but the contents do not form a valid model.
    Malformed(String),
    /// Reading or writing the artifact file failed.
    Io(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Truncated => write!(f, "truncated model artifact"),
            ArtifactError::BadMagic => write!(f, "bad artifact magic (not a model bundle)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (this build reads \
                     {ARTIFACT_VERSION}, {ARTIFACT_VERSION_V2} and {ARTIFACT_VERSION_V3})"
                )
            }
            ArtifactError::TrailingBytes => write!(f, "trailing bytes after model artifact"),
            ArtifactError::BadChecksum { computed, carried } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, carried {carried:#010x}")
            }
            ArtifactError::Malformed(why) => write!(f, "malformed model artifact: {why}"),
            ArtifactError::Io(why) => write!(f, "artifact i/o error: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Sequential little-endian reader over the artifact body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        if self.bytes.len() - self.pos < n {
            return Err(ArtifactError::Malformed(format!("body ends inside {what}")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads `n` f64s, with `n` pre-checked against the remaining body
    /// so a hostile length cannot trigger a huge allocation.
    fn f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>, ArtifactError> {
        let s = self.take(8 * n, what)?;
        Ok(s.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_len(out: &mut Vec<u8>, n: usize, what: &str) {
    assert!(n <= u32::MAX as usize, "{what} count {n} overflows the u32 length prefix");
    push_u32(out, n as u32);
}

impl ModelBundle {
    /// Serializes the bundle, picking the oldest format version that
    /// can represent it: version 1 for all-RSSI schemas (byte-identical
    /// to pre-fusion builds), version 2 whenever a non-RSSI channel is
    /// monitored, version 3 whenever the bundle carries MAC keys.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(
            self.schema.channels.len(),
            self.schema.stream_ids.len(),
            "schema channels must parallel stream ids"
        );
        if let Some(keys) = &self.keys {
            assert!(!keys.is_empty(), "a key table, when present, must hold at least one key");
        }
        let version = if self.keys.is_some() {
            ARTIFACT_VERSION_V3
        } else if self.schema.is_all_rssi() {
            ARTIFACT_VERSION
        } else {
            ARTIFACT_VERSION_V2
        };
        let mut body = Vec::new();

        // 1. Params.
        for v in self.params.to_field_array() {
            push_f64(&mut body, v);
        }

        // 2. Schema.
        push_f64(&mut body, self.schema.tick_hz);
        push_len(&mut body, self.schema.stream_ids.len(), "stream id");
        for &id in &self.schema.stream_ids {
            push_u32(&mut body, id);
        }
        if version >= ARTIFACT_VERSION_V2 {
            for &kind in &self.schema.channels {
                body.push(kind.tag());
            }
        }
        push_len(&mut body, self.schema.features_per_stream, "features per stream");

        // 3. MD snapshot.
        match self.md.threshold {
            Some(ub) => {
                body.push(1);
                push_f64(&mut body, ub);
            }
            None => body.push(0),
        }
        push_len(&mut body, self.md.values.len(), "profile value");
        for &v in &self.md.values {
            push_f64(&mut body, v);
        }

        // 4. Scaler.
        let scaler = self.re.svm().scaler();
        push_len(&mut body, scaler.n_features(), "scaler feature");
        for &m in scaler.means() {
            push_f64(&mut body, m);
        }
        for &s in scaler.stds() {
            push_f64(&mut body, s);
        }

        // 5. Classes.
        let classes = self.re.svm().classes();
        push_len(&mut body, classes.len(), "class");
        for &c in classes {
            push_u64(&mut body, c as u64);
        }

        // 6. Machines.
        let machines = self.re.svm().machines();
        push_len(&mut body, machines.len(), "machine");
        for (ca, cb, svm) in machines {
            push_u64(&mut body, *ca as u64);
            push_u64(&mut body, *cb as u64);
            match svm.kernel() {
                Kernel::Linear => body.push(0),
                Kernel::Rbf { gamma } => {
                    body.push(1);
                    push_f64(&mut body, gamma);
                }
            }
            push_f64(&mut body, svm.bias());
            push_len(&mut body, svm.n_support_vectors(), "support vector");
            let sv_dim = svm.support_vectors()[0].len();
            push_len(&mut body, sv_dim, "support vector dimension");
            for &c in svm.coefficients() {
                push_f64(&mut body, c);
            }
            for sv in svm.support_vectors() {
                for &v in sv {
                    push_f64(&mut body, v);
                }
            }
        }

        // 7. Keys (v3 only).
        if let Some(keys) = &self.keys {
            push_len(&mut body, keys.len(), "sensor key");
            for (sensor, key) in keys.iter() {
                body.extend_from_slice(&sensor.to_le_bytes());
                body.extend_from_slice(&key.to_bytes());
            }
        }

        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        assert!(body.len() <= u32::MAX as usize, "artifact body overflows the u32 length prefix");
        push_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        push_u32(&mut out, crc);
        out
    }

    /// Decodes and validates a bundle. The buffer must contain exactly
    /// one artifact — framing, checksum, and model semantics are all
    /// checked before anything is returned.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] except [`ArtifactError::Io`].
    pub fn decode(bytes: &[u8]) -> Result<ModelBundle, ArtifactError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(ArtifactError::Truncated);
        }
        if bytes[..4] != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if !(ARTIFACT_VERSION..=ARTIFACT_VERSION_V3).contains(&version) {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let body_len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        let total = match HEADER_LEN.checked_add(body_len).and_then(|n| n.checked_add(4)) {
            Some(t) => t,
            None => return Err(ArtifactError::Truncated),
        };
        // Exact-length framing: a flipped bit in body_len can never
        // masquerade as a valid artifact.
        if bytes.len() < total {
            return Err(ArtifactError::Truncated);
        }
        if bytes.len() > total {
            return Err(ArtifactError::TrailingBytes);
        }
        let computed = crc32(&bytes[..total - 4]);
        let carried = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if computed != carried {
            return Err(ArtifactError::BadChecksum { computed, carried });
        }

        let mut cur = Cursor::new(&bytes[HEADER_LEN..total - 4]);

        // 1. Params.
        let mut fields = [0.0f64; FadewichParams::N_FIELDS];
        for (i, slot) in fields.iter_mut().enumerate() {
            *slot = cur.f64(&format!("params field {i}"))?;
        }
        let params =
            FadewichParams::from_field_array(&fields).map_err(ArtifactError::Malformed)?;

        // 2. Schema.
        let tick_hz = cur.f64("schema tick_hz")?;
        if !(tick_hz.is_finite() && tick_hz > 0.0) {
            return Err(ArtifactError::Malformed(format!("tick_hz {tick_hz} must be positive")));
        }
        let n_streams = cur.u32("schema stream count")? as usize;
        if n_streams == 0 {
            return Err(ArtifactError::Malformed("schema lists zero streams".to_string()));
        }
        let mut stream_ids = Vec::with_capacity(n_streams.min(4096));
        for i in 0..n_streams {
            stream_ids.push(cur.u32(&format!("stream id {i}"))?);
        }
        let channels = if version >= ARTIFACT_VERSION_V2 {
            let tags = cur.take(n_streams, "channel kinds")?;
            let mut kinds = Vec::with_capacity(n_streams.min(4096));
            for (i, &t) in tags.iter().enumerate() {
                match ChannelKind::from_tag(t) {
                    Some(k) => kinds.push(k),
                    None => {
                        return Err(ArtifactError::Malformed(format!(
                            "stream {i} channel tag {t} is unknown"
                        )))
                    }
                }
            }
            kinds
        } else {
            vec![ChannelKind::Rssi; n_streams]
        };
        let features_per_stream = cur.u32("features per stream")? as usize;
        if features_per_stream == 0 {
            return Err(ArtifactError::Malformed("zero features per stream".to_string()));
        }
        let schema = FeatureSchema { tick_hz, stream_ids, channels, features_per_stream };
        if version == ARTIFACT_VERSION_V2 && schema.is_all_rssi() {
            // Canonical-encoding invariant: an all-RSSI schema must
            // have been written as version 1. (Version 3 is exempt —
            // its version choice is driven by the key table.)
            return Err(ArtifactError::Malformed(
                "version-2 artifact carries an all-RSSI schema (must be version 1)".to_string(),
            ));
        }

        // 3. MD snapshot.
        let threshold = match cur.u8("threshold flag")? {
            0 => None,
            1 => Some(cur.f64("threshold")?),
            n => {
                return Err(ArtifactError::Malformed(format!("threshold flag {n} is not 0/1")))
            }
        };
        let profile_len = cur.u32("profile length")? as usize;
        let values = cur.f64_vec(profile_len, "profile values")?;
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ArtifactError::Malformed("non-finite profile value".to_string()));
        }
        if let Some(ub) = threshold {
            if !ub.is_finite() {
                return Err(ArtifactError::Malformed(format!("threshold {ub} is not finite")));
            }
        }
        if values.len() > params.profile_capacity {
            return Err(ArtifactError::Malformed(format!(
                "profile of {} values exceeds capacity {}",
                values.len(),
                params.profile_capacity
            )));
        }
        let md = MdSnapshot { values, threshold };

        // 4. Scaler.
        let d = cur.u32("scaler dimension")? as usize;
        let means = cur.f64_vec(d, "scaler means")?;
        let stds = cur.f64_vec(d, "scaler stds")?;
        let scaler = StandardScaler::from_parts(means, stds)
            .map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        if scaler.n_features() != schema.n_features() {
            return Err(ArtifactError::Malformed(format!(
                "scaler dimension {} disagrees with schema ({} streams × {} features)",
                scaler.n_features(),
                schema.stream_ids.len(),
                schema.features_per_stream
            )));
        }

        // 5. Classes.
        let k = cur.u32("class count")? as usize;
        let mut classes = Vec::with_capacity(k.min(4096));
        for i in 0..k {
            let c = cur.u64(&format!("class {i}"))?;
            if c > usize::MAX as u64 {
                return Err(ArtifactError::Malformed(format!("class label {c} overflows")));
            }
            classes.push(c as usize);
        }

        // 6. Machines.
        let m = cur.u32("machine count")? as usize;
        let mut machines = Vec::with_capacity(m.min(4096));
        for i in 0..m {
            let ca = cur.u64(&format!("machine {i} class a"))? as usize;
            let cb = cur.u64(&format!("machine {i} class b"))? as usize;
            let kernel = match cur.u8(&format!("machine {i} kernel tag"))? {
                0 => Kernel::Linear,
                1 => Kernel::Rbf { gamma: cur.f64(&format!("machine {i} gamma"))? },
                t => {
                    return Err(ArtifactError::Malformed(format!(
                        "machine {i} kernel tag {t} is unknown"
                    )))
                }
            };
            let bias = cur.f64(&format!("machine {i} bias"))?;
            let n_sv = cur.u32(&format!("machine {i} support vector count"))? as usize;
            let sv_dim = cur.u32(&format!("machine {i} support vector dimension"))? as usize;
            let coefficients = cur.f64_vec(n_sv, "coefficients")?;
            let mut support_vectors = Vec::with_capacity(n_sv.min(4096));
            for _ in 0..n_sv {
                support_vectors.push(cur.f64_vec(sv_dim, "support vector")?);
            }
            let svm = BinarySvm::from_parts(kernel, support_vectors, coefficients, bias)
                .map_err(|e| ArtifactError::Malformed(format!("machine {i}: {e}")))?;
            machines.push((ca, cb, svm));
        }
        let svm = MultiClassSvm::from_parts(classes, machines, scaler)
            .map_err(|e| ArtifactError::Malformed(e.to_string()))?;

        // 7. Keys (v3 only).
        let keys = if version == ARTIFACT_VERSION_V3 {
            let n_keys = cur.u32("sensor key count")? as usize;
            if n_keys == 0 {
                // Canonical-encoding invariant: a keyless bundle must
                // have been written as version 1/2.
                return Err(ArtifactError::Malformed(
                    "version-3 artifact carries an empty key table".to_string(),
                ));
            }
            let mut table = KeyTable::new();
            let mut prev: Option<u16> = None;
            for i in 0..n_keys {
                let s = cur.take(2, &format!("key {i} sensor id"))?;
                let sensor = u16::from_le_bytes([s[0], s[1]]);
                if prev.is_some_and(|p| sensor <= p) {
                    return Err(ArtifactError::Malformed(format!(
                        "key table sensor ids not strictly ascending at {sensor}"
                    )));
                }
                prev = Some(sensor);
                let raw = cur.take(16, &format!("key {i} bytes"))?;
                table.insert(
                    sensor,
                    AuthKey::from_bytes(raw.try_into().expect("16-byte key slice")),
                );
            }
            Some(table)
        } else {
            None
        };

        if !cur.done() {
            return Err(ArtifactError::Malformed("unconsumed bytes inside body".to_string()));
        }

        Ok(ModelBundle { params, schema, md, re: RadioEnvironment::from_svm(svm), keys })
    }

    /// Writes the encoded bundle to `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] with the failing path and cause.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())
            .map_err(|e| ArtifactError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads and decodes a bundle from `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the file cannot be read; otherwise
    /// any [`ModelBundle::decode`] error.
    pub fn load(path: &Path) -> Result<ModelBundle, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("reading {}: {e}", path.display())))?;
        ModelBundle::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::rng::Rng;
    use fadewich_svm::SmoParams;

    /// A small but fully populated bundle: 2 streams × 3 features,
    /// 3 classes, RBF kernel, a short MD profile.
    fn sample_bundle() -> ModelBundle {
        let mut rng = Rng::seed_from_u64(99);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for label in 0..3usize {
            for _ in 0..12 {
                let mut row = vec![0.0; 6];
                row[label * 2] = 4.0 + rng.normal() * 0.3;
                row[label * 2 + 1] = -2.0 + rng.normal() * 0.3;
                row[5] = rng.normal();
                xs.push(row);
                ys.push(label);
            }
        }
        let svm = MultiClassSvm::train(
            &xs,
            &ys,
            Kernel::Rbf { gamma: 0.4 },
            SmoParams::default(),
            &mut rng,
        )
        .unwrap();
        ModelBundle {
            params: FadewichParams::default(),
            schema: FeatureSchema::rssi(5.0, vec![2, 5], 3),
            md: MdSnapshot {
                values: (0..40).map(|_| 8.0 + rng.normal()).collect(),
                threshold: Some(11.5),
            },
            re: RadioEnvironment::from_svm(svm),
            keys: None,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let bundle = sample_bundle();
        let bytes = bundle.encode();
        let back = ModelBundle::decode(&bytes).unwrap();
        assert_eq!(back, bundle);
        // Canonical encoding: re-encoding the decoded bundle
        // reproduces the bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn classification_survives_round_trip_bit_exactly() {
        let bundle = sample_bundle();
        let back = ModelBundle::decode(&bundle.encode()).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let x: Vec<f64> = (0..6).map(|_| rng.normal() * 3.0).collect();
            assert_eq!(back.re.classify(&x), bundle.re.classify(&x));
        }
    }

    #[test]
    fn none_threshold_round_trips() {
        let mut bundle = sample_bundle();
        bundle.md = MdSnapshot { values: vec![1.0, 2.0], threshold: None };
        let back = ModelBundle::decode(&bundle.encode()).unwrap();
        assert_eq!(back.md, bundle.md);
    }

    #[test]
    fn framing_errors() {
        let bytes = sample_bundle().encode();
        assert_eq!(ModelBundle::decode(&bytes[..5]), Err(ArtifactError::Truncated));
        assert_eq!(
            ModelBundle::decode(&bytes[..bytes.len() - 1]),
            Err(ArtifactError::Truncated)
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(ModelBundle::decode(&long), Err(ArtifactError::TrailingBytes));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(ModelBundle::decode(&bad), Err(ArtifactError::BadMagic));
        let mut vers = bytes.clone();
        vers[4] = 9;
        assert_eq!(ModelBundle::decode(&vers), Err(ArtifactError::UnsupportedVersion(9)));
        let mut flip = bytes.clone();
        let mid = HEADER_LEN + 40;
        flip[mid] ^= 0x10;
        assert!(matches!(
            ModelBundle::decode(&flip),
            Err(ArtifactError::BadChecksum { .. })
        ));
    }

    #[test]
    fn semantic_validation_catches_bad_models() {
        // Rebuild the artifact with an out-of-range alpha but a valid
        // CRC: framing passes, semantics must not.
        let bundle = sample_bundle();
        let mut bytes = bundle.encode();
        // alpha is params field 2 -> body offset 2 * 8.
        let off = HEADER_LEN + 2 * 8;
        bytes[off..off + 8].copy_from_slice(&0.0f64.to_bits().to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match ModelBundle::decode(&bytes) {
            Err(ArtifactError::Malformed(why)) => assert!(why.contains("alpha"), "{why}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn save_load_round_trip_and_io_errors() {
        let bundle = sample_bundle();
        let dir = std::env::temp_dir().join("fadewich-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.fwmb");
        bundle.save(&path).unwrap();
        assert_eq!(ModelBundle::load(&path).unwrap(), bundle);
        let missing = dir.join("does-not-exist.fwmb");
        assert!(matches!(ModelBundle::load(&missing), Err(ArtifactError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }

    /// The sample bundle with the second stream retyped as ambient
    /// light — forces the version-2 encoding.
    fn mixed_bundle() -> ModelBundle {
        let mut bundle = sample_bundle();
        bundle.schema.channels[1] = ChannelKind::AmbientLight;
        bundle
    }

    #[test]
    fn all_rssi_schema_still_encodes_as_version_1() {
        let bytes = sample_bundle().encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), ARTIFACT_VERSION);
        // And a decoded v1 artifact reports every stream as RSSI.
        let back = ModelBundle::decode(&bytes).unwrap();
        assert!(back.schema.is_all_rssi());
        assert_eq!(back.schema.channels, vec![ChannelKind::Rssi; 2]);
    }

    #[test]
    fn mixed_channel_schema_round_trips_as_version_2() {
        let bundle = mixed_bundle();
        let bytes = bundle.encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), ARTIFACT_VERSION_V2);
        let back = ModelBundle::decode(&bytes).unwrap();
        assert_eq!(back, bundle);
        // Canonical encoding holds per version.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn unknown_channel_tag_is_rejected() {
        let bundle = mixed_bundle();
        let mut bytes = bundle.encode();
        // Channel tags sit after params (17 f64s), tick_hz, the stream
        // count, and two u32 stream ids.
        let off = HEADER_LEN + FadewichParams::N_FIELDS * 8 + 8 + 4 + 2 * 4;
        assert_eq!(bytes[off + 1], ChannelKind::AmbientLight.tag());
        bytes[off + 1] = 9;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match ModelBundle::decode(&bytes) {
            Err(ArtifactError::Malformed(why)) => assert!(why.contains("channel tag"), "{why}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn version_2_with_all_rssi_schema_is_rejected() {
        // Hand-build a v2 artifact whose channel tags are all RSSI: the
        // codec must refuse it so each bundle has exactly one encoding.
        let bundle = mixed_bundle();
        let mut bytes = bundle.encode();
        let off = HEADER_LEN + FadewichParams::N_FIELDS * 8 + 8 + 4 + 2 * 4;
        bytes[off + 1] = ChannelKind::Rssi.tag();
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match ModelBundle::decode(&bytes) {
            Err(ArtifactError::Malformed(why)) => {
                assert!(why.contains("all-RSSI"), "{why}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_in_v2_is_rejected() {
        // The v1 exhaustive flip test lives in the property suite; the
        // v2 layout gets the same guarantee here over a compact bundle.
        let bytes = mixed_bundle().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    ModelBundle::decode(&flipped).is_err(),
                    "flip byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    /// The sample bundle with a derived key table — forces version 3.
    fn keyed_bundle() -> ModelBundle {
        let mut bundle = sample_bundle();
        bundle.keys = Some(crate::auth::KeyTable::derive(0xD3B, 9));
        bundle
    }

    #[test]
    fn keyed_bundle_round_trips_as_version_3() {
        let bundle = keyed_bundle();
        let bytes = bundle.encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), ARTIFACT_VERSION_V3);
        let back = ModelBundle::decode(&bytes).unwrap();
        assert_eq!(back, bundle);
        assert_eq!(back.encode(), bytes, "canonical encoding must hold for v3");
        // Keys survive bit-exactly.
        let keys = back.keys.unwrap();
        for s in 0..9u16 {
            assert_eq!(keys.get(s), Some(&crate::auth::AuthKey::derive(0xD3B, s)));
        }
    }

    #[test]
    fn keyed_mixed_channel_bundle_is_still_version_3() {
        // Keys dominate the version choice: mixed channels + keys is
        // one v3 artifact, not some v2/v3 hybrid.
        let mut bundle = keyed_bundle();
        bundle.schema.channels[1] = ChannelKind::AmbientLight;
        let bytes = bundle.encode();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), ARTIFACT_VERSION_V3);
        assert_eq!(ModelBundle::decode(&bytes).unwrap(), bundle);
    }

    #[test]
    fn version_3_with_empty_key_table_is_rejected() {
        // Hand-build a v3 artifact with n_keys = 0: one bundle, one
        // encoding — keyless must be v1/v2.
        let bundle = keyed_bundle();
        let mut bytes = bundle.encode();
        // The key count sits 4 bytes after the machines section, i.e.
        // at (body end − 4 CRC − key payload − 4 count).
        let n = bytes.len();
        let key_payload = 9 * (2 + 16);
        let count_off = n - 4 - key_payload - 4;
        assert_eq!(
            u32::from_le_bytes(bytes[count_off..count_off + 4].try_into().unwrap()),
            9,
            "key-count offset arithmetic drifted"
        );
        bytes[count_off..count_off + 4].copy_from_slice(&0u32.to_le_bytes());
        // Shrink the body to match and re-frame.
        bytes.drain(count_off + 4..n - 4);
        let body_len = (bytes.len() - HEADER_LEN - 4) as u32;
        bytes[6..10].copy_from_slice(&body_len.to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match ModelBundle::decode(&bytes) {
            Err(ArtifactError::Malformed(why)) => assert!(why.contains("empty key"), "{why}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_key_table_is_rejected() {
        let bundle = keyed_bundle();
        let mut bytes = bundle.encode();
        // Swap the sensor ids of the first two keys (0 and 1) so the
        // stream reads 1, 0, 2, … — valid framing, broken ordering.
        let n = bytes.len();
        let first_key = n - 4 - 9 * (2 + 16);
        bytes[first_key..first_key + 2].copy_from_slice(&1u16.to_le_bytes());
        bytes[first_key + 18..first_key + 20].copy_from_slice(&0u16.to_le_bytes());
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match ModelBundle::decode(&bytes) {
            Err(ArtifactError::Malformed(why)) => {
                assert!(why.contains("ascending"), "{why}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_in_v3_is_rejected() {
        // Same exhaustive guarantee the v1/v2 layouts carry: no single
        // bit flip of a keyed artifact decodes.
        let bytes = keyed_bundle().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    ModelBundle::decode(&flipped).is_err(),
                    "flip byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn error_displays_are_descriptive() {
        for e in [
            ArtifactError::Truncated,
            ArtifactError::BadMagic,
            ArtifactError::UnsupportedVersion(7),
            ArtifactError::TrailingBytes,
            ArtifactError::BadChecksum { computed: 1, carried: 2 },
            ArtifactError::Malformed("x".to_string()),
            ArtifactError::Io("y".to_string()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
