//! Movement Detection module (paper §IV-C, Algorithm 1).
//!
//! MD maintains, per monitored stream, a rolling standard deviation of
//! the last `d` seconds; their sum `s_t` is compared each tick against
//! the `(100 − α)`-th percentile of a KDE-smoothed *normal profile* of
//! past `s_t` values. Batches of recent values refresh the profile when
//! they are sufficiently calm (fraction of anomalous values < τ), which
//! keeps the threshold tracking the slowly changing radio environment
//! — the paper is explicit that a static calibration is impossible in a
//! busy office.

use fadewich_officesim::DayTrace;
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::rolling::{RollingStd, RollingStdBatch, RollingStdState};
use fadewich_telemetry::{SpanId, Telemetry, Value};

use crate::config::FadewichParams;
use crate::windows::{VariationWindow, WindowTracker, WindowTrackerState};

/// MD's per-tick output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdVerdict {
    /// Whether the environment is anomalous (Algorithm 1's return).
    pub anomalous: bool,
    /// The summed standard deviation `s_t`.
    pub st: f64,
    /// A variation window that closed at this tick, if any.
    pub closed_window: Option<VariationWindow>,
}

/// One tick of [`MovementDetector::step_batch_tracked`] output: the
/// verdict plus the window-tracker readings (`dW_t`, open-window start)
/// as they stood immediately after that tick, so a batched caller can
/// replay the FSM exactly as if it had interleaved per-tick steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdBatchStep {
    /// The tick's verdict, as [`MovementDetector::step`] would return.
    pub verdict: MdVerdict,
    /// `dW_t` at this tick (0 when no window is open).
    pub open_duration_ticks: usize,
    /// Start tick of the then-open variation window, if any.
    pub open_window_start: Option<usize>,
}

/// Exported MD state: the learned normal profile and its KDE-derived
/// anomaly threshold. This is what the model-artifact bundle persists
/// so a serving process can start detecting without an
/// installation-time collection phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MdSnapshot {
    /// Normal-profile `s_t` values, oldest first.
    pub values: Vec<f64>,
    /// The anomaly threshold `ub`, if the profile was ever fitted.
    pub threshold: Option<f64>,
}

/// The *complete* in-flight MD state for crash-safe checkpointing —
/// everything [`MdSnapshot`] (the model-artifact export) deliberately
/// leaves out: per-stream rolling windows with their exact float
/// accumulators, the warmup/init clock, the batch-update queue, and
/// the open variation window. `MdSnapshot` stays the frozen artifact
/// v1 contract; this type wraps it rather than extending it.
#[derive(Debug, Clone, PartialEq)]
pub struct MdRuntimeState {
    /// The learned profile + threshold (the artifact-exported part).
    pub snapshot: MdSnapshot,
    /// Per-stream rolling std windows, in stream order.
    pub stream_stds: Vec<RollingStdState>,
    /// Ticks fed so far (drives warmup and the init-collection phase).
    pub ticks_seen: usize,
    /// The in-flight batch-update queue of `s_t` values.
    pub queue: Vec<f64>,
    /// How many queued values were anomalous.
    pub queue_anomalous: usize,
    /// Consecutive rejected update batches.
    pub rejected_streak: usize,
    /// The variation-window tracker, including any open window.
    pub tracker: WindowTrackerState,
}

/// The per-stream rolling-std storage behind [`MovementDetector`].
///
/// Both variants hold identical mathematical state and produce
/// bit-identical `std_dev` streams (see [`RollingStdBatch`]'s
/// contract); they differ only in memory layout and therefore speed.
/// `Fast` is the default; [`MovementDetector::set_reference_paths`]
/// swaps to the scalar `Reference` bank for differential testing, and
/// either bank checkpoints as the same `Vec<RollingStdState>`.
#[derive(Debug, Clone)]
enum StdBank {
    /// One independently allocated window per stream (the original
    /// scalar layout, kept as the differential-test oracle).
    Reference(Vec<RollingStd>),
    /// All streams in one struct-of-arrays bank.
    Fast(RollingStdBatch),
}

impl StdBank {
    fn n_streams(&self) -> usize {
        match self {
            StdBank::Reference(v) => v.len(),
            StdBank::Fast(b) => b.n_streams(),
        }
    }

    fn push_row(&mut self, row: &[f64]) {
        match self {
            StdBank::Reference(v) => {
                for (w, &x) in v.iter_mut().zip(row) {
                    w.push(x);
                }
            }
            StdBank::Fast(b) => b.push_row(row),
        }
    }

    fn push_one(&mut self, s: usize, x: f64) {
        match self {
            StdBank::Reference(v) => v[s].push(x),
            StdBank::Fast(b) => b.push_one(s, x),
        }
    }

    fn std_dev(&self, s: usize) -> f64 {
        match self {
            StdBank::Reference(v) => v[s].std_dev(),
            StdBank::Fast(b) => b.std_dev(s),
        }
    }

    /// Σ std_dev over all streams, folded in stream order from `0.0`
    /// in both variants (the `s_t` bit pattern depends on it).
    fn sum_std_devs(&self) -> f64 {
        match self {
            StdBank::Reference(v) => v.iter().map(RollingStd::std_dev).sum(),
            StdBank::Fast(b) => (0..b.n_streams()).map(|s| b.std_dev(s)).sum(),
        }
    }

    fn states(&self) -> Vec<RollingStdState> {
        match self {
            StdBank::Reference(v) => v.iter().map(RollingStd::state).collect(),
            StdBank::Fast(b) => b.states(),
        }
    }
}

/// The online movement detector.
#[derive(Debug, Clone)]
pub struct MovementDetector {
    params: FadewichParams,
    tick_hz: f64,
    stream_stds: StdBank,
    profile: Vec<f64>,
    threshold: Option<f64>,
    init_ticks: usize,
    warmup_ticks: usize,
    ticks_seen: usize,
    queue: Vec<f64>,
    queue_anomalous: usize,
    /// Consecutive rejected batches (see
    /// [`FadewichParams::max_rejected_batches`]).
    rejected_streak: usize,
    tracker: WindowTracker,
    /// Observability only — never serialized, never part of equality;
    /// a restored detector starts with a fresh (disabled) handle.
    telemetry: Telemetry,
    /// The span opened for the current variation window, if any.
    window_span: Option<SpanId>,
}

impl MovementDetector {
    /// Creates a detector over `n_streams` streams sampled at
    /// `tick_hz`.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation message if `params` are
    /// inconsistent, or an error for `n_streams == 0`.
    pub fn new(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
    ) -> Result<MovementDetector, String> {
        params.validate()?;
        if n_streams == 0 {
            return Err("movement detection needs at least one stream".to_string());
        }
        if !(tick_hz > 0.0) {
            return Err("tick rate must be positive".to_string());
        }
        let window_ticks = params.std_window_ticks(tick_hz);
        let hangover = (params.window_hangover_s * tick_hz).round().max(1.0) as usize;
        Ok(MovementDetector {
            params,
            tick_hz,
            stream_stds: StdBank::Fast(RollingStdBatch::new(n_streams, window_ticks)),
            profile: Vec::with_capacity(params.profile_capacity),
            threshold: None,
            init_ticks: (params.profile_init_s * tick_hz).round() as usize,
            warmup_ticks: window_ticks,
            ticks_seen: 0,
            queue: Vec::with_capacity(params.batch_size),
            queue_anomalous: 0,
            rejected_streak: 0,
            tracker: WindowTracker::new(hangover),
            telemetry: Telemetry::disabled(),
            window_span: None,
        })
    }

    /// Installs a telemetry handle. The default handle is disabled, so
    /// detection behavior and outputs are unchanged unless the caller
    /// opts in; all records are stamped with the logical tick only.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The span covering the currently open variation window, when
    /// telemetry is enabled and a window is open. The controller
    /// parents its Rule 1/Rule 2 audit spans onto this.
    pub fn window_span(&self) -> Option<SpanId> {
        self.window_span
    }

    /// Number of monitored streams.
    pub fn n_streams(&self) -> usize {
        self.stream_stds.n_streams()
    }

    /// Selects between the struct-of-arrays fast path (the default)
    /// and the scalar reference path for the per-stream rolling-std
    /// bank. The two are bit-identical by construction — this switch
    /// exists so differential and end-to-end pin tests can prove it,
    /// and so a future regression can be bisected to one layout.
    ///
    /// Switching converts the live state through the checkpoint codec,
    /// which preserves every accumulator bit; it can be flipped
    /// mid-stream without perturbing subsequent verdicts.
    pub fn set_reference_paths(&mut self, reference: bool) {
        let states = self.stream_stds.states();
        self.stream_stds = if reference {
            StdBank::Reference(
                states
                    .iter()
                    .map(|s| RollingStd::from_state(s).expect("self-exported state is valid"))
                    .collect(),
            )
        } else {
            StdBank::Fast(
                RollingStdBatch::from_states(&states).expect("self-exported state is valid"),
            )
        };
    }

    /// The current anomaly threshold `ub`, once initialized.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// The current normal-profile values (for Fig. 2), oldest first.
    pub fn profile_values(&self) -> &[f64] {
        &self.profile
    }

    /// Exports the learned MD state (normal profile + threshold) for
    /// the model-artifact bundle.
    pub fn snapshot(&self) -> MdSnapshot {
        MdSnapshot { values: self.profile.clone(), threshold: self.threshold }
    }

    /// Builds a detector with a previously learned profile and
    /// threshold already installed (the model-artifact load path). The
    /// rolling std windows still warm up from scratch, but the
    /// installation-time profile-collection phase is skipped entirely:
    /// the restored threshold is active from the first post-warmup
    /// tick, with no KDE fit at construction.
    ///
    /// # Errors
    ///
    /// [`MovementDetector::new`] errors, plus a description when the
    /// snapshot is inconsistent: non-finite values, a profile larger
    /// than `profile_capacity`, a non-finite threshold, or a threshold
    /// without any profile to adapt from.
    pub fn with_snapshot(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        snapshot: MdSnapshot,
    ) -> Result<MovementDetector, String> {
        let mut md = MovementDetector::new(n_streams, tick_hz, params)?;
        if snapshot.values.len() > params.profile_capacity {
            return Err(format!(
                "snapshot profile of {} values exceeds capacity {}",
                snapshot.values.len(),
                params.profile_capacity
            ));
        }
        if snapshot.values.iter().any(|v| !v.is_finite()) {
            return Err("snapshot profile contains a non-finite value".to_string());
        }
        if let Some(ub) = snapshot.threshold {
            if !ub.is_finite() {
                return Err(format!("snapshot threshold {ub} is not finite"));
            }
            if snapshot.values.is_empty() {
                return Err("snapshot has a threshold but no profile".to_string());
            }
        }
        md.profile = snapshot.values;
        md.threshold = snapshot.threshold;
        Ok(md)
    }

    /// Exports the complete in-flight state for crash-safe
    /// checkpointing (contrast with [`MovementDetector::snapshot`],
    /// which exports only the learned model for the artifact bundle).
    pub fn runtime_state(&self) -> MdRuntimeState {
        MdRuntimeState {
            snapshot: self.snapshot(),
            stream_stds: self.stream_stds.states(),
            ticks_seen: self.ticks_seen,
            queue: self.queue.clone(),
            queue_anomalous: self.queue_anomalous,
            rejected_streak: self.rejected_streak,
            tracker: self.tracker.state(),
        }
    }

    /// Rebuilds a detector mid-flight from a
    /// [`MovementDetector::runtime_state`] export. Subsequent steps are
    /// bit-identical to the detector the state was captured from — the
    /// crash-recovery property the runtime's checkpoint layer relies
    /// on.
    ///
    /// # Errors
    ///
    /// All [`MovementDetector::with_snapshot`] errors, plus a
    /// description when the runtime state disagrees with the
    /// construction parameters (stream count, window capacity, hangover
    /// length) or is internally inconsistent (oversized or non-finite
    /// batch queue, anomalous count exceeding the queue).
    pub fn from_runtime_state(
        n_streams: usize,
        tick_hz: f64,
        params: FadewichParams,
        state: &MdRuntimeState,
    ) -> Result<MovementDetector, String> {
        let mut md =
            MovementDetector::with_snapshot(n_streams, tick_hz, params, state.snapshot.clone())?;
        if state.stream_stds.len() != n_streams {
            return Err(format!(
                "state carries {} rolling windows for {} streams",
                state.stream_stds.len(),
                n_streams
            ));
        }
        let window_ticks = params.std_window_ticks(tick_hz);
        for (i, s) in state.stream_stds.iter().enumerate() {
            if s.capacity != window_ticks {
                return Err(format!(
                    "stream {i} window capacity {} disagrees with std_window {window_ticks}",
                    s.capacity
                ));
            }
            RollingStd::from_state(s).map_err(|e| format!("stream {i}: {e}"))?;
        }
        let stds = StdBank::Fast(
            RollingStdBatch::from_states(&state.stream_stds)
                .expect("entries validated individually above"),
        );
        if state.queue.len() >= params.batch_size {
            return Err(format!(
                "batch queue of {} values should have flushed at {}",
                state.queue.len(),
                params.batch_size
            ));
        }
        if state.queue.iter().any(|v| !v.is_finite()) {
            return Err("batch queue contains a non-finite value".to_string());
        }
        if state.queue_anomalous > state.queue.len() {
            return Err(format!(
                "{} anomalous values in a queue of {}",
                state.queue_anomalous,
                state.queue.len()
            ));
        }
        let tracker = WindowTracker::from_state(&state.tracker)?;
        let hangover = (params.window_hangover_s * tick_hz).round().max(1.0) as usize;
        if state.tracker.hangover_ticks != hangover {
            return Err(format!(
                "tracker hangover {} disagrees with params ({hangover})",
                state.tracker.hangover_ticks
            ));
        }
        md.stream_stds = stds;
        md.ticks_seen = state.ticks_seen;
        md.queue = state.queue.clone();
        md.queue_anomalous = state.queue_anomalous;
        md.rejected_streak = state.rejected_streak;
        md.tracker = tracker;
        Ok(md)
    }

    /// `dW_t`: duration (ticks) of the open variation window at `tick`.
    pub fn open_duration_ticks(&self, tick: usize) -> usize {
        self.tracker.open_duration_ticks(tick)
    }

    /// Start tick of the open variation window, if one is open.
    pub fn open_window_start(&self) -> Option<usize> {
        self.tracker.open_start()
    }

    /// Feeds one tick of samples (one per stream, same order as at
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_streams()`.
    pub fn step(&mut self, tick: usize, row: &[f64]) -> MdVerdict {
        assert_eq!(row.len(), self.stream_stds.n_streams(), "stream count mismatch");
        self.step_inner(tick, row, None)
    }

    /// Feeds a block of consecutive ticks (row-major: tick `i` at
    /// `rows[i*n_streams .. (i+1)*n_streams]`, starting at
    /// `start_tick`), appending one verdict per tick to `out`.
    ///
    /// Semantically identical to calling [`step`](Self::step) per
    /// tick — verdicts are bit-identical — but the bank's row sweep
    /// stays hot across the block, which is how the offline/bench
    /// paths drive the detector.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `n_streams()`.
    pub fn step_batch(&mut self, start_tick: usize, rows: &[f64], out: &mut Vec<MdVerdict>) {
        let n = self.stream_stds.n_streams();
        assert_eq!(rows.len() % n, 0, "row block width must be a multiple of the stream count");
        for (i, row) in rows.chunks_exact(n).enumerate() {
            out.push(self.step_inner(start_tick + i, row, None));
        }
    }

    /// [`step_batch`](Self::step_batch) plus the per-tick window-tracker
    /// readings a per-tick caller would observe between steps.
    ///
    /// The detector advances independently of the controller FSM (no
    /// feedback), so a whole block of unmasked ticks can run through MD
    /// first — but the FSM consumes `dW_t` and the open-window start
    /// *as they stood right after each tick*, and a later tick in the
    /// block may close or reopen the window. This variant captures
    /// those readings immediately after each internal step, so the FSM
    /// can replay them per tick and stay bit-identical to interleaved
    /// stepping (the streaming engine's batched ingest relies on this).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `n_streams()`.
    pub fn step_batch_tracked(
        &mut self,
        start_tick: usize,
        rows: &[f64],
        out: &mut Vec<MdBatchStep>,
    ) {
        let n = self.stream_stds.n_streams();
        assert_eq!(rows.len() % n, 0, "row block width must be a multiple of the stream count");
        for (i, row) in rows.chunks_exact(n).enumerate() {
            let tick = start_tick + i;
            let verdict = self.step_inner(tick, row, None);
            out.push(MdBatchStep {
                verdict,
                open_duration_ticks: self.tracker.open_duration_ticks(tick),
                open_window_start: self.tracker.open_start(),
            });
        }
    }

    /// Feeds one tick in which some streams are unavailable (sensor
    /// quarantined, sample too stale to gap-fill). `mask[i] == true`
    /// excludes stream `i`: its rolling window is not advanced and its
    /// std-dev is left out of `s_t`, which is rescaled by
    /// `n_streams / n_active` so the threshold learned on the full
    /// deployment stays comparable. A fully-masked tick is treated as
    /// non-anomalous and does not feed the normal profile.
    ///
    /// With an all-`false` mask this is exactly [`MovementDetector::step`]
    /// (bit-identical arithmetic), which the streaming/batch parity test
    /// relies on.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_streams()` or `mask.len() != n_streams()`.
    pub fn step_masked(&mut self, tick: usize, row: &[f64], mask: &[bool]) -> MdVerdict {
        assert_eq!(row.len(), self.stream_stds.n_streams(), "stream count mismatch");
        assert_eq!(mask.len(), self.stream_stds.n_streams(), "mask length mismatch");
        if mask.iter().any(|&m| m) {
            self.step_inner(tick, row, Some(mask))
        } else {
            self.step_inner(tick, row, None)
        }
    }

    fn step_inner(&mut self, tick: usize, row: &[f64], mask: Option<&[bool]>) -> MdVerdict {
        match mask {
            None => self.stream_stds.push_row(row),
            Some(m) => {
                for (s, (&x, &skip)) in row.iter().zip(m).enumerate() {
                    if !skip {
                        self.stream_stds.push_one(s, x);
                    }
                }
            }
        }
        self.ticks_seen += 1;
        let st: f64 = match mask {
            None => self.stream_stds.sum_std_devs(),
            Some(m) => {
                let mut sum = 0.0;
                let mut active = 0usize;
                for (s, &skip) in m.iter().enumerate() {
                    if !skip {
                        sum += self.stream_stds.std_dev(s);
                        active += 1;
                    }
                }
                if active == 0 {
                    // Nothing measured this tick: no verdict either way,
                    // and the profile must not learn a fabricated zero.
                    let closed_window = self.track(tick, false, 0.0);
                    return MdVerdict { anomalous: false, st: 0.0, closed_window };
                }
                sum * self.stream_stds.n_streams() as f64 / active as f64
            }
        };

        // Warmup: rolling windows not yet representative.
        if self.ticks_seen <= self.warmup_ticks {
            return MdVerdict { anomalous: false, st, closed_window: None };
        }
        // Installation-time profile collection (no adversary assumed).
        if self.threshold.is_none() {
            self.profile.push(st);
            if self.ticks_seen >= self.init_ticks.max(self.warmup_ticks + 8) {
                self.refit(tick);
            }
            return MdVerdict { anomalous: false, st, closed_window: None };
        }

        let ub = self.threshold.expect("initialized above");
        let anomalous = st >= ub;
        if anomalous {
            self.telemetry.counter_add("md_anomalous_ticks", 1);
        }

        // Algorithm 1's batch update.
        self.queue.push(st);
        if anomalous {
            self.queue_anomalous += 1;
        }
        if self.queue.len() >= self.params.batch_size {
            let frac = self.queue_anomalous as f64 / self.queue.len() as f64;
            if frac < self.params.tau {
                self.profile.extend_from_slice(&self.queue);
                if self.profile.len() > self.params.profile_capacity {
                    let excess = self.profile.len() - self.params.profile_capacity;
                    self.profile.drain(..excess);
                }
                self.telemetry.counter_add("md_batches_accepted", 1);
                self.refit(tick);
                self.rejected_streak = 0;
            } else {
                self.rejected_streak += 1;
                self.telemetry.counter_add("md_batches_rejected", 1);
                if self.rejected_streak >= self.params.max_rejected_batches {
                    // The environment has shifted so far that Algorithm 1
                    // would never accept a batch again; re-learn the
                    // profile from the most recent data.
                    self.profile.clear();
                    self.profile.extend(self.queue.iter().copied());
                    self.telemetry.counter_add("md_profile_relearns", 1);
                    self.telemetry.event(
                        tick as u64,
                        "md_profile_relearn",
                        None,
                        &[("anomalous_frac", Value::F64(frac))],
                    );
                    self.refit(tick);
                    self.rejected_streak = 0;
                }
            }
            self.queue.clear();
            self.queue_anomalous = 0;
        }

        let closed_window = self.track(tick, anomalous, st);
        MdVerdict { anomalous, st, closed_window }
    }

    /// Advances the window tracker and mirrors its open/close
    /// transitions into the trace: the `md_window` span opens at the
    /// `s_t` threshold crossing and closes when the window does. The
    /// controller parents its decision audit spans onto it.
    fn track(&mut self, tick: usize, anomalous: bool, st: f64) -> Option<VariationWindow> {
        let closed = self.tracker.push(tick, anomalous);
        if let Some(w) = &closed {
            if let Some(span) = self.window_span.take() {
                self.telemetry.span_close(w.end_tick as u64, span);
            }
            self.telemetry.counter_add("md_windows_closed", 1);
            self.telemetry.histo_record("md_window_ticks", w.duration_ticks() as u64);
        }
        if self.window_span.is_none() && self.telemetry.is_enabled() {
            if let Some(start) = self.tracker.open_start() {
                self.window_span = self.telemetry.span_open(
                    tick as u64,
                    "md_window",
                    None,
                    &[
                        ("start_tick", Value::U64(start as u64)),
                        ("st", Value::F64(st)),
                        ("threshold", Value::F64(self.threshold.unwrap_or(f64::NAN))),
                    ],
                );
            }
        }
        closed
    }

    /// Flushes the open variation window at the end of a stream.
    pub fn finish(&mut self, last_tick: usize) -> Option<VariationWindow> {
        let closed = self.tracker.finish(last_tick);
        if closed.is_some() {
            if let Some(span) = self.window_span.take() {
                self.telemetry.span_close(last_tick as u64, span);
            }
        }
        closed
    }

    fn refit(&mut self, tick: usize) {
        if let Ok(kde) = GaussianKde::fit(&self.profile) {
            let ub = kde.quantile(1.0 - self.params.alpha / 100.0);
            self.threshold = Some(ub);
            self.telemetry.counter_add("md_profile_refits", 1);
            self.telemetry.gauge_set("md_threshold", ub);
            self.telemetry.event(
                tick as u64,
                "md_profile_refit",
                None,
                &[
                    ("profile_len", Value::U64(self.profile.len() as u64)),
                    ("threshold", Value::F64(ub)),
                ],
            );
        }
    }

    /// The sampling rate this detector was built for.
    pub fn tick_hz(&self) -> f64 {
        self.tick_hz
    }
}

/// The result of running MD offline over one recorded day.
#[derive(Debug, Clone, PartialEq)]
pub struct MdRun {
    /// All closed variation windows, in order (unfiltered by `t∆`).
    pub windows: Vec<VariationWindow>,
    /// The `s_t` series, one value per tick.
    pub st_series: Vec<f64>,
    /// The threshold series (NaN before initialization).
    pub threshold_series: Vec<f64>,
}

impl MdRun {
    /// Windows meeting the `t∆` significance threshold.
    pub fn significant_windows(&self, t_delta_ticks: usize) -> Vec<VariationWindow> {
        crate::windows::significant_windows(&self.windows, t_delta_ticks)
    }
}

/// Runs MD over one day of a recorded trace, monitoring only
/// `streams` (indices into the trace's stream list).
///
/// # Errors
///
/// Propagates [`MovementDetector::new`] errors.
pub fn run_md_over_day(
    day: &DayTrace,
    streams: &[usize],
    tick_hz: f64,
    params: FadewichParams,
) -> Result<MdRun, String> {
    let mut md = MovementDetector::new(streams.len(), tick_hz, params)?;
    let mut st_series = Vec::with_capacity(day.n_ticks());
    let mut threshold_series = Vec::with_capacity(day.n_ticks());
    let mut windows = Vec::new();
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day.n_ticks() {
        let full_row = day.row(tick);
        for (dst, &s) in row.iter_mut().zip(streams) {
            *dst = full_row[s] as f64;
        }
        let verdict = md.step(tick, &row);
        st_series.push(verdict.st);
        threshold_series.push(md.threshold().unwrap_or(f64::NAN));
        if let Some(w) = verdict.closed_window {
            windows.push(w);
        }
    }
    if let Some(w) = md.finish(day.n_ticks().saturating_sub(1)) {
        windows.push(w);
    }
    Ok(MdRun { windows, st_series, threshold_series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::rng::Rng;

    /// Synthesizes a quiet multi-stream day with one burst of high
    /// variance in the middle.
    fn synthetic_day(
        n_streams: usize,
        n_ticks: usize,
        burst: Option<(usize, usize, f64)>,
        seed: u64,
    ) -> DayTrace {
        let mut rng = Rng::seed_from_u64(seed);
        let mut day = DayTrace::with_capacity(n_streams, n_ticks);
        let mut row = vec![0.0f64; n_streams];
        for t in 0..n_ticks {
            let sd = match burst {
                Some((from, to, boost)) if t >= from && t < to => 1.0 + boost,
                _ => 1.0,
            };
            for r in row.iter_mut() {
                *r = -50.0 + rng.normal() * sd;
            }
            day.push_row(&row);
        }
        day
    }

    fn fast_params() -> FadewichParams {
        FadewichParams { profile_init_s: 30.0, ..Default::default() }
    }

    #[test]
    fn quiet_day_yields_few_significant_windows() {
        let day = synthetic_day(8, 3000, None, 1);
        let run = run_md_over_day(&day, &(0..8).collect::<Vec<_>>(), 5.0, fast_params()).unwrap();
        let sig = run.significant_windows(fast_params().t_delta_ticks(5.0));
        assert!(sig.is_empty(), "false windows: {sig:?}");
    }

    #[test]
    fn variance_burst_detected_with_accurate_timing() {
        // Burst of 3x noise from tick 1500 to 1540 (8 s at 5 Hz).
        let day = synthetic_day(8, 3000, Some((1500, 1540, 2.0)), 2);
        let run = run_md_over_day(&day, &(0..8).collect::<Vec<_>>(), 5.0, fast_params()).unwrap();
        let sig = run.significant_windows(fast_params().t_delta_ticks(5.0));
        assert_eq!(sig.len(), 1, "windows: {:?}", run.windows);
        let w = sig[0];
        assert!(
            (1495..=1510).contains(&w.start_tick),
            "start {} should be near 1500",
            w.start_tick
        );
        // Rolling window keeps std high for ~window length after.
        assert!(
            (1538..=1560).contains(&w.end_tick),
            "end {} should be near 1540 (+rolling lag)",
            w.end_tick
        );
    }

    #[test]
    fn short_blip_ignored_by_t_delta() {
        // 1.2 s burst: a window forms but fails the significance test.
        let day = synthetic_day(8, 3000, Some((1500, 1506, 2.5)), 3);
        let run = run_md_over_day(&day, &(0..8).collect::<Vec<_>>(), 5.0, fast_params()).unwrap();
        let sig = run.significant_windows(fast_params().t_delta_ticks(5.0));
        assert!(sig.is_empty(), "blip wrongly significant: {sig:?}");
    }

    #[test]
    fn st_scales_with_stream_count() {
        let day = synthetic_day(8, 600, None, 4);
        let run8 = run_md_over_day(&day, &(0..8).collect::<Vec<_>>(), 5.0, fast_params()).unwrap();
        let run2 = run_md_over_day(&day, &[0, 1], 5.0, fast_params()).unwrap();
        let mean8 = fadewich_stats::descriptive::mean(&run8.st_series[200..].to_vec());
        let mean2 = fadewich_stats::descriptive::mean(&run2.st_series[200..].to_vec());
        assert!(
            (mean8 / mean2 - 4.0).abs() < 0.5,
            "sum of stds should scale ~4x: {mean8} vs {mean2}"
        );
    }

    #[test]
    fn profile_updates_follow_slow_drift() {
        // Noise sd ramps slowly from 1.0 to 1.6 over the day; the
        // adaptive profile must avoid a permanent anomaly state.
        let mut rng = Rng::seed_from_u64(5);
        let n_ticks = 20_000;
        let mut day = DayTrace::with_capacity(4, n_ticks);
        let mut row = vec![0.0f64; 4];
        for t in 0..n_ticks {
            let sd = 1.0 + 0.6 * t as f64 / n_ticks as f64;
            for r in row.iter_mut() {
                *r = -50.0 + rng.normal() * sd;
            }
            day.push_row(&row);
        }
        let run = run_md_over_day(&day, &[0, 1, 2, 3], 5.0, fast_params()).unwrap();
        let anomalous_late = run.st_series[15_000..]
            .iter()
            .zip(&run.threshold_series[15_000..])
            .filter(|(st, ub)| st >= ub)
            .count();
        let frac = anomalous_late as f64 / 5000.0;
        assert!(frac < 0.1, "drift not absorbed: {frac} anomalous late");
    }

    #[test]
    fn threshold_is_above_profile_bulk() {
        let day = synthetic_day(4, 1000, None, 6);
        let run = run_md_over_day(&day, &[0, 1, 2, 3], 5.0, fast_params()).unwrap();
        let ub = *run.threshold_series.last().unwrap();
        let bulk: Vec<f64> = run.st_series[200..].to_vec();
        let above = bulk.iter().filter(|&&s| s >= ub).count() as f64 / bulk.len() as f64;
        assert!(above < 0.05, "fraction above threshold = {above}");
    }

    #[test]
    fn online_and_offline_agree() {
        let day = synthetic_day(4, 800, Some((400, 430, 2.0)), 7);
        let streams = [0usize, 1, 2, 3];
        let offline = run_md_over_day(&day, &streams, 5.0, fast_params()).unwrap();
        let mut md = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mut windows = Vec::new();
        for tick in 0..day.n_ticks() {
            let row: Vec<f64> = streams.iter().map(|&s| day.sample(tick, s)).collect();
            if let Some(w) = md.step(tick, &row).closed_window {
                windows.push(w);
            }
        }
        if let Some(w) = md.finish(day.n_ticks() - 1) {
            windows.push(w);
        }
        assert_eq!(windows, offline.windows);
    }

    #[test]
    fn profile_recovers_from_step_change() {
        // Noise sd jumps 0.3 -> 3.0 at mid-day: Algorithm 1 alone would
        // flag everything anomalous forever; the rejected-batch escape
        // hatch re-learns the profile.
        let mut rng = Rng::seed_from_u64(11);
        let n_ticks = 20_000;
        let mut day = DayTrace::with_capacity(4, n_ticks);
        let mut row = vec![0.0f64; 4];
        for t in 0..n_ticks {
            let sd = if t < 8_000 { 0.3 } else { 3.0 };
            for r in row.iter_mut() {
                *r = -50.0 + rng.normal() * sd;
            }
            day.push_row(&row);
        }
        let run = run_md_over_day(&day, &[0, 1, 2, 3], 5.0, fast_params()).unwrap();
        let late_anomalous = run.st_series[16_000..]
            .iter()
            .zip(&run.threshold_series[16_000..])
            .filter(|(s, ub)| s >= ub)
            .count();
        let frac = late_anomalous as f64 / 4000.0;
        assert!(frac < 0.2, "step change not absorbed: {frac} anomalous late");
    }

    #[test]
    fn all_false_mask_is_bit_identical_to_step() {
        let day = synthetic_day(4, 800, Some((400, 430, 2.0)), 8);
        let mut plain = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mut masked = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mask = vec![false; 4];
        for tick in 0..day.n_ticks() {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            let a = plain.step(tick, &row);
            let b = masked.step_masked(tick, &row, &mask);
            assert_eq!(a, b, "diverged at tick {tick}");
        }
    }

    #[test]
    fn masked_streams_rescale_st() {
        // On i.i.d. streams, masking half of them should leave the
        // rescaled s_t near the unmasked value, not halve it.
        let day = synthetic_day(4, 600, None, 9);
        let mut md = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        for tick in 0..599 {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            md.step(tick, &row);
        }
        let row: Vec<f64> = (0..4).map(|s| day.sample(599, s)).collect();
        let mut fork = md.clone();
        let full = md.step(599, &row).st;
        let partial = fork.step_masked(599, &row, &[false, true, false, true]).st;
        assert!(
            (partial / full - 1.0).abs() < 0.25,
            "rescaled st {partial} should be near unmasked {full}"
        );
    }

    #[test]
    fn fully_masked_tick_is_quiet_and_skips_profile() {
        let day = synthetic_day(2, 600, None, 10);
        let mut md = MovementDetector::new(2, 5.0, fast_params()).unwrap();
        for tick in 0..600 {
            let row: Vec<f64> = (0..2).map(|s| day.sample(tick, s)).collect();
            md.step(tick, &row);
        }
        let before = md.profile_values().len();
        let v = md.step_masked(600, &[0.0, 0.0], &[true, true]);
        assert!(!v.anomalous);
        assert_eq!(v.st, 0.0);
        assert_eq!(md.profile_values().len(), before, "masked tick fed the profile");
    }

    #[test]
    fn snapshot_restore_resumes_detection_without_init_phase() {
        let day = synthetic_day(4, 1200, None, 12);
        let mut md = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        for tick in 0..1200 {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            md.step(tick, &row);
        }
        let snap = md.snapshot();
        assert!(snap.threshold.is_some());
        assert_eq!(snap.values, md.profile_values());

        let restored =
            MovementDetector::with_snapshot(4, 5.0, fast_params(), snap.clone()).unwrap();
        assert_eq!(restored.threshold(), snap.threshold);
        assert_eq!(restored.profile_values(), &snap.values[..]);
        // The threshold is live immediately after rolling-window warmup:
        // the restored detector never enters the init-collection branch,
        // so its profile length stays fixed until a batch update.
        let mut restored = restored;
        let before = restored.profile_values().len();
        for tick in 0..60 {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            restored.step(tick, &row);
        }
        assert_eq!(restored.profile_values().len(), before);
    }

    #[test]
    fn runtime_state_restore_continues_bit_identically() {
        // Capture mid-day — after the threshold is live, mid-batch, and
        // with a masked tick mixed in — and check every subsequent
        // verdict is bit-identical between the original detector and a
        // restored clone.
        let day = synthetic_day(4, 2400, Some((1400, 1460, 2.0)), 13);
        let mut md = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let cut = 1000;
        for tick in 0..cut {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            if tick % 97 == 0 {
                md.step_masked(tick, &row, &[false, true, false, false]);
            } else {
                md.step(tick, &row);
            }
        }
        let state = md.runtime_state();
        let mut restored =
            MovementDetector::from_runtime_state(4, 5.0, fast_params(), &state).unwrap();
        assert_eq!(restored.runtime_state(), state, "round trip changed the state");
        for tick in cut..day.n_ticks() {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            let (a, b) = if tick % 97 == 0 {
                let mask = [false, true, false, false];
                (md.step_masked(tick, &row, &mask), restored.step_masked(tick, &row, &mask))
            } else {
                (md.step(tick, &row), restored.step(tick, &row))
            };
            assert_eq!(a.st.to_bits(), b.st.to_bits(), "s_t diverged at tick {tick}");
            assert_eq!(a, b, "verdict diverged at tick {tick}");
            assert_eq!(
                md.threshold().map(f64::to_bits),
                restored.threshold().map(f64::to_bits),
                "threshold diverged at tick {tick}"
            );
        }
        assert_eq!(md.finish(day.n_ticks() - 1), restored.finish(day.n_ticks() - 1));
    }

    #[test]
    fn runtime_state_restore_mid_init_phase_continues_identically() {
        // A crash before the threshold exists must resume the
        // installation-time collection exactly where it stopped.
        let day = synthetic_day(4, 400, None, 14);
        let mut md = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        for tick in 0..80 {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            md.step(tick, &row);
        }
        let state = md.runtime_state();
        assert!(state.snapshot.threshold.is_none(), "still collecting");
        let mut restored =
            MovementDetector::from_runtime_state(4, 5.0, fast_params(), &state).unwrap();
        for tick in 80..day.n_ticks() {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            assert_eq!(md.step(tick, &row), restored.step(tick, &row), "tick {tick}");
        }
        assert_eq!(
            md.threshold().map(f64::to_bits),
            restored.threshold().map(f64::to_bits)
        );
    }

    #[test]
    fn bad_runtime_states_rejected() {
        let p = fast_params();
        let mut md = MovementDetector::new(4, 5.0, p).unwrap();
        let day = synthetic_day(4, 600, None, 15);
        for tick in 0..600 {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            md.step(tick, &row);
        }
        let good = md.runtime_state();
        assert!(MovementDetector::from_runtime_state(4, 5.0, p, &good).is_ok());

        // Stream-count mismatch.
        assert!(MovementDetector::from_runtime_state(3, 5.0, p, &good).is_err());
        // Window capacity disagrees with params (different tick rate).
        assert!(MovementDetector::from_runtime_state(4, 10.0, p, &good).is_err());
        // Queue that should already have flushed.
        let mut bad = good.clone();
        bad.queue = vec![1.0; p.batch_size];
        assert!(MovementDetector::from_runtime_state(4, 5.0, p, &bad).is_err());
        // Non-finite queue value.
        let mut bad = good.clone();
        bad.queue = vec![f64::NAN];
        assert!(MovementDetector::from_runtime_state(4, 5.0, p, &bad).is_err());
        // Anomalous count exceeding the queue.
        let mut bad = good.clone();
        bad.queue_anomalous = bad.queue.len() + 1;
        assert!(MovementDetector::from_runtime_state(4, 5.0, p, &bad).is_err());
        // Tracker hangover disagreeing with params.
        let mut bad = good.clone();
        bad.tracker.hangover_ticks += 1;
        assert!(MovementDetector::from_runtime_state(4, 5.0, p, &bad).is_err());
    }

    #[test]
    fn bad_snapshots_rejected() {
        let p = fast_params();
        let snap = MdSnapshot { values: vec![1.0; p.profile_capacity + 1], threshold: None };
        assert!(MovementDetector::with_snapshot(4, 5.0, p, snap).is_err());
        let snap = MdSnapshot { values: vec![1.0, f64::NAN], threshold: None };
        assert!(MovementDetector::with_snapshot(4, 5.0, p, snap).is_err());
        let snap = MdSnapshot { values: vec![1.0], threshold: Some(f64::INFINITY) };
        assert!(MovementDetector::with_snapshot(4, 5.0, p, snap).is_err());
        let snap = MdSnapshot { values: vec![], threshold: Some(2.0) };
        assert!(MovementDetector::with_snapshot(4, 5.0, p, snap).is_err());
    }

    #[test]
    fn reference_and_fast_banks_are_bit_identical() {
        // The scalar reference bank against the default SoA bank over
        // a day with a burst, masked ticks, and a mid-stream mode flip
        // that must convert the live state losslessly.
        let day = synthetic_day(4, 2400, Some((1400, 1460, 2.0)), 21);
        let mut fast = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mut reference = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        reference.set_reference_paths(true);
        for tick in 0..day.n_ticks() {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            let (a, b) = if tick % 97 == 0 {
                let mask = [false, true, false, false];
                (fast.step_masked(tick, &row, &mask), reference.step_masked(tick, &row, &mask))
            } else {
                (fast.step(tick, &row), reference.step(tick, &row))
            };
            assert_eq!(a.st.to_bits(), b.st.to_bits(), "s_t diverged at tick {tick}");
            assert_eq!(a, b, "verdict diverged at tick {tick}");
            if tick == 1200 {
                // Swap banks on both detectors mid-stream.
                fast.set_reference_paths(true);
                reference.set_reference_paths(false);
            }
        }
        assert_eq!(fast.runtime_state(), reference.runtime_state());
    }

    #[test]
    fn step_batch_matches_per_tick_step() {
        let day = synthetic_day(4, 900, Some((500, 540, 2.0)), 22);
        let mut per_tick = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mut batched = MovementDetector::new(4, 5.0, fast_params()).unwrap();
        let mut expected = Vec::new();
        let mut flat = Vec::new();
        for tick in 0..day.n_ticks() {
            let row: Vec<f64> = (0..4).map(|s| day.sample(tick, s)).collect();
            expected.push(per_tick.step(tick, &row));
            flat.extend_from_slice(&row);
        }
        let mut got = Vec::new();
        // Uneven block sizes, including a zero-length block.
        let mut tick = 0usize;
        for block in [300usize, 0, 128, 472] {
            let start = tick * 4;
            batched.step_batch(tick, &flat[start..start + block * 4], &mut got);
            tick += block;
        }
        assert_eq!(tick, day.n_ticks());
        assert_eq!(got.len(), expected.len());
        for (t, (a, b)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(a.st.to_bits(), b.st.to_bits(), "tick {t}");
            assert_eq!(a, b, "tick {t}");
        }
    }

    #[test]
    fn construction_errors() {
        assert!(MovementDetector::new(0, 5.0, FadewichParams::default()).is_err());
        assert!(MovementDetector::new(4, 0.0, FadewichParams::default()).is_err());
        let bad = FadewichParams { tau: 2.0, ..Default::default() };
        assert!(MovementDetector::new(4, 5.0, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "stream count mismatch")]
    fn wrong_row_width_panics() {
        let mut md = MovementDetector::new(4, 5.0, FadewichParams::default()).unwrap();
        md.step(0, &[1.0, 2.0]);
    }
}
