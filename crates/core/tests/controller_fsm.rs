//! FSM tests for the FADEWICH controller (paper §IV-F/G, Fig. 4).
//!
//! These exercise the control automaton through its public API:
//!
//! - **Rule 1** uses the *corrected* idle-set membership `c_i ∈ S(t∆)`
//!   (the paper's Table I prints `∉`, an evident typo — see DESIGN.md):
//!   the predicted workstation is deauthenticated only if its user has
//!   been idle for the whole window.
//! - **Rule 2** applies per tick while the automaton is Noisy, placing
//!   idle workstations into alert state, escalating to screen saver
//!   and delayed deauthentication.
//! - The controller **never deauthenticates an active workstation**,
//!   no matter how the classifier labels the window.

use fadewich_core::config::FadewichParams;
use fadewich_core::controller::{Action, ActionKind, Controller, SystemState};
use fadewich_core::features::{extract_features, TrainingSample};
use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_officesim::{DayTrace, InputTrace};
use fadewich_stats::rng::Rng;

const N_STREAMS: usize = 4;
const TICK_HZ: f64 = 5.0;

/// A classifier trained on the same synthetic distributions the tests
/// generate: quiet windows (noise sd 0.6) are class 0 ("entered"),
/// burst windows (sd 4.0) are class 1 ("left w1"). Training from the
/// true generating process makes Rule 1's prediction deterministic.
fn fixed_re() -> RadioEnvironment {
    let mut rng = Rng::seed_from_u64(1);
    let params = FadewichParams::default();
    let mut samples = Vec::new();
    for i in 0..30 {
        let hot = i % 2 == 1;
        let sd = if hot { 4.0 } else { 0.6 };
        let mut day = DayTrace::with_capacity(N_STREAMS, 30);
        for _ in 0..30 {
            let row: Vec<f64> = (0..N_STREAMS).map(|_| -50.0 + rng.normal() * sd).collect();
            day.push_row(&row);
        }
        let streams: Vec<usize> = (0..N_STREAMS).collect();
        let features = extract_features(&day, &streams, 0, TICK_HZ, &params);
        samples.push(TrainingSample { features, label: usize::from(hot) });
    }
    RadioEnvironment::train(&samples, None, &mut rng).unwrap()
}

fn test_params() -> FadewichParams {
    FadewichParams { profile_init_s: 30.0, ..Default::default() }
}

/// Runs the controller over synthetic streams: quiet noise, with a
/// strong fluctuation burst on every stream for ticks in
/// `burst.0..burst.1`. Returns the action log and the per-tick state.
fn run_ctl(
    inputs: &InputTrace,
    burst: Option<(usize, usize)>,
    n_ticks: usize,
) -> (Vec<Action>, Vec<SystemState>) {
    let re = fixed_re();
    let kma = Kma::new(inputs);
    let mut ctl = Controller::new(N_STREAMS, TICK_HZ, test_params(), &re, kma).unwrap();
    let mut rng = Rng::seed_from_u64(7);
    let mut states = Vec::with_capacity(n_ticks);
    for tick in 0..n_ticks {
        let noisy = burst.is_some_and(|(a, b)| tick >= a && tick < b);
        let sd = if noisy { 4.0 } else { 0.6 };
        let row: Vec<f64> = (0..N_STREAMS).map(|_| -50.0 + rng.normal() * sd).collect();
        ctl.step(tick, &row);
        states.push(ctl.state());
    }
    (ctl.actions().to_vec(), states)
}

/// All-day typing for one workstation: one input every 3 s.
fn busy(n_seconds: usize) -> Vec<f64> {
    (0..n_seconds).step_by(3).map(|s| s as f64).collect()
}

/// w1's user types until 120 s and then leaves; w2/w3 type all day.
fn departure_inputs(n_seconds: usize) -> InputTrace {
    let all = busy(n_seconds);
    let w1: Vec<f64> = all.iter().copied().filter(|&s| s <= 120.0).collect();
    InputTrace::from_times(vec![w1, all.clone(), all])
}

#[test]
fn rule1_requires_idle_set_membership() {
    // Identical RF evidence — a burst the classifier labels "left w1" —
    // under two KMA histories. Only the history where w1's user is
    // actually idle for the whole window may produce a Rule 1 deauth:
    // the corrected condition is c_i ∈ S(t∆), not ∉.
    let burst = Some((600, 640));

    let idle = departure_inputs(400);
    let (actions_idle, _) = run_ctl(&idle, burst, 800);
    assert!(
        actions_idle
            .iter()
            .any(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { workstation: 0 })),
        "idle w1 must be deauthenticated by Rule 1: {actions_idle:?}"
    );

    let all = busy(400);
    let active = InputTrace::from_times(vec![all.clone(), all.clone(), all]);
    let (actions_active, _) = run_ctl(&active, burst, 800);
    assert!(
        !actions_active.iter().any(|a| a.kind.is_deauth()),
        "w1's user kept typing: c_1 ∉ S(t∆), so Rule 1 must not fire: {actions_active:?}"
    );
}

#[test]
fn rule1_fires_at_most_once_per_window() {
    // A long window (20 s). Rule 1 triggers exactly when dW_t reaches
    // t∆ and is latched until the window closes — not re-applied on
    // every subsequent Noisy tick.
    let inputs = departure_inputs(400);
    let (actions, _) = run_ctl(&inputs, Some((600, 700)), 900);
    let rule1: Vec<&Action> = actions
        .iter()
        .filter(|a| matches!(a.kind, ActionKind::DeauthenticateRule1 { .. }))
        .collect();
    assert_eq!(rule1.len(), 1, "Rule 1 must fire once per window: {actions:?}");
    // And it fires ~t∆ after the window opens, not at its end.
    let dt = rule1[0].t - 120.0;
    assert!((3.0..=7.0).contains(&dt), "Rule 1 at +{dt} s, expected ≈ t∆");
}

#[test]
fn fsm_walks_quiet_noisy_quiet() {
    let inputs = departure_inputs(400);
    let burst = (600, 660);
    let (_, states) = run_ctl(&inputs, Some(burst), 900);

    // Before the burst there is no variation window: always Quiet.
    assert!(
        states[..burst.0].iter().all(|&s| s == SystemState::Quiet),
        "controller left Quiet before any window"
    );
    // The window must carry the FSM into Noisy once it reaches t∆.
    assert!(
        states[burst.0..burst.1].contains(&SystemState::Noisy),
        "long burst never reached Noisy"
    );
    // After the burst ends (plus rolling-std decay and hangover) the
    // window closes and the FSM returns to Quiet — and stays there.
    let slack = burst.1 + 40;
    assert!(
        states[slack..].iter().all(|&s| s == SystemState::Quiet),
        "controller failed to return to Quiet after the window closed"
    );
}

#[test]
fn rule2_alerts_only_in_noisy_state() {
    let inputs = departure_inputs(400);
    let (actions, states) = run_ctl(&inputs, Some((600, 660)), 900);
    let alerts: Vec<&Action> = actions
        .iter()
        .filter(|a| matches!(a.kind, ActionKind::AlertEntered { .. }))
        .collect();
    assert!(!alerts.is_empty(), "a 12 s window must alert idle workstations");
    for a in &alerts {
        let tick = (a.t * TICK_HZ).round() as usize;
        assert_eq!(
            states[tick],
            SystemState::Noisy,
            "AlertEntered at t={} outside Noisy state",
            a.t
        );
    }
}

#[test]
fn rule2_escalates_alert_to_screensaver_then_deauth() {
    // w2's user stops typing at 118 s and never returns; w1/w3 keep
    // typing. The burst window (120..140 s) alerts w2; with nobody at
    // the keyboard the alert escalates: screen saver after t_ID idle,
    // deauthentication t_ss later — all well before the 300 s timeout.
    let all = busy(400);
    let w2: Vec<f64> = all.iter().copied().filter(|&s| s <= 118.0).collect();
    let inputs = InputTrace::from_times(vec![all.clone(), w2, all]);
    let (actions, _) = run_ctl(&inputs, Some((600, 700)), 900);

    let find = |pred: fn(&ActionKind) -> bool| -> Option<f64> {
        actions.iter().find(|a| pred(&a.kind)).map(|a| a.t)
    };
    let alert = find(|k| matches!(k, ActionKind::AlertEntered { workstation: 1 }))
        .expect("idle w2 must enter alert state");
    let saver = find(|k| matches!(k, ActionKind::ScreenSaverOn { workstation: 1 }))
        .expect("unattended alert must start the screen saver");
    let deauth = find(|k| matches!(k, ActionKind::DeauthenticateAlert { workstation: 1 }))
        .expect("unattended screen saver must deauthenticate");
    assert!(alert <= saver && saver <= deauth, "alert path out of order");
    let p = test_params();
    // The whole path completes within the alert budget (t_ID + t_ss)
    // of the moment the user went idle — far below the timeout T.
    assert!(
        deauth <= 118.0 + p.t_id_s + p.t_ss_s + 2.0,
        "alert deauth at {deauth}, expected ≈ 118 + t_ID + t_ss"
    );
    assert!(deauth < 118.0 + p.timeout_s, "alert path must beat the baseline timeout");
}

#[test]
fn input_cancels_alert_before_escalation() {
    // w2/w3 type constantly; their sub-second pauses put them in and
    // out of alert during a long window but never further.
    let inputs = departure_inputs(400);
    let (actions, _) = run_ctl(&inputs, Some((600, 660)), 900);
    assert!(actions
        .iter()
        .any(|a| matches!(a.kind, ActionKind::AlertCancelled { workstation: 1 | 2 })));
    assert!(
        !actions
            .iter()
            .any(|a| matches!(a.kind, ActionKind::ScreenSaverOn { workstation: 1 | 2 })),
        "active users' alerts must be cancelled by input, not escalate: {actions:?}"
    );
}

#[test]
fn never_deauthenticates_an_active_workstation() {
    // The global invariant behind both rules: at the moment of any
    // deauthentication the workstation's user had been idle at least
    // t∆ (Rule 1), t_ID + t_ss (alert path) or T (timeout) — never
    // actively typing. Checked against KMA on several window shapes.
    let p = test_params();
    let inputs = departure_inputs(2000);
    let kma = Kma::new(&inputs);
    for burst in [None, Some((600, 640)), Some((600, 700)), Some((900, 1100))] {
        let (actions, _) = run_ctl(&inputs, burst, 2400);
        for a in actions.iter().filter(|a| a.kind.is_deauth()) {
            let idle = kma.idle_time(a.kind.workstation(), a.t);
            assert!(
                idle >= p.t_delta_s - 0.2,
                "burst {burst:?}: deauthenticated w{} at t={} with only {idle:.1} s idle",
                a.kind.workstation() + 1,
                a.t
            );
        }
    }
}

#[test]
fn step_batch_is_bit_identical_to_per_tick_stepping() {
    // The streaming engine's batched ingest path: MD runs ahead over a
    // block while the FSM replays per tick against captured window
    // readings. Every action (kind, workstation, timestamp bits) and
    // the final FSM state must match per-tick stepping exactly, for
    // block boundaries landing before/inside/after windows.
    let re = fixed_re();
    let inputs = departure_inputs(2000);
    let n_ticks = 2400usize;
    let mut rng = Rng::seed_from_u64(7);
    let rows: Vec<f64> = (0..n_ticks * N_STREAMS)
        .map(|i| {
            let tick = i / N_STREAMS;
            let noisy = (600..700).contains(&tick) || (1400..1460).contains(&tick);
            let sd = if noisy { 4.0 } else { 0.6 };
            -50.0 + rng.normal() * sd
        })
        .collect();

    let mut reference = Controller::new(N_STREAMS, TICK_HZ, test_params(), &re, Kma::new(&inputs))
        .unwrap();
    let mut ref_counts = Vec::with_capacity(n_ticks);
    for (tick, row) in rows.chunks_exact(N_STREAMS).enumerate() {
        ref_counts.push(reference.step(tick, row));
    }

    for block in [1usize, 2, 7, 64, 601, n_ticks] {
        let mut batched =
            Controller::new(N_STREAMS, TICK_HZ, test_params(), &re, Kma::new(&inputs)).unwrap();
        let mut counts = Vec::with_capacity(n_ticks);
        let mut tick = 0usize;
        for chunk in rows.chunks(block * N_STREAMS) {
            let emitted = batched.step_batch(tick, chunk, &mut counts);
            let expected: usize =
                ref_counts[tick..tick + chunk.len() / N_STREAMS].iter().sum();
            assert_eq!(emitted, expected, "block {block} at tick {tick}");
            tick += chunk.len() / N_STREAMS;
        }
        assert_eq!(counts, ref_counts, "per-tick action counts, block {block}");
        assert_eq!(batched.state(), reference.state(), "block {block}");
        assert_eq!(batched.actions().len(), reference.actions().len(), "block {block}");
        for (a, b) in batched.actions().iter().zip(reference.actions()) {
            assert_eq!(a.kind, b.kind, "block {block}");
            assert_eq!(a.t.to_bits(), b.t.to_bits(), "block {block}");
        }
    }
    assert!(
        reference.actions().iter().any(|a| a.kind.is_deauth()),
        "fixture must exercise a deauthentication"
    );
}
