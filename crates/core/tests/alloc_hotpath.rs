//! Allocation pin for the untraced per-tick hot path.
//!
//! This file is its own test binary on purpose: it registers the
//! testkit counting allocator process-wide and holds exactly one
//! test, so no sibling test thread can pollute the per-tick deltas.
//!
//! The claim under test: once the MD profile is initialized, a quiet
//! untraced [`Controller::step`] allocates **nothing** at steady
//! state — the only allowed heap traffic is the Algorithm-1 batch
//! flush every `batch_size` ticks (and any KDE refit it triggers).

use fadewich_core::config::FadewichParams;
use fadewich_core::controller::Controller;
use fadewich_core::features::{extract_features, TrainingSample};
use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_officesim::{DayTrace, InputTrace};
use fadewich_stats::rng::Rng;
use fadewich_testkit::bench::{alloc_counts, black_box, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const N_STREAMS: usize = 4;
const TICK_HZ: f64 = 5.0;

/// A tiny real classifier, trained the same way the runtime fixtures
/// train theirs: seeded quiet/burst windows through the feature layer.
fn trained_re(rng: &mut Rng) -> RadioEnvironment {
    let params = FadewichParams::default();
    let mut samples = Vec::new();
    for i in 0..24 {
        let sd = if i % 2 == 1 { 4.0 } else { 0.6 };
        let mut day = DayTrace::with_capacity(N_STREAMS, 30);
        for _ in 0..30 {
            let row: Vec<f64> = (0..N_STREAMS).map(|_| -50.0 + rng.normal() * sd).collect();
            day.push_row(&row);
        }
        let streams: Vec<usize> = (0..N_STREAMS).collect();
        let features = extract_features(&day, &streams, 0, TICK_HZ, &params);
        samples.push(TrainingSample { features, label: i % 2 });
    }
    RadioEnvironment::train(&samples, None, rng).expect("seeded training set is valid")
}

#[test]
fn quiet_untraced_ticks_do_not_allocate_at_steady_state() {
    // Sanity: the counting allocator really is registered here.
    let probe = alloc_counts();
    black_box(Box::new(0x5EEDu64));
    assert!(
        alloc_counts().since(probe).calls > 0,
        "counting allocator is not registered in this test binary"
    );

    let mut rng = Rng::seed_from_u64(0xA110C);
    let re = trained_re(&mut rng);
    let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
    let batch_size = params.batch_size;
    let busy: Vec<f64> = (0..2_000).step_by(3).map(|s| s as f64).collect();
    let inputs = InputTrace::from_times(vec![busy.clone(), busy]);
    let kma = Kma::new(&inputs);
    let mut ctl = Controller::new(N_STREAMS, TICK_HZ, params, &re, kma).unwrap();

    // Quiet RSSI only: the claim is about the steady-state loop, not
    // window bookkeeping (the fastpath pin suite covers busy days).
    let warm = 600usize;
    let measured = 300usize;
    let rows: Vec<f64> =
        (0..(warm + measured) * N_STREAMS).map(|_| -50.0 + rng.normal() * 0.6).collect();
    for tick in 0..warm {
        ctl.step(tick, &rows[tick * N_STREAMS..(tick + 1) * N_STREAMS]);
    }

    let mut zero_ticks = 0usize;
    let mut dirty = Vec::new();
    let before = alloc_counts();
    for tick in warm..warm + measured {
        let t0 = alloc_counts();
        ctl.step(tick, &rows[tick * N_STREAMS..(tick + 1) * N_STREAMS]);
        let delta = alloc_counts().since(t0);
        if delta.calls == 0 {
            zero_ticks += 1;
        } else {
            dirty.push((tick, delta.calls));
        }
    }
    let total = alloc_counts().since(before);

    // Every allocating tick must be an Algorithm-1 flush, and with
    // period `batch_size` there are exactly measured/batch_size of
    // those in the measured span (the phase depends on when profile
    // init finished, so only the spacing is pinned).
    let flushes = measured / batch_size;
    assert!(
        zero_ticks >= measured - flushes,
        "{} of {measured} quiet ticks allocated (expected at most {flushes} flush ticks): {dirty:?}",
        measured - zero_ticks
    );
    for pair in dirty.windows(2) {
        assert_eq!(
            pair[1].0 - pair[0].0,
            batch_size,
            "allocating ticks are not spaced one batch apart: {dirty:?}"
        );
    }
    assert!(
        total.calls <= (flushes as u64) * 16,
        "flush ticks allocated more than expected: {} calls, {} bytes",
        total.calls,
        total.bytes
    );
}
