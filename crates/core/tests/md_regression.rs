//! Regression tests pinning Movement Detection to Algorithm 1 of the
//! paper (§IV-C):
//!
//! - the anomaly threshold `ub` is the `(100 − α)`-th percentile of the
//!   KDE-smoothed normal profile — not of the raw samples, and not a
//!   mean-plus-k-sigma rule;
//! - a batch refreshes the profile only when its anomalous fraction is
//!   below `τ` (with the documented `max_rejected_batches` escape for
//!   abrupt environment shifts);
//! - variation windows shorter than `t∆` are suppressed, with the
//!   boundary (exactly `t∆` ticks) included.

use fadewich_core::config::FadewichParams;
use fadewich_core::md::{run_md_over_day, MdRun, MovementDetector};
use fadewich_core::windows::{significant_windows, VariationWindow};
use fadewich_officesim::DayTrace;
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::rng::Rng;

const TICK_HZ: f64 = 5.0;

fn quiet_row(rng: &mut Rng, n: usize, sd: f64) -> Vec<f64> {
    (0..n).map(|_| -50.0 + rng.normal() * sd).collect()
}

/// Steps `md` through `ticks` rows of noise at `sd`, continuing the
/// tick counter from `start`.
fn feed(md: &mut MovementDetector, rng: &mut Rng, start: usize, ticks: usize, sd: f64) -> usize {
    for tick in start..start + ticks {
        let row = quiet_row(rng, md.n_streams(), sd);
        md.step(tick, &row);
    }
    start + ticks
}

#[test]
fn threshold_is_kde_percentile_of_profile() {
    // After initialization the detector's threshold must equal the
    // (100 − α)-th percentile of the KDE fitted over its own profile.
    let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
    let mut md = MovementDetector::new(4, TICK_HZ, params).unwrap();
    let mut rng = Rng::seed_from_u64(21);
    feed(&mut md, &mut rng, 0, 400, 1.0);
    let ub = md.threshold().expect("threshold initialized after profile collection");
    let kde = GaussianKde::fit(md.profile_values()).unwrap();
    let expected = kde.quantile(1.0 - params.alpha / 100.0);
    assert!(
        (ub - expected).abs() < 1e-9,
        "threshold {ub} != KDE {}th percentile {expected}",
        100.0 - params.alpha
    );
}

#[test]
fn looser_alpha_lowers_the_threshold() {
    // α is the percentage of the normal profile treated as anomalous:
    // α = 5 cuts at the 95th percentile, α = 0.5 at the 99.5th, so the
    // same data must yield ub(α=5) < ub(α=0.5).
    let mut ubs = Vec::new();
    for alpha in [5.0, 0.5] {
        let params =
            FadewichParams { alpha, profile_init_s: 30.0, ..Default::default() };
        let mut md = MovementDetector::new(4, TICK_HZ, params).unwrap();
        let mut rng = Rng::seed_from_u64(22);
        feed(&mut md, &mut rng, 0, 400, 1.0);
        ubs.push(md.threshold().unwrap());
    }
    assert!(ubs[0] < ubs[1], "ub(alpha=5)={} must be < ub(alpha=0.5)={}", ubs[0], ubs[1]);
}

#[test]
fn profile_refreshes_only_from_calm_batches() {
    // Algorithm 1 queues every s_t and, at each full batch, keeps it
    // only if the anomalous fraction is < τ. A movement burst must
    // therefore leave the profile untouched, while quiet periods keep
    // feeding it.
    let params = FadewichParams {
        profile_init_s: 30.0,
        batch_size: 20,
        max_rejected_batches: 10_000, // isolate the τ rule from the escape hatch
        ..Default::default()
    };
    let mut md = MovementDetector::new(4, TICK_HZ, params).unwrap();
    let mut rng = Rng::seed_from_u64(23);

    // Quiet phase A: initialize and accept at least one batch.
    let mut tick = feed(&mut md, &mut rng, 0, 400, 1.0);
    assert!(md.threshold().is_some());
    let profile_after_quiet = md.profile_values().to_vec();

    // Burst phase B: strongly anomalous. Skip the first two batches
    // (they may straddle the phase boundary / rolling-std ramp); after
    // that every batch is ≥ τ anomalous and must be rejected.
    tick = feed(&mut md, &mut rng, tick, 2 * params.batch_size, 6.0);
    let profile_at_burst_interior = md.profile_values().to_vec();
    tick = feed(&mut md, &mut rng, tick, 4 * params.batch_size, 6.0);
    assert_eq!(
        md.profile_values(),
        profile_at_burst_interior,
        "anomalous batches must not refresh the profile"
    );

    // Quiet phase C: once the rolling stds decay, batches are calm
    // again and the profile resumes updating.
    feed(&mut md, &mut rng, tick, 400, 1.0);
    assert_ne!(
        md.profile_values(),
        profile_at_burst_interior,
        "calm batches must refresh the profile again"
    );
    // ... and the burst never contaminated it: every profile value
    // stays in the quiet regime's range.
    let quiet_max = profile_after_quiet.iter().cloned().fold(f64::MIN, f64::max);
    let new_max = md.profile_values().iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        new_max < quiet_max * 2.0,
        "burst-level s_t leaked into the profile: {new_max} vs quiet max {quiet_max}"
    );
}

#[test]
fn rejected_streak_escape_relearns_the_profile() {
    // A permanent environment shift makes every batch ≥ τ anomalous
    // against the stale profile: plain Algorithm 1 would deadlock in
    // the anomalous state. The max_rejected_batches escape re-learns
    // the profile from recent data; with the escape disabled the
    // deadlock is observable.
    let run_shift = |max_rejected: usize| -> f64 {
        let params = FadewichParams {
            profile_init_s: 30.0,
            batch_size: 20,
            max_rejected_batches: max_rejected,
            ..Default::default()
        };
        let mut rng = Rng::seed_from_u64(24);
        let n_ticks = 4000;
        let mut day = DayTrace::with_capacity(4, n_ticks);
        for t in 0..n_ticks {
            let sd = if t < 1000 { 0.3 } else { 3.0 };
            day.push_row(&quiet_row(&mut rng, 4, sd));
        }
        let run = run_md_over_day(&day, &[0, 1, 2, 3], TICK_HZ, params).unwrap();
        let late: Vec<bool> = run.st_series[3000..]
            .iter()
            .zip(&run.threshold_series[3000..])
            .map(|(s, ub)| s >= ub)
            .collect();
        late.iter().filter(|&&a| a).count() as f64 / late.len() as f64
    };

    let with_escape = run_shift(3);
    let without_escape = run_shift(10_000);
    assert!(
        with_escape < 0.2,
        "escape hatch failed to absorb the shift: {with_escape} anomalous late"
    );
    assert!(
        without_escape > 0.8,
        "without the escape the stale profile should stay anomalous: {without_escape}"
    );
}

#[test]
fn windows_shorter_than_t_delta_are_suppressed() {
    let params = FadewichParams::default();
    let t_delta = params.t_delta_ticks(TICK_HZ);
    assert!(t_delta > 2, "test requires a multi-tick t_delta");

    let short = VariationWindow { start_tick: 100, end_tick: 100 + t_delta - 2 };
    let boundary = VariationWindow { start_tick: 500, end_tick: 500 + t_delta - 1 };
    let long = VariationWindow { start_tick: 900, end_tick: 900 + 2 * t_delta };
    assert_eq!(short.duration_ticks(), t_delta - 1);
    assert_eq!(boundary.duration_ticks(), t_delta);

    let kept = significant_windows(&[short, boundary, long], t_delta);
    assert_eq!(
        kept,
        vec![boundary, long],
        "exactly-t∆ windows are significant; shorter ones are not"
    );

    // Same rule through MdRun's accessor.
    let run = MdRun {
        windows: vec![short, boundary, long],
        st_series: Vec::new(),
        threshold_series: Vec::new(),
    };
    assert_eq!(run.significant_windows(t_delta), vec![boundary, long]);
}

#[test]
fn short_blips_never_reach_significance_end_to_end() {
    // A 1 s burst (5 ticks < t∆ = 23 ticks) may open a window, but the
    // t∆ filter must drop it; a 8 s burst must survive.
    let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
    let t_delta = params.t_delta_ticks(TICK_HZ);
    for (burst_ticks, expect_sig) in [(5usize, false), (40usize, true)] {
        let mut rng = Rng::seed_from_u64(25);
        let n_ticks = 3000;
        let mut day = DayTrace::with_capacity(8, n_ticks);
        for t in 0..n_ticks {
            let sd = if (1500..1500 + burst_ticks).contains(&t) { 3.5 } else { 1.0 };
            day.push_row(&quiet_row(&mut rng, 8, sd));
        }
        let run = run_md_over_day(&day, &(0..8).collect::<Vec<_>>(), TICK_HZ, params).unwrap();
        let sig = run.significant_windows(t_delta);
        assert_eq!(
            !sig.is_empty(),
            expect_sig,
            "{burst_ticks}-tick burst: significant windows {sig:?}"
        );
    }
}
