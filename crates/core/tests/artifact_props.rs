//! Property tests for the versioned model-artifact codec.
//!
//! Mirrors the wire-codec corruption properties in
//! `crates/runtime/tests/proptests.rs`: (a) randomly trained models
//! survive save → load with bit-identical predictions, and (b) any
//! single-bit flip anywhere in the artifact is rejected at load.

use std::sync::OnceLock;

use fadewich_core::artifact::{FeatureSchema, ModelBundle};
use fadewich_core::auth::KeyTable;
use fadewich_core::config::FadewichParams;
use fadewich_core::md::{MdSnapshot, MovementDetector};
use fadewich_core::re::RadioEnvironment;
use fadewich_core::stream::ChannelKind;
use fadewich_stats::rng::Rng;
use fadewich_svm::{Kernel, MultiClassSvm, SmoParams};
use fadewich_testkit::prop::u64s;

/// Trains a small but fully random bundle: random stream/feature
/// layout, channel kinds (so both the v1 all-RSSI and the v2 mixed
/// encodings are exercised), class count, kernel, MD profile,
/// threshold, and — half the time — a per-sensor key table (forcing
/// the v3 encoding).
fn random_bundle(rng: &mut Rng) -> ModelBundle {
    let n_streams = 1 + rng.below(3);
    let features_per_stream = 1 + rng.below(3);
    let dim = n_streams * features_per_stream;
    let n_classes = 2 + rng.below(3);
    let kernel = if rng.bernoulli(0.5) {
        Kernel::Linear
    } else {
        Kernel::Rbf { gamma: 0.1 + rng.f64() }
    };

    // Separable-ish clusters so tiny training sets still converge.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for label in 0..n_classes {
        for _ in 0..8 {
            let row: Vec<f64> = (0..dim)
                .map(|d| {
                    let center = if d % n_classes == label { 4.0 } else { -1.0 };
                    center + rng.normal() * 0.4
                })
                .collect();
            xs.push(row);
            ys.push(label);
        }
    }
    let svm = MultiClassSvm::train(&xs, &ys, kernel, SmoParams::default(), rng)
        .expect("separable clusters must train");

    let profile_len = rng.below(50);
    let values: Vec<f64> = (0..profile_len).map(|_| 6.0 + rng.normal()).collect();
    let threshold = if values.is_empty() || rng.bernoulli(0.2) {
        None
    } else {
        Some(9.0 + rng.f64())
    };
    let channels: Vec<ChannelKind> = (0..n_streams)
        .map(|_| {
            if rng.bernoulli(0.5) {
                ChannelKind::Rssi
            } else {
                ChannelKind::AmbientLight
            }
        })
        .collect();
    ModelBundle {
        params: FadewichParams::default(),
        schema: FeatureSchema {
            tick_hz: 5.0,
            stream_ids: (0..n_streams as u32).collect(),
            channels,
            features_per_stream,
        },
        md: MdSnapshot { values, threshold },
        re: RadioEnvironment::from_svm(svm),
        keys: if rng.bernoulli(0.5) {
            Some(KeyTable::derive(rng.below(1 << 30) as u64, 1 + rng.below(8) as u16))
        } else {
            None
        },
    }
}

/// One encoded bundle shared across the corruption property's cases
/// (training per flipped bit would dominate the runtime).
fn cached_encoding() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| random_bundle(&mut Rng::seed_from_u64(0xA27)).encode())
}

fadewich_testkit::property! {
    #[cases(24)]
    fn random_models_survive_save_load_with_identical_predictions(seed in u64s(0..1 << 48)) {
        let mut rng = Rng::seed_from_u64(seed);
        let bundle = random_bundle(&mut rng);
        let bytes = bundle.encode();
        let back = ModelBundle::decode(&bytes).expect("clean artifact must load");
        assert_eq!(back, bundle);
        // Canonical encoding: the decoded bundle re-encodes to the
        // exact same bytes.
        assert_eq!(back.encode(), bytes);
        // Bit-identical classification on random inputs.
        let dim = bundle.schema.n_features();
        for _ in 0..32 {
            let x: Vec<f64> = (0..dim).map(|_| rng.normal() * 4.0).collect();
            assert_eq!(back.re.classify(&x), bundle.re.classify(&x));
        }
        // The MD snapshot restores into a working detector.
        let md = MovementDetector::with_snapshot(
            bundle.schema.stream_ids.len(),
            bundle.schema.tick_hz,
            bundle.params,
            back.md,
        );
        assert!(md.is_ok(), "snapshot from a clean round-trip must restore: {md:?}");
    }

    #[cases(512)]
    fn any_single_bit_flip_is_rejected_at_load(seed in u64s(0..1 << 48)) {
        let clean = cached_encoding();
        let mut rng = Rng::seed_from_u64(seed);
        let byte = rng.below(clean.len());
        let bit = rng.below(8);
        let mut dirty = clean.clone();
        dirty[byte] ^= 1 << bit;
        assert!(
            ModelBundle::decode(&dirty).is_err(),
            "flip of byte {byte} bit {bit} slipped through"
        );
    }
}

/// The random property samples flips; this nails the guarantee down
/// exhaustively on bundles small enough to try every single bit — once
/// per encoding version (all-RSSI → v1, mixed channels → v2, keyed →
/// v3).
#[test]
fn every_single_bit_flip_in_a_small_artifact_is_rejected() {
    let mut rng = Rng::seed_from_u64(7);
    let mut bundle = random_bundle(&mut rng);
    bundle.md = MdSnapshot { values: vec![5.0, 6.0, 7.0], threshold: Some(8.0) };
    let n = bundle.schema.stream_ids.len();
    let layouts = [
        (vec![ChannelKind::Rssi; n], None),
        (
            (0..n)
                .map(|i| if i == 0 { ChannelKind::AmbientLight } else { ChannelKind::Rssi })
                .collect::<Vec<_>>(),
            None,
        ),
        (vec![ChannelKind::Rssi; n], Some(KeyTable::derive(0xD3B, 3))),
    ];
    for (channels, keys) in layouts {
        bundle.schema.channels = channels;
        bundle.keys = keys;
        let clean = bundle.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                assert!(
                    ModelBundle::decode(&dirty).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }
}
