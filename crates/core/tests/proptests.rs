//! Property-based tests of the FADEWICH core: variation windows and
//! detection matching invariants.

use fadewich_core::config::FadewichParams;
use fadewich_core::security::evaluate_detection;
use fadewich_core::windows::{significant_windows, VariationWindow, WindowTracker};
use fadewich_officesim::{EventKind, EventLog, MovementEvent};
use fadewich_testkit::prop::{bools, f64s, usizes, vecs};

fadewich_testkit::property! {
    fn windows_are_disjoint_ordered_and_anchored(
        pattern in vecs(bools(0.25), 10..600),
        hangover in usizes(1..6),
    ) {
        let mut tracker = WindowTracker::new(hangover);
        let mut windows = Vec::new();
        for (tick, &a) in pattern.iter().enumerate() {
            if let Some(w) = tracker.push(tick, a) {
                windows.push(w);
            }
        }
        if let Some(w) = tracker.finish(pattern.len() - 1) {
            windows.push(w);
        }
        for w in &windows {
            assert!(pattern[w.start_tick], "window must start anomalous");
            assert!(pattern[w.end_tick], "window must end anomalous");
            assert!(w.start_tick <= w.end_tick);
        }
        for pair in windows.windows(2) {
            assert!(pair[0].end_tick < pair[1].start_tick);
            // Gaps between windows exceed the hangover.
            assert!(pair[1].start_tick - pair[0].end_tick > hangover);
        }
        // Every anomalous tick is covered by some window.
        for (tick, &a) in pattern.iter().enumerate() {
            if a {
                assert!(
                    windows.iter().any(|w| w.start_tick <= tick && tick <= w.end_tick),
                    "anomalous tick {tick} not covered"
                );
            }
        }
    }

    fn significance_filter_is_a_filter(
        raw in vecs((usizes(0..1000), usizes(0..50)), 0..30),
        threshold in usizes(1..40),
    ) {
        // Build disjoint ordered windows from raw (start, extra) pairs.
        let mut tick = 0usize;
        let mut windows = Vec::new();
        for (gap, extra) in raw {
            let start = tick + gap + 1;
            let end = start + extra;
            windows.push(VariationWindow { start_tick: start, end_tick: end });
            tick = end + 1;
        }
        let sig = significant_windows(&windows, threshold);
        assert!(sig.len() <= windows.len());
        for w in &sig {
            assert!(w.duration_ticks() >= threshold);
            assert!(windows.contains(w));
        }
        for w in &windows {
            if w.duration_ticks() >= threshold {
                assert!(sig.contains(w));
            }
        }
    }

    fn detection_counts_are_conserved(
        event_starts in vecs(f64s(20.0..28_000.0), 1..20),
        window_starts in vecs(f64s(20.0..28_000.0), 0..25),
    ) {
        let events: EventLog = event_starts
            .iter()
            .map(|&t| MovementEvent {
                kind: EventKind::Leave { workstation: 0 },
                day: 0,
                t_start: t,
                t_proximity: t + 1.8,
                t_door: t + 6.0,
                t_end: t + 6.0,
            })
            .collect();
        let mut windows: Vec<VariationWindow> = window_starts
            .iter()
            .map(|&t| VariationWindow {
                start_tick: (t * 5.0) as usize,
                end_tick: (t * 5.0) as usize + 30,
            })
            .collect();
        windows.sort_by_key(|w| w.start_tick);
        windows.dedup_by_key(|w| w.start_tick);
        let params = FadewichParams::default();
        let out = evaluate_detection(&[windows.clone()], &events, 5.0, &params);
        // TP + FN = events; FP <= windows.
        assert_eq!(
            out.counts.true_positives + out.counts.false_negatives,
            events.len()
        );
        assert!(out.counts.false_positives <= windows.len());
        // Matched events really overlap their window's true window.
        for (ei, m) in out.matched.iter().enumerate() {
            if let Some((day, w)) = m {
                assert_eq!(*day, 0usize);
                let e = &events.events()[ei];
                let (lo, hi) = e.true_window(params.true_window_delta_s);
                assert!(w.overlaps_interval(lo, hi, 5.0));
            }
        }
    }
}
