//! Recorded RSSI traces.
//!
//! A [`Trace`] is the synthetic counterpart of the paper's five days of
//! logged sensor data: per day, a dense `[tick × stream]` matrix of
//! quantized RSSI samples (stored as `f32` — a 40-hour, 72-stream trace
//! is ~200 MB), together with the link identities needed to map streams
//! back onto the floor plan.

use fadewich_geometry::Segment;
use fadewich_rfchannel::LinkId;

/// What a recorded stream measures. The simulator's native tag — the
/// pipeline crates carry their own canonical `ChannelKind` (this crate
/// sits below them in the dependency graph) and convert from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// RSSI of one RF link (dBm) — every pre-fusion trace.
    Rssi,
    /// Desk illuminance of one workstation photosensor (lux).
    AmbientLight,
}

/// One day of recorded streams, row-major: `data[tick * n_streams + s]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DayTrace {
    n_streams: usize,
    n_ticks: usize,
    data: Vec<f32>,
}

impl DayTrace {
    /// Creates an empty day to be filled tick by tick.
    pub fn with_capacity(n_streams: usize, n_ticks_hint: usize) -> DayTrace {
        DayTrace {
            n_streams,
            n_ticks: 0,
            data: Vec::with_capacity(n_streams * n_ticks_hint),
        }
    }

    /// Appends one tick's samples (one per stream).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_streams`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_streams, "row width mismatch");
        self.data.extend(row.iter().map(|&x| x as f32));
        self.n_ticks += 1;
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Number of recorded ticks.
    pub fn n_ticks(&self) -> usize {
        self.n_ticks
    }

    /// Sample of `stream` at `tick`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn sample(&self, tick: usize, stream: usize) -> f64 {
        assert!(tick < self.n_ticks && stream < self.n_streams, "index out of range");
        self.data[tick * self.n_streams + stream] as f64
    }

    /// All samples of one tick.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is out of range.
    pub fn row(&self, tick: usize) -> &[f32] {
        assert!(tick < self.n_ticks, "tick out of range");
        &self.data[tick * self.n_streams..(tick + 1) * self.n_streams]
    }

    /// Copies the window `[t0, t1)` of one stream as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or out of bounds.
    pub fn window(&self, stream: usize, t0: usize, t1: usize) -> Vec<f64> {
        assert!(stream < self.n_streams && t0 <= t1 && t1 <= self.n_ticks, "bad window");
        (t0..t1).map(|t| self.data[t * self.n_streams + stream] as f64).collect()
    }
}

/// A complete multi-day recording plus the static link metadata.
///
/// Streams are ordered RSSI links first (one column per link, exactly
/// as before the fusion work), then any ambient-light columns — one
/// per monitored workstation, identified by `light_sensors`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    tick_hz: f64,
    days: Vec<DayTrace>,
    link_ids: Vec<LinkId>,
    link_segments: Vec<Segment>,
    light_sensors: Vec<u16>,
}

impl Trace {
    /// Assembles an RSSI-only trace (the pre-fusion shape).
    ///
    /// # Panics
    ///
    /// Panics if metadata lengths disagree with the day matrices.
    pub fn new(
        tick_hz: f64,
        days: Vec<DayTrace>,
        link_ids: Vec<LinkId>,
        link_segments: Vec<Segment>,
    ) -> Trace {
        Trace::with_light(tick_hz, days, link_ids, link_segments, Vec::new())
    }

    /// Assembles a trace whose day matrices carry `light_sensors`
    /// ambient-light columns after the RSSI link columns.
    ///
    /// # Panics
    ///
    /// Panics if metadata lengths disagree with the day matrices.
    pub fn with_light(
        tick_hz: f64,
        days: Vec<DayTrace>,
        link_ids: Vec<LinkId>,
        link_segments: Vec<Segment>,
        light_sensors: Vec<u16>,
    ) -> Trace {
        assert_eq!(link_ids.len(), link_segments.len(), "link metadata mismatch");
        for d in &days {
            assert_eq!(
                d.n_streams(),
                link_ids.len() + light_sensors.len(),
                "stream count mismatch"
            );
        }
        assert!(tick_hz > 0.0, "tick rate must be positive");
        Trace { tick_hz, days, link_ids, link_segments, light_sensors }
    }

    /// Sampling rate in Hz.
    pub fn tick_hz(&self) -> f64 {
        self.tick_hz
    }

    /// Converts seconds (from day start) to a tick index.
    pub fn tick_of(&self, seconds: f64) -> usize {
        (seconds * self.tick_hz).round().max(0.0) as usize
    }

    /// Converts a tick index to seconds from day start.
    pub fn seconds_of(&self, tick: usize) -> f64 {
        tick as f64 / self.tick_hz
    }

    /// The recorded days.
    pub fn days(&self) -> &[DayTrace] {
        &self.days
    }

    /// Total number of streams (RSSI links plus light columns).
    pub fn n_streams(&self) -> usize {
        self.link_ids.len() + self.light_sensors.len()
    }

    /// Number of RSSI link streams (columns `0..n_rssi_streams()`).
    pub fn n_rssi_streams(&self) -> usize {
        self.link_ids.len()
    }

    /// Workstation ids of the ambient-light columns, in column order
    /// (column `n_rssi_streams() + i` belongs to `light_sensors()[i]`).
    pub fn light_sensors(&self) -> &[u16] {
        &self.light_sensors
    }

    /// What stream `i` measures.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stream_kind(&self, i: usize) -> StreamKind {
        assert!(i < self.n_streams(), "stream out of range");
        if i < self.link_ids.len() {
            StreamKind::Rssi
        } else {
            StreamKind::AmbientLight
        }
    }

    /// Stream identities (tx/rx sensor indices).
    pub fn link_ids(&self) -> &[LinkId] {
        &self.link_ids
    }

    /// Stream geometry (for the Fig. 12 heatmap).
    pub fn link_segments(&self) -> &[Segment] {
        &self.link_segments
    }

    /// Indices of streams entirely within a sensor subset.
    pub fn stream_indices_for_subset(&self, sensor_subset: &[usize]) -> Vec<usize> {
        self.link_ids
            .iter()
            .enumerate()
            .filter(|(_, id)| sensor_subset.contains(&id.tx) && sensor_subset.contains(&id.rx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Groups the monitored streams by their *receiving* sensor — the
    /// physical node that measures (and would transmit over the wire)
    /// those RSSI values. Returns `(sensor id, positions into
    /// `streams`)` pairs, sensors ascending and positions ascending
    /// within each group. This is the frame layout contract for
    /// [`Trace::sensor_reports`]: each report carries one group's
    /// samples in exactly this order.
    ///
    /// # Panics
    ///
    /// Panics if a stream index is out of range.
    pub fn receiver_groups(&self, streams: &[usize]) -> Vec<(u16, Vec<usize>)> {
        let mut groups: Vec<(u16, Vec<usize>)> = Vec::new();
        for (pos, &s) in streams.iter().enumerate() {
            let rx = self.link_ids[s].rx as u16;
            match groups.binary_search_by_key(&rx, |g| g.0) {
                Ok(i) => groups[i].1.push(pos),
                Err(i) => groups.insert(i, (rx, vec![pos])),
            }
        }
        groups
    }

    /// Flattens one recorded day into per-sensor, per-tick reports —
    /// the send-order frame stream a live deployment's receivers would
    /// emit. Reports are ordered tick-major, then by sensor id; each
    /// carries the samples of that sensor's received streams in
    /// [`Trace::receiver_groups`] order.
    ///
    /// # Panics
    ///
    /// Panics if `day` or a stream index is out of range.
    pub fn sensor_reports(&self, day: usize, streams: &[usize]) -> Vec<SensorReport> {
        let groups = self.receiver_groups(streams);
        let day = &self.days[day];
        let mut out = Vec::with_capacity(day.n_ticks() * groups.len());
        for tick in 0..day.n_ticks() {
            let row = day.row(tick);
            for (sensor, positions) in &groups {
                out.push(SensorReport {
                    sensor: *sensor,
                    kind: StreamKind::Rssi,
                    tick: tick as u64,
                    values: positions.iter().map(|&p| row[streams[p]]).collect(),
                });
            }
        }
        out
    }

    /// Typed sensor layout for a fused deployment: the RSSI receiver
    /// groups of `streams` (positions `0..streams.len()`, exactly as
    /// [`Trace::receiver_groups`]) followed by one single-stream group
    /// per ambient-light sensor at positions `streams.len()..`. This
    /// is the frame layout contract for
    /// [`Trace::sensor_reports_fused`].
    ///
    /// # Panics
    ///
    /// Panics if a stream index is out of range.
    pub fn fused_groups(&self, streams: &[usize]) -> Vec<(u16, StreamKind, Vec<usize>)> {
        let mut out: Vec<(u16, StreamKind, Vec<usize>)> = self
            .receiver_groups(streams)
            .into_iter()
            .map(|(sensor, positions)| (sensor, StreamKind::Rssi, positions))
            .collect();
        for (i, &ws) in self.light_sensors.iter().enumerate() {
            out.push((ws, StreamKind::AmbientLight, vec![streams.len() + i]));
        }
        out
    }

    /// Flattens one recorded day into per-sensor reports including the
    /// ambient-light sensors: tick-major, RF receivers ascending, then
    /// light sensors ascending — the send order of a fused deployment.
    /// RSSI values follow [`Trace::receiver_groups`] order; each light
    /// report carries its desk's single lux sample.
    ///
    /// # Panics
    ///
    /// Panics if `day` or a stream index is out of range.
    pub fn sensor_reports_fused(&self, day: usize, streams: &[usize]) -> Vec<SensorReport> {
        let groups = self.receiver_groups(streams);
        let n_rssi = self.link_ids.len();
        let day = &self.days[day];
        let per_tick = groups.len() + self.light_sensors.len();
        let mut out = Vec::with_capacity(day.n_ticks() * per_tick);
        for tick in 0..day.n_ticks() {
            let row = day.row(tick);
            for (sensor, positions) in &groups {
                out.push(SensorReport {
                    sensor: *sensor,
                    kind: StreamKind::Rssi,
                    tick: tick as u64,
                    values: positions.iter().map(|&p| row[streams[p]]).collect(),
                });
            }
            for (i, &ws) in self.light_sensors.iter().enumerate() {
                out.push(SensorReport {
                    sensor: ws,
                    kind: StreamKind::AmbientLight,
                    tick: tick as u64,
                    values: vec![row[n_rssi + i]],
                });
            }
        }
        out
    }
}

/// One receiving sensor's measurements for one tick, ready to be
/// framed onto the wire (see `fadewich-runtime`).
#[derive(Debug, Clone, PartialEq)]
pub struct SensorReport {
    /// The reporting sensor: the receiving RF sensor for RSSI, the
    /// workstation id for ambient light (ids are namespaced per
    /// [`StreamKind`], so overlap across kinds is fine).
    pub sensor: u16,
    /// What the samples measure.
    pub kind: StreamKind,
    /// Tick the samples belong to (day-local).
    pub tick: u64,
    /// Samples for the sensor's received streams, in
    /// [`Trace::receiver_groups`] order.
    pub values: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_geometry::Point;

    fn tiny_trace() -> Trace {
        let ids = vec![LinkId { tx: 0, rx: 1 }, LinkId { tx: 1, rx: 0 }];
        let segs = vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Segment::new(Point::new(1.0, 0.0), Point::new(0.0, 0.0)),
        ];
        let mut day = DayTrace::with_capacity(2, 4);
        day.push_row(&[-50.0, -55.0]);
        day.push_row(&[-51.0, -54.0]);
        day.push_row(&[-52.0, -53.0]);
        Trace::new(5.0, vec![day], ids, segs)
    }

    #[test]
    fn roundtrip_samples() {
        let t = tiny_trace();
        assert_eq!(t.days()[0].sample(0, 0), -50.0);
        assert_eq!(t.days()[0].sample(2, 1), -53.0);
        assert_eq!(t.days()[0].row(1), &[-51.0f32, -54.0]);
        assert_eq!(t.days()[0].window(1, 0, 2), vec![-55.0, -54.0]);
    }

    #[test]
    fn tick_conversions() {
        let t = tiny_trace();
        assert_eq!(t.tick_of(2.0), 10);
        assert_eq!(t.seconds_of(10), 2.0);
        assert_eq!(t.tick_of(-1.0), 0);
    }

    #[test]
    fn subset_streams() {
        let t = tiny_trace();
        assert_eq!(t.stream_indices_for_subset(&[0, 1]), vec![0, 1]);
        assert!(t.stream_indices_for_subset(&[0]).is_empty());
    }

    #[test]
    fn receiver_groups_partition_streams() {
        let t = tiny_trace();
        // Stream 0 is received by sensor 1, stream 1 by sensor 0.
        assert_eq!(t.receiver_groups(&[0, 1]), vec![(0u16, vec![1]), (1u16, vec![0])]);
        // Positions index into the monitored subset, not the full trace.
        assert_eq!(t.receiver_groups(&[1]), vec![(0u16, vec![0])]);
    }

    #[test]
    fn sensor_reports_cover_every_tick_and_sample() {
        let t = tiny_trace();
        let reports = t.sensor_reports(0, &[0, 1]);
        assert_eq!(reports.len(), 3 * 2);
        // Tick-major, sensor ascending.
        assert_eq!(reports[0].sensor, 0);
        assert_eq!(reports[0].tick, 0);
        assert_eq!(reports[0].values, vec![-55.0f32]); // stream 1 (rx 0)
        assert_eq!(reports[1].sensor, 1);
        assert_eq!(reports[1].values, vec![-50.0f32]); // stream 0 (rx 1)
        assert_eq!(reports[5].tick, 2);
        assert_eq!(reports[5].values, vec![-52.0f32]);
    }

    fn tiny_light_trace() -> Trace {
        let ids = vec![LinkId { tx: 0, rx: 1 }, LinkId { tx: 1, rx: 0 }];
        let segs = vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Segment::new(Point::new(1.0, 0.0), Point::new(0.0, 0.0)),
        ];
        // Two RSSI columns + two light columns (workstations 0 and 1).
        let mut day = DayTrace::with_capacity(4, 2);
        day.push_row(&[-50.0, -55.0, 400.0, 300.0]);
        day.push_row(&[-51.0, -54.0, 401.0, 299.0]);
        Trace::with_light(5.0, vec![day], ids, segs, vec![0, 1])
    }

    #[test]
    fn light_columns_follow_rssi_columns() {
        let t = tiny_light_trace();
        assert_eq!(t.n_streams(), 4);
        assert_eq!(t.n_rssi_streams(), 2);
        assert_eq!(t.light_sensors(), &[0, 1]);
        assert_eq!(t.stream_kind(1), StreamKind::Rssi);
        assert_eq!(t.stream_kind(2), StreamKind::AmbientLight);
    }

    #[test]
    fn fused_groups_append_light_after_rssi_positions() {
        let t = tiny_light_trace();
        let groups = t.fused_groups(&[0, 1]);
        assert_eq!(
            groups,
            vec![
                (0u16, StreamKind::Rssi, vec![1]),
                (1u16, StreamKind::Rssi, vec![0]),
                (0u16, StreamKind::AmbientLight, vec![2]),
                (1u16, StreamKind::AmbientLight, vec![3]),
            ]
        );
    }

    #[test]
    fn fused_reports_interleave_light_per_tick() {
        let t = tiny_light_trace();
        let reports = t.sensor_reports_fused(0, &[0, 1]);
        assert_eq!(reports.len(), 2 * 4);
        // Tick 0: RF sensors 0, 1, then light sensors 0, 1.
        assert_eq!(reports[0].kind, StreamKind::Rssi);
        assert_eq!(reports[2].kind, StreamKind::AmbientLight);
        assert_eq!(reports[2].sensor, 0);
        assert_eq!(reports[2].values, vec![400.0f32]);
        assert_eq!(reports[3].values, vec![300.0f32]);
        assert_eq!(reports[7].tick, 1);
        assert_eq!(reports[7].values, vec![299.0f32]);
        // The RSSI prefix matches the RSSI-only flattening exactly.
        let rssi_only = t.sensor_reports(0, &[0, 1]);
        assert_eq!(&reports[0..2], &rssi_only[0..2]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut day = DayTrace::with_capacity(2, 1);
        day.push_row(&[-50.0]);
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn bad_window_panics() {
        tiny_trace().days()[0].window(0, 2, 9);
    }
}
