//! Ambient-light channel model.
//!
//! The ambient-light deauthentication literature mounts one photosensor
//! per workstation (monitor bezel / desk surface) and reads occupancy
//! from the illuminance dip a seated body casts over it. This module
//! simulates that channel from the *same* person geometry that drives
//! the RF body-shadowing: each tick, every body near a workstation's
//! chair occludes that desk's sensor proportionally to its distance,
//! on top of a slow deterministic daylight drift and a small seeded
//! sensor noise, quantized like a real lux register.
//!
//! The model is deliberately simple — a linear occlusion cone, not a
//! radiosity solver — because the detector consuming it thresholds a
//! deep (>100 lux) dip with run-length hysteresis; what matters for
//! the fusion study is the *timing* of the dip edges relative to the
//! ground-truth movements, and those come straight from the shared
//! [`PersonTimeline::body_at`](crate::person::PersonTimeline::body_at)
//! geometry.

use fadewich_geometry::Point;
use fadewich_rfchannel::Body;
use fadewich_stats::rng::Rng;

/// Tuning for the per-workstation photosensor simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LightSimParams {
    /// Unoccluded desk illuminance (lux).
    pub lux_base: f64,
    /// Amplitude of the slow sinusoidal daylight drift (lux).
    pub drift_amplitude: f64,
    /// Period of the daylight drift (s).
    pub drift_period_s: f64,
    /// Half-width of the uniform per-tick sensor noise (lux).
    pub noise_lux: f64,
    /// Illuminance removed by a body sitting directly over the sensor
    /// (lux), before the per-workstation mounting factor.
    pub occlusion_lux: f64,
    /// Distance at which a body stops occluding the sensor (m); the
    /// occlusion falls off linearly to zero at this radius.
    pub occlusion_radius_m: f64,
    /// Register quantization step (lux).
    pub quant_lux: f64,
    /// Per-workstation mounting factor scaling the occlusion depth —
    /// real installs differ (bezel vs shelf vs window-facing desk).
    /// Empty means 1.0 everywhere; otherwise one entry per
    /// workstation. A factor small enough that the dip never crosses
    /// the detector threshold models a badly-mounted sensor, the case
    /// fusion exists to cover.
    pub mount_factors: Vec<f64>,
}

impl Default for LightSimParams {
    fn default() -> LightSimParams {
        LightSimParams {
            lux_base: 420.0,
            drift_amplitude: 12.0,
            drift_period_s: 2400.0,
            noise_lux: 1.5,
            occlusion_lux: 160.0,
            occlusion_radius_m: 1.1,
            quant_lux: 1.0,
            mount_factors: Vec::new(),
        }
    }
}

impl LightSimParams {
    /// Rejects parameter sets the simulation cannot run on.
    pub fn validate(&self, n_workstations: usize) -> Result<(), String> {
        if !self.lux_base.is_finite() || self.lux_base <= 0.0 {
            return Err(format!("lux_base must be positive, got {}", self.lux_base));
        }
        if !self.occlusion_lux.is_finite() || self.occlusion_lux <= 0.0 {
            return Err(format!("occlusion_lux must be positive, got {}", self.occlusion_lux));
        }
        if !self.occlusion_radius_m.is_finite() || self.occlusion_radius_m <= 0.0 {
            return Err(format!(
                "occlusion_radius_m must be positive, got {}",
                self.occlusion_radius_m
            ));
        }
        if !self.quant_lux.is_finite() || self.quant_lux <= 0.0 {
            return Err(format!("quant_lux must be positive, got {}", self.quant_lux));
        }
        if !self.noise_lux.is_finite() || self.noise_lux < 0.0 {
            return Err(format!("noise_lux must be non-negative, got {}", self.noise_lux));
        }
        if !self.drift_period_s.is_finite() || self.drift_period_s <= 0.0 {
            return Err(format!("drift_period_s must be positive, got {}", self.drift_period_s));
        }
        if !self.mount_factors.is_empty() && self.mount_factors.len() != n_workstations {
            return Err(format!(
                "mount_factors has {} entries for {} workstations",
                self.mount_factors.len(),
                n_workstations
            ));
        }
        if self.mount_factors.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err("mount_factors must be finite and non-negative".to_string());
        }
        Ok(())
    }
}

/// One day's photosensor simulation: per tick, one lux sample per
/// workstation, seeded independently of the RF channel so enabling the
/// light modality never perturbs the RSSI recording.
#[derive(Debug, Clone)]
pub struct LightSim {
    chairs: Vec<Point>,
    factors: Vec<f64>,
    params: LightSimParams,
    rng: Rng,
}

impl LightSim {
    /// Builds the simulator for one day. `chairs` are the workstation
    /// chair positions (the sensor sits at the desk); `rng` should be
    /// a day-scoped fork of the scenario seed.
    pub fn new(chairs: Vec<Point>, params: LightSimParams, rng: Rng) -> LightSim {
        let factors = if params.mount_factors.is_empty() {
            vec![1.0; chairs.len()]
        } else {
            params.mount_factors.clone()
        };
        LightSim { chairs, factors, params, rng }
    }

    /// Number of simulated sensors (one per workstation).
    pub fn n_sensors(&self) -> usize {
        self.chairs.len()
    }

    /// Advances one tick at day-time `t` (s) with the office's bodies,
    /// appending one quantized lux sample per workstation to `out`.
    pub fn step_into(&mut self, bodies: &[Body], t: f64, out: &mut Vec<f64>) {
        let p = &self.params;
        let drift =
            p.drift_amplitude * (std::f64::consts::TAU * t / p.drift_period_s).sin();
        for (w, chair) in self.chairs.iter().enumerate() {
            let mut occ: f64 = 0.0;
            for b in bodies {
                let d = b.position.distance_to(*chair);
                if d < p.occlusion_radius_m {
                    occ += 1.0 - d / p.occlusion_radius_m;
                }
            }
            let dip = occ.min(1.0) * p.occlusion_lux * self.factors[w];
            let noise = self.rng.range_f64(-p.noise_lux, p.noise_lux);
            let lux = (p.lux_base + drift - dip + noise).max(0.0);
            out.push((lux / p.quant_lux).round() * p.quant_lux);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(params: LightSimParams) -> LightSim {
        LightSim::new(
            vec![Point::new(1.0, 1.0), Point::new(4.0, 1.0)],
            params,
            Rng::seed_from_u64(7),
        )
    }

    #[test]
    fn seated_body_dips_its_own_desk_only() {
        let mut s = sim(LightSimParams::default());
        let mut clear = Vec::new();
        s.step_into(&[], 0.0, &mut clear);
        let mut occupied = Vec::new();
        s.step_into(&[Body::still(Point::new(1.0, 1.0))], 0.2, &mut occupied);
        assert!(clear[0] - occupied[0] > 100.0, "dip = {}", clear[0] - occupied[0]);
        assert!((clear[1] - occupied[1]).abs() < 10.0, "far desk moved {}", clear[1] - occupied[1]);
    }

    #[test]
    fn occlusion_falls_off_with_distance_and_saturates() {
        let p = LightSimParams { noise_lux: 0.0, drift_amplitude: 0.0, ..Default::default() };
        let mut s = sim(p.clone());
        let probe = |s: &mut LightSim, bodies: &[Body]| {
            let mut v = Vec::new();
            s.step_into(bodies, 0.0, &mut v);
            v[0]
        };
        let near = probe(&mut s, &[Body::still(Point::new(1.0, 1.0))]);
        let mid = probe(&mut s, &[Body::still(Point::new(1.6, 1.0))]);
        let far = probe(&mut s, &[Body::still(Point::new(3.0, 1.0))]);
        assert!(near < mid && mid < far, "{near} {mid} {far}");
        assert_eq!(far, p.lux_base);
        // Two overlapping bodies cannot dip deeper than the full depth.
        let crowd = probe(
            &mut s,
            &[Body::still(Point::new(1.0, 1.0)), Body::still(Point::new(1.1, 1.0))],
        );
        assert!((near - crowd).abs() < 1e-9, "saturation: {near} vs {crowd}");
    }

    #[test]
    fn mount_factor_scales_the_dip() {
        let p = LightSimParams {
            noise_lux: 0.0,
            drift_amplitude: 0.0,
            mount_factors: vec![1.0, 0.25],
            ..Default::default()
        };
        let mut s = LightSim::new(
            vec![Point::new(1.0, 1.0), Point::new(4.0, 1.0)],
            p.clone(),
            Rng::seed_from_u64(1),
        );
        let mut v = Vec::new();
        s.step_into(
            &[Body::still(Point::new(1.0, 1.0)), Body::still(Point::new(4.0, 1.0))],
            0.0,
            &mut v,
        );
        let dips = [p.lux_base - v[0], p.lux_base - v[1]];
        assert!((dips[0] - p.occlusion_lux).abs() < 1e-9);
        assert!((dips[1] - p.occlusion_lux * 0.25).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = LightSim::new(
                vec![Point::new(1.0, 1.0)],
                LightSimParams::default(),
                Rng::seed_from_u64(seed),
            );
            let mut v = Vec::new();
            for tick in 0..50 {
                s.step_into(&[], tick as f64 / 5.0, &mut v);
            }
            v
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn samples_are_quantized() {
        let mut s = sim(LightSimParams { quant_lux: 2.0, ..Default::default() });
        let mut v = Vec::new();
        s.step_into(&[], 17.0, &mut v);
        for x in v {
            assert_eq!(x % 2.0, 0.0, "unquantized sample {x}");
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(LightSimParams::default().validate(3).is_ok());
        let bad = LightSimParams { occlusion_lux: 0.0, ..Default::default() };
        assert!(bad.validate(3).is_err());
        let bad = LightSimParams { mount_factors: vec![1.0], ..Default::default() };
        assert!(bad.validate(3).is_err());
        let bad = LightSimParams { mount_factors: vec![1.0, f64::NAN, 1.0], ..Default::default() };
        assert!(bad.validate(3).is_err());
    }
}
