//! Office behaviour simulator — the human substitution.
//!
//! The paper's data came from three real users going about their day in
//! an instrumented office while a supervisor noted ground truth. This
//! crate replaces them with a behaviour model:
//!
//! - [`layout`] — the Fig. 6 floor plan (room, sensors, workstations,
//!   door, walking paths, sensor-subset order);
//! - [`schedule`] — per-day presence generation with the paper's
//!   no-overlap property (and an overlap stress mode);
//! - [`person`] — per-user trajectory timelines: enter, sit (with
//!   fidgets), stand up, walk out at ~1.4 m/s;
//! - [`input`] — Mikkelsen-style keyboard/mouse activity (78% of 5-s
//!   slots), redrawable for the usability analysis;
//! - [`events`] — the ground-truth event log ("supervisor's notebook");
//! - [`light`] — per-workstation ambient-light sensors driven by the
//!   same person geometry (the fusion study's second modality);
//! - [`scenario`]/[`trace`] — tying behaviour to the RF channel to
//!   produce the multi-day RSSI recording FADEWICH consumes.
//!
//! # Examples
//!
//! ```
//! use fadewich_officesim::{Scenario, ScenarioConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::generate(ScenarioConfig::small())?;
//! println!("ground truth: {} events", scenario.events().len());
//! let trace = scenario.simulate()?;            // the RSSI recording
//! assert_eq!(trace.n_streams(), 9 * 8);        // m(m-1) streams
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod input;
pub mod layout;
pub mod light;
pub mod person;
pub mod schedule;
pub mod scenario;
pub mod trace;

pub use events::{EventKind, EventLog, MovementEvent};
pub use input::InputTrace;
pub use layout::{OfficeLayout, WorkstationId, N_SENSORS, N_WORKSTATIONS};
pub use light::{LightSim, LightSimParams};
pub use person::PersonTimeline;
pub use scenario::{Scenario, ScenarioConfig, ScenarioError};
pub use schedule::{ScheduleError, ScheduleParams};
pub use trace::{DayTrace, SensorReport, StreamKind, Trace};
