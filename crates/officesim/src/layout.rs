//! The office floor plan of the paper's Fig. 6.
//!
//! A 6 m × 3 m room with nine wall-mounted sensors (`d1..d9`, about
//! 1 m above the floor — slightly above desk height, which is why a 2-D
//! model suffices), three workstations (`w1..w3`) and a single door.
//! The exact coordinates are not published; the ones here follow the
//! figure's arrangement: `d2..d5` along the north wall, `d1` on the
//! west wall, `d6` on the east wall, `d7..d9` along the south wall,
//! `w1`/`w2` against the north side, `w3` in the south-west, and the
//! door in the south-east corner.

use fadewich_geometry::{Path, Point, Rect};

/// Number of sensors in the full deployment.
pub const N_SENSORS: usize = 9;

/// Number of workstations (and users).
pub const N_WORKSTATIONS: usize = 3;

/// The fixed order in which sensors are added when evaluating
/// deployments of `n = 3..9` sensors (greedy max-coverage over the
/// floor plan: each added sensor maximizes the area within one body
/// radius of some link). `sensor_subset(n)` takes the first `n`.
pub const SUBSET_ORDER: [usize; N_SENSORS] = [0, 4, 7, 6, 5, 1, 2, 8, 3];

/// A workstation identifier (`0` = the paper's `w1`).
pub type WorkstationId = usize;

/// The complete static geometry of the experiment office.
#[derive(Debug, Clone, PartialEq)]
pub struct OfficeLayout {
    room: Rect,
    sensors: Vec<Point>,
    workstations: Vec<Point>,
    door: Point,
    /// Waypoints of each workstation's walk to the door (desk first,
    /// door last).
    exit_waypoints: Vec<Vec<Point>>,
}

/// Error building a custom office.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildOfficeError {
    /// Fewer than two sensors were given.
    TooFewSensors,
    /// No workstations were given.
    NoWorkstations,
    /// A sensor, workstation or the door lies outside the room.
    OutsideRoom,
}

impl std::fmt::Display for BuildOfficeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildOfficeError::TooFewSensors => write!(f, "an office needs at least two sensors"),
            BuildOfficeError::NoWorkstations => write!(f, "an office needs a workstation"),
            BuildOfficeError::OutsideRoom => write!(f, "geometry outside the room"),
        }
    }
}

impl std::error::Error for BuildOfficeError {}

impl OfficeLayout {
    /// The paper's Fig. 6 office.
    pub fn paper_office() -> OfficeLayout {
        // Hand-tuned exit paths: all merge at a corridor point near the
        // door — the shared final approach the paper describes — but
        // leave the desks in distinct directions. Walk lengths are
        // ~4-5 m, the paper's "4-meter distance" at 1.4 m/s ≈ 3 s.
        let corridor = Point::new(4.7, 1.0);
        let door = Point::new(5.7, 0.1);
        let workstations = vec![
            Point::new(2.0, 2.4), // w1
            Point::new(3.6, 2.6), // w2
            Point::new(1.2, 0.9), // w3
        ];
        let exit_waypoints = vec![
            vec![workstations[0], Point::new(2.0, 1.4), corridor, door],
            vec![workstations[1], Point::new(3.3, 1.4), corridor, door],
            vec![workstations[2], Point::new(2.3, 1.1), corridor, door],
        ];
        OfficeLayout {
            room: Rect::with_size(6.0, 3.0),
            sensors: vec![
                Point::new(0.0, 2.0), // d1, west wall
                Point::new(1.2, 3.0), // d2, north wall
                Point::new(2.4, 3.0), // d3
                Point::new(3.6, 3.0), // d4
                Point::new(4.8, 3.0), // d5
                Point::new(6.0, 1.5), // d6, east wall
                Point::new(4.5, 0.0), // d7, south wall
                Point::new(3.0, 0.0), // d8
                Point::new(1.5, 0.0), // d9
            ],
            workstations,
            door,
            exit_waypoints,
        }
    }

    /// Builds a custom office: any room size, explicit sensor and
    /// workstation positions, one door. Exit paths are generated
    /// automatically (desk → step-out toward the room centre →
    /// corridor point near the door → door), reproducing the paper's
    /// distinct-initial-segment / shared-final-approach structure.
    ///
    /// # Errors
    ///
    /// See [`BuildOfficeError`].
    pub fn custom(
        room: Rect,
        sensors: Vec<Point>,
        workstations: Vec<Point>,
        door: Point,
    ) -> Result<OfficeLayout, BuildOfficeError> {
        if sensors.len() < 2 {
            return Err(BuildOfficeError::TooFewSensors);
        }
        if workstations.is_empty() {
            return Err(BuildOfficeError::NoWorkstations);
        }
        let all_inside = sensors
            .iter()
            .chain(&workstations)
            .chain(std::iter::once(&door))
            .all(|&p| room.contains(p));
        if !all_inside {
            return Err(BuildOfficeError::OutsideRoom);
        }
        let centre = room.center();
        let inner = room.shrunk(0.3);
        // Corridor point: ~1.2 m inward from the door.
        let corridor = inner.clamp_point(door.lerp(centre, (1.2 / door.distance_to(centre).max(1.2)).min(1.0)));
        let exit_waypoints = workstations
            .iter()
            .map(|&desk| {
                // Step out ~0.9 m from the desk toward the room centre.
                let step = inner.clamp_point(
                    desk.lerp(centre, (0.9 / desk.distance_to(centre).max(0.9)).min(1.0)),
                );
                vec![desk, step, corridor, door]
            })
            .collect();
        Ok(OfficeLayout { room, sensors, workstations, door, exit_waypoints })
    }

    /// Auto-places `n` sensors evenly around the room's walls —
    /// the generic counterpart of the paper's wall-mounted deployment.
    pub fn wall_sensors(room: Rect, n: usize) -> Vec<Point> {
        let w = room.width();
        let h = room.height();
        let perimeter = 2.0 * (w + h);
        (0..n)
            .map(|i| {
                let mut s = (i as f64 + 0.5) / n as f64 * perimeter;
                let min = room.min();
                if s < w {
                    return Point::new(min.x + s, min.y);
                }
                s -= w;
                if s < h {
                    return Point::new(min.x + w, min.y + s);
                }
                s -= h;
                if s < w {
                    return Point::new(min.x + w - s, min.y + h);
                }
                s -= w;
                Point::new(min.x, min.y + h - s)
            })
            .collect()
    }

    /// The room rectangle.
    pub fn room(&self) -> Rect {
        self.room
    }

    /// Sensor positions, `d1` first.
    pub fn sensors(&self) -> &[Point] {
        &self.sensors
    }

    /// Workstation (chair) positions, `w1` first.
    pub fn workstations(&self) -> &[Point] {
        &self.workstations
    }

    /// Number of workstations.
    pub fn n_workstations(&self) -> usize {
        self.workstations.len()
    }

    /// The single entrance.
    pub fn door(&self) -> Point {
        self.door
    }

    /// The deployment used for an "n sensors" experiment: the first
    /// `n` sensors of [`SUBSET_ORDER`] for the paper office, or simply
    /// the first `n` sensors for custom layouts.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= sensors.len()`.
    pub fn sensor_subset(&self, n: usize) -> Vec<usize> {
        assert!(
            (2..=self.sensors.len()).contains(&n),
            "sensor subset size {n} out of range"
        );
        if self.sensors.len() == N_SENSORS {
            let mut subset = SUBSET_ORDER[..n].to_vec();
            subset.sort_unstable();
            subset
        } else {
            (0..n).collect()
        }
    }

    /// The walking path from a workstation to the door.
    ///
    /// Users step away from the desk into the open middle of the room,
    /// then head for the door; this matches the paper's observation
    /// that path *initial segments* are workstation-specific while the
    /// final approach to the door is shared (§IV-D1).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn path_to_door(&self, ws: WorkstationId) -> Path {
        assert!(ws < self.workstations.len(), "workstation {ws} out of range");
        Path::new(self.exit_waypoints[ws].clone())
    }

    /// The walking path from the door to a workstation (the reverse of
    /// [`OfficeLayout::path_to_door`]).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn path_from_door(&self, ws: WorkstationId) -> Path {
        self.path_to_door(ws).reversed()
    }

    /// Human-readable workstation name in the paper's notation
    /// (`w1`-based).
    pub fn workstation_name(ws: WorkstationId) -> String {
        format!("w{}", ws + 1)
    }
}

impl Default for OfficeLayout {
    fn default() -> Self {
        OfficeLayout::paper_office()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_figure_6() {
        let office = OfficeLayout::paper_office();
        assert_eq!(office.room().width(), 6.0);
        assert_eq!(office.room().height(), 3.0);
        assert_eq!(office.sensors().len(), N_SENSORS);
        assert_eq!(office.workstations().len(), N_WORKSTATIONS);
    }

    #[test]
    fn everything_inside_the_room() {
        let office = OfficeLayout::paper_office();
        for &s in office.sensors() {
            assert!(office.room().contains(s), "sensor {s} outside room");
        }
        for &w in office.workstations() {
            assert!(office.room().contains(w), "workstation {w} outside room");
        }
        assert!(office.room().contains(office.door()));
    }

    #[test]
    fn sensors_on_the_walls() {
        let office = OfficeLayout::paper_office();
        for &s in office.sensors() {
            let on_wall = s.x == 0.0 || s.x == 6.0 || s.y == 0.0 || s.y == 3.0;
            assert!(on_wall, "sensor {s} is not wall-mounted");
        }
    }

    #[test]
    fn subset_order_is_a_permutation() {
        let mut order = SUBSET_ORDER;
        order.sort_unstable();
        assert_eq!(order, [0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn subsets_nest() {
        let office = OfficeLayout::paper_office();
        for n in 3..=9 {
            let smaller = office.sensor_subset(n - 1);
            let larger = office.sensor_subset(n);
            assert_eq!(larger.len(), n);
            assert!(smaller.iter().all(|s| larger.contains(s)), "subsets must nest");
        }
    }

    #[test]
    fn paths_start_at_desk_and_end_at_door() {
        let office = OfficeLayout::paper_office();
        for ws in 0..N_WORKSTATIONS {
            let path = office.path_to_door(ws);
            assert_eq!(path.point_at(0.0), office.workstations()[ws]);
            assert_eq!(path.point_at(path.length()), office.door());
            // Walk distance must be in the ~4-6 m range the paper cites
            // (5 s at 1.4 m/s).
            assert!(
                path.length() > 3.0 && path.length() < 8.0,
                "w{} path length {}",
                ws + 1,
                path.length()
            );
            // Reverse path is consistent.
            let rev = office.path_from_door(ws);
            assert_eq!(rev.point_at(0.0), office.door());
        }
    }

    #[test]
    fn paths_stay_inside_the_room() {
        let office = OfficeLayout::paper_office();
        for ws in 0..N_WORKSTATIONS {
            let path = office.path_to_door(ws);
            let mut s = 0.0;
            while s <= path.length() {
                assert!(office.room().contains(path.point_at(s)));
                s += 0.1;
            }
        }
    }

    #[test]
    fn initial_path_segments_differ_between_workstations() {
        // The RE classifier depends on departure signatures being
        // workstation-specific at the start of the path.
        let office = OfficeLayout::paper_office();
        let p0 = office.path_to_door(0).point_at(0.5);
        let p1 = office.path_to_door(1).point_at(0.5);
        let p2 = office.path_to_door(2).point_at(0.5);
        assert!(p0.distance_to(p1) > 0.5);
        assert!(p0.distance_to(p2) > 0.5);
        assert!(p1.distance_to(p2) > 0.5);
    }

    #[test]
    fn workstation_names() {
        assert_eq!(OfficeLayout::workstation_name(0), "w1");
        assert_eq!(OfficeLayout::workstation_name(2), "w3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_too_small_panics() {
        OfficeLayout::paper_office().sensor_subset(1);
    }
}
