//! Per-user trajectory timelines.
//!
//! A [`PersonTimeline`] is the fully materialized movement of one user
//! over one day: alternating outside / entering / seated / leaving
//! phases, with precomputed fidget episodes while seated and a
//! per-movement walking speed. Queries are pure (`body_at(t)`), so the
//! channel simulator can sample any tick without mutating the person.

use fadewich_geometry::{Path, Point};
use fadewich_rfchannel::Body;
use fadewich_stats::rng::Rng;

use crate::layout::{OfficeLayout, WorkstationId};

/// How long standing up from the chair takes — pushing the chair
/// back, turning (s).
pub const STAND_UP_S: f64 = 1.8;
/// How long opening/closing the door takes (s).
pub const DOOR_PAUSE_S: f64 = 1.2;
/// Time to lower into the chair after reaching the desk (s).
pub const SIT_DOWN_S: f64 = 1.5;
/// Nominal walking speed (m/s) — the paper assumes 1.4 m/s.
pub const WALK_SPEED_MPS: f64 = 1.4;

/// Motion intensity while actively walking.
const MOTION_WALK: f64 = 1.0;
/// Motion intensity while standing up / sitting down / at the door.
const MOTION_TRANSITION: f64 = 0.7;

/// A fidget episode while seated: brief torso/limb movement that
/// perturbs the channel but must *not* deauthenticate anyone.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fidget {
    /// Offset from the start of the seated phase (s).
    start: f64,
    duration: f64,
    intensity: f64,
    /// Small positional offset while fidgeting (chair shift).
    offset: Point,
}

/// One phase of the day.
#[derive(Debug, Clone)]
enum Phase {
    /// Out of the office until `until`.
    Outside { until: f64 },
    /// Walking door → desk starting at `start`; `speed` in m/s.
    Entering { start: f64, path: Path, speed: f64 },
    /// At the desk until `until`, with precomputed fidgets.
    Seated { start: f64, until: f64, fidgets: Vec<Fidget> },
    /// Stand-up + walk desk → door + door pause, starting at `start`.
    Leaving { start: f64, path: Path, speed: f64 },
}

/// Direction of a movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementKind {
    /// Door → desk.
    Enter,
    /// Desk → door.
    Leave,
}

/// One enter/leave movement with its exact timings (seconds from day
/// start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Movement {
    /// Enter or leave.
    pub kind: MovementKind,
    /// The workstation involved.
    pub workstation: WorkstationId,
    /// Movement start (door crossing for enter, stand-up start for
    /// leave). For a leave this is also the last-input time under the
    /// paper's worst-case assumption.
    pub t_start: f64,
    /// When the user has left the workstation's vicinity: end of the
    /// stand-up for a leave, door crossing for an enter. The paper's
    /// security analysis measures elapsed time from this moment.
    pub t_proximity: f64,
    /// When the user is through the door: for a leave this is the end
    /// of the door pause (the victim can witness the room until the
    /// door closes), for an enter the movement start.
    pub t_door: f64,
    /// Movement end (seated / outside).
    pub t_end: f64,
}

/// A user's fully materialized day.
#[derive(Debug, Clone)]
pub struct PersonTimeline {
    workstation: WorkstationId,
    chair: Point,
    phases: Vec<Phase>,
}

/// Duration of an entering movement (door pause + walk + sit-down).
pub fn enter_duration(path_len: f64, speed: f64) -> f64 {
    DOOR_PAUSE_S + path_len / speed + SIT_DOWN_S
}

/// Duration of a leaving movement (stand-up + walk + door pause).
pub fn leave_duration(path_len: f64, speed: f64) -> f64 {
    STAND_UP_S + path_len / speed + DOOR_PAUSE_S
}

impl PersonTimeline {
    /// Builds a timeline for the user of `workstation` who is present
    /// during each `[enter, leave]` interval of `presence` (times in
    /// seconds from day start; must be sorted, non-overlapping, and
    /// wide enough for the enter/leave movements themselves).
    ///
    /// `rng` drives fidget generation and walking-speed variation.
    ///
    /// # Panics
    ///
    /// Panics if intervals are unsorted/overlapping or out of
    /// `[0, day_len]`.
    pub fn build(
        layout: &OfficeLayout,
        workstation: WorkstationId,
        presence: &[(f64, f64)],
        day_len: f64,
        rng: &mut Rng,
    ) -> PersonTimeline {
        let chair = layout.workstations()[workstation];
        let mut phases = Vec::new();
        let mut cursor = 0.0f64;
        for &(enter_t, leave_t) in presence {
            assert!(
                enter_t >= cursor && leave_t > enter_t && leave_t <= day_len,
                "presence interval [{enter_t}, {leave_t}] invalid at cursor {cursor}"
            );
            let in_speed = WALK_SPEED_MPS * rng.range_f64(0.9, 1.1);
            let out_speed = WALK_SPEED_MPS * rng.range_f64(0.9, 1.1);
            let in_path = layout.path_from_door(workstation);
            let out_path = layout.path_to_door(workstation);
            let seat_start = enter_t + enter_duration(in_path.length(), in_speed);
            assert!(
                seat_start < leave_t,
                "presence interval too short for the enter movement"
            );
            phases.push(Phase::Outside { until: enter_t });
            phases.push(Phase::Entering { start: enter_t, path: in_path, speed: in_speed });
            let fidgets = generate_fidgets(seat_start, leave_t, rng);
            phases.push(Phase::Seated { start: seat_start, until: leave_t, fidgets });
            phases.push(Phase::Leaving { start: leave_t, path: out_path, speed: out_speed });
            cursor = leave_t + leave_duration(out_path_len(layout, workstation), out_speed);
        }
        phases.push(Phase::Outside { until: f64::INFINITY });
        PersonTimeline { workstation, chair, phases }
    }

    /// The workstation this user is assigned to.
    pub fn workstation(&self) -> WorkstationId {
        self.workstation
    }

    /// The user's body as the channel sees it at time `t`, or `None`
    /// while outside the office.
    pub fn body_at(&self, t: f64) -> Option<Body> {
        for phase in &self.phases {
            match phase {
                Phase::Outside { until } => {
                    if t < *until {
                        return None;
                    }
                }
                Phase::Entering { start, path, speed } => {
                    let dur = enter_duration(path.length(), *speed);
                    if t < start + dur {
                        let dt = t - start;
                        return Some(if dt < DOOR_PAUSE_S {
                            Body::new(path.point_at(0.0), MOTION_TRANSITION)
                        } else if dt < DOOR_PAUSE_S + path.length() / speed {
                            Body::new(path.point_at((dt - DOOR_PAUSE_S) * speed), MOTION_WALK)
                        } else {
                            Body::new(self.chair, MOTION_TRANSITION)
                        });
                    }
                }
                Phase::Seated { start, until, fidgets } => {
                    if t < *until {
                        let dt = t - start;
                        for f in fidgets {
                            if dt >= f.start && dt < f.start + f.duration {
                                return Some(Body::new(self.chair + f.offset, f.intensity));
                            }
                        }
                        return Some(Body::still(self.chair));
                    }
                }
                Phase::Leaving { start, path, speed } => {
                    let dur = leave_duration(path.length(), *speed);
                    if t < start + dur {
                        let dt = t - start;
                        return Some(if dt < STAND_UP_S {
                            Body::new(path.point_at(0.0), MOTION_TRANSITION)
                        } else if dt < STAND_UP_S + path.length() / speed {
                            Body::new(path.point_at((dt - STAND_UP_S) * speed), MOTION_WALK)
                        } else {
                            Body::new(path.point_at(path.length()), MOTION_TRANSITION)
                        });
                    }
                }
            }
        }
        None
    }

    /// Whether the user is seated at time `t`.
    pub fn is_seated(&self, t: f64) -> bool {
        self.phases.iter().any(|p| match p {
            Phase::Seated { start, until, .. } => t >= *start && t < *until,
            _ => false,
        })
    }

    /// The movement intervals of this day, in order: for each presence
    /// interval one `Enter` (door pause + walk + sit) and one `Leave`
    /// (stand + walk + door pause), with the exact timings implied by
    /// the per-movement walking speeds.
    pub fn movements(&self) -> Vec<Movement> {
        let mut out = Vec::new();
        for phase in &self.phases {
            match phase {
                Phase::Entering { start, path, speed } => out.push(Movement {
                    kind: MovementKind::Enter,
                    workstation: self.workstation,
                    t_start: *start,
                    t_proximity: *start,
                    t_door: *start,
                    t_end: *start + enter_duration(path.length(), *speed),
                }),
                Phase::Leaving { start, path, speed } => out.push(Movement {
                    kind: MovementKind::Leave,
                    workstation: self.workstation,
                    t_start: *start,
                    t_proximity: *start + STAND_UP_S,
                    t_door: *start + leave_duration(path.length(), *speed),
                    t_end: *start + leave_duration(path.length(), *speed),
                }),
                _ => {}
            }
        }
        out
    }

    /// The seated intervals `[start, until)` of this day.
    pub fn seated_intervals(&self) -> Vec<(f64, f64)> {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Seated { start, until, .. } => Some((*start, *until)),
                _ => None,
            })
            .collect()
    }
}

fn out_path_len(layout: &OfficeLayout, ws: WorkstationId) -> f64 {
    layout.path_to_door(ws).length()
}

/// Draws fidget episodes over a seated interval: small movements every
/// ~45 s on average, occasionally a longer chair shift. All are much
/// shorter than `t∆`, so MD should ignore them (that is the point of
/// the `t∆` duration threshold).
fn generate_fidgets(start: f64, until: f64, rng: &mut Rng) -> Vec<Fidget> {
    let mut fidgets = Vec::new();
    let mut t = rng.exponential(1.0 / 60.0);
    let span = until - start;
    while t < span {
        let big = rng.bernoulli(0.07);
        // Even the longest fidget, plus the rolling-window tail, must
        // stay under t_delta = 4.5 s, or seated users would register as
        // departures (the paper's duration threshold exists for this).
        let duration = if big { rng.range_f64(1.5, 2.0) } else { rng.range_f64(0.3, 1.2) };
        let intensity = if big { rng.range_f64(0.3, 0.45) } else { rng.range_f64(0.1, 0.25) };
        let offset = Point::new(rng.range_f64(-0.08, 0.08), rng.range_f64(-0.08, 0.08));
        if t + duration < span {
            fidgets.push(Fidget { start: t, duration, intensity, offset });
        }
        t += duration + rng.exponential(1.0 / 60.0);
    }
    fidgets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> PersonTimeline {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(1);
        PersonTimeline::build(&layout, 0, &[(100.0, 400.0), (600.0, 900.0)], 1000.0, &mut rng)
    }

    #[test]
    fn outside_before_arrival() {
        let tl = timeline();
        assert_eq!(tl.body_at(0.0), None);
        assert_eq!(tl.body_at(99.9), None);
    }

    #[test]
    fn at_door_when_entering() {
        let tl = timeline();
        let body = tl.body_at(100.1).expect("entering");
        let layout = OfficeLayout::paper_office();
        assert!(body.position.distance_to(layout.door()) < 0.01);
        assert!(body.motion > 0.0);
    }

    #[test]
    fn seated_at_desk_mid_interval() {
        let tl = timeline();
        let layout = OfficeLayout::paper_office();
        let body = tl.body_at(250.0).expect("seated");
        assert!(body.position.distance_to(layout.workstations()[0]) < 0.3);
        assert!(tl.is_seated(250.0));
    }

    #[test]
    fn walking_out_after_leave_time() {
        let tl = timeline();
        // Mid-walk: 1.2 s stand + ~1 s into the walk.
        let body = tl.body_at(402.5).expect("leaving");
        assert_eq!(body.motion, 1.0);
        let layout = OfficeLayout::paper_office();
        assert!(body.position.distance_to(layout.workstations()[0]) > 0.5);
    }

    #[test]
    fn outside_between_presences_and_after() {
        let tl = timeline();
        // Leave at 400 takes ~6 s; by 450 the user is out.
        assert_eq!(tl.body_at(450.0), None);
        assert!(tl.body_at(650.0).is_some());
        assert_eq!(tl.body_at(990.0), None);
    }

    #[test]
    fn movement_is_continuous() {
        // No teleporting: consecutive samples at 5 Hz move < 0.5 m.
        let tl = timeline();
        let mut prev: Option<Point> = None;
        let mut t = 99.0;
        while t < 420.0 {
            if let Some(body) = tl.body_at(t) {
                if let Some(p) = prev {
                    let d = p.distance_to(body.position);
                    assert!(d < 0.5, "jump of {d} m at t = {t}");
                }
                prev = Some(body.position);
            } else {
                prev = None;
            }
            t += 0.2;
        }
    }

    #[test]
    fn seated_intervals_reported() {
        let tl = timeline();
        let ivs = tl.seated_intervals();
        assert_eq!(ivs.len(), 2);
        assert!(ivs[0].0 > 100.0 && ivs[0].1 == 400.0);
        assert!(ivs[1].0 > 600.0 && ivs[1].1 == 900.0);
    }

    #[test]
    fn fidgets_present_but_bounded() {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(9);
        let tl =
            PersonTimeline::build(&layout, 1, &[(50.0, 3650.0)], 4000.0, &mut rng);
        // Over an hour seated, some moments should show fidget motion.
        let mut moving = 0usize;
        let mut total = 0usize;
        let mut t = 100.0;
        while t < 3600.0 {
            if let Some(b) = tl.body_at(t) {
                total += 1;
                if b.motion > 0.0 {
                    moving += 1;
                }
            }
            t += 0.2;
        }
        let frac = moving as f64 / total as f64;
        assert!(frac > 0.005 && frac < 0.2, "fidget fraction = {frac}");
    }

    #[test]
    fn durations_match_helpers() {
        assert!((enter_duration(5.0, 1.25) - (1.2 + 4.0 + 1.5)).abs() < 1e-12);
        assert!((leave_duration(5.0, 1.25) - (1.8 + 4.0 + 1.2)).abs() < 1e-12);
    }

    #[test]
    fn movements_exceed_t_delta() {
        // Every workstation's leave movement must last longer than the
        // paper's t_delta = 4.5 s, as their ~5 s walk estimate implies.
        let layout = OfficeLayout::paper_office();
        for ws in 0..3 {
            let len = layout.path_to_door(ws).length();
            let dur = leave_duration(len, WALK_SPEED_MPS * 1.1); // fastest walker
            assert!(dur > 4.8, "w{} leave lasts only {dur:.2} s", ws + 1);
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn overlapping_presence_panics() {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(2);
        PersonTimeline::build(&layout, 0, &[(100.0, 400.0), (300.0, 500.0)], 1000.0, &mut rng);
    }
}
