//! Daily schedule generation.
//!
//! Generates, per day, each user's presence intervals (arrive in the
//! morning, step out a handful of times, final exit before close) such
//! that no two users' movements overlap — the collected FADEWICH data
//! registered zero overlaps (§VI-B), and the classifier is explicitly
//! only defined for non-overlapping departures (§IV-E). A dedicated
//! stress mode *allows* overlaps to exercise the Noisy-state handling.

use fadewich_stats::rng::Rng;

use crate::layout::OfficeLayout;
use crate::person::{Movement, PersonTimeline};

/// Knobs of the daily behaviour generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleParams {
    /// Length of a working day in seconds (paper: 8 h).
    pub day_seconds: f64,
    /// Earliest arrival after day start (leaves the office empty for
    /// MD's profile initialization).
    pub earliest_arrival_s: f64,
    /// Latest arrival after day start.
    pub latest_arrival_s: f64,
    /// Choices for the number of departures per user per day (sampled
    /// uniformly; the default mix averages ≈ 4.2, reproducing the
    /// paper's ~63 departures over 15 user-days).
    pub departures_choices: [usize; 4],
    /// Minimum seated stretch between movements (s).
    pub min_seated_s: f64,
    /// Absence duration bounds (s) for intermediate departures.
    pub absence_bounds_s: (f64, f64),
    /// Required gap between any two users' movement intervals (s);
    /// `0.0` disables de-confliction (overlap stress mode).
    pub min_event_separation_s: f64,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            day_seconds: 8.0 * 3600.0,
            earliest_arrival_s: 180.0,
            latest_arrival_s: 900.0,
            departures_choices: [3, 4, 5, 5],
            min_seated_s: 700.0,
            absence_bounds_s: (120.0, 900.0),
            min_event_separation_s: 45.0,
        }
    }
}

/// A generated day: one timeline per user (user `u` sits at
/// workstation `u`, as in the paper).
#[derive(Debug, Clone)]
pub struct DaySchedule {
    /// One timeline per user.
    pub timelines: Vec<PersonTimeline>,
}

/// Error generating a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Could not find a conflict-free arrangement within the retry
    /// budget (parameters leave too little slack).
    DeconflictionFailed,
    /// The parameters are inconsistent (e.g. day too short).
    InvalidParams(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::DeconflictionFailed => {
                write!(f, "could not generate a conflict-free day within the retry budget")
            }
            ScheduleError::InvalidParams(msg) => write!(f, "invalid schedule params: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Generates one day of user behaviour.
///
/// Retries internally (with forked RNG streams) until the generated
/// movements respect `min_event_separation_s`.
///
/// # Errors
///
/// [`ScheduleError::InvalidParams`] for inconsistent knobs;
/// [`ScheduleError::DeconflictionFailed`] if no conflict-free day is
/// found in 500 attempts.
pub fn generate_day(
    layout: &OfficeLayout,
    params: &ScheduleParams,
    rng: &mut Rng,
) -> Result<DaySchedule, ScheduleError> {
    validate(params)?;
    for attempt in 0..500 {
        let mut attempt_rng = rng.fork(attempt);
        let day = try_generate_day(layout, params, &mut attempt_rng);
        if params.min_event_separation_s <= 0.0 || !has_conflicts(&day, params) {
            return Ok(day);
        }
    }
    Err(ScheduleError::DeconflictionFailed)
}

fn validate(params: &ScheduleParams) -> Result<(), ScheduleError> {
    let max_deps = *params.departures_choices.iter().max().expect("non-empty") as f64;
    let needed = params.latest_arrival_s
        + max_deps * (params.min_seated_s + params.absence_bounds_s.1)
        + 600.0;
    if needed > params.day_seconds {
        return Err(ScheduleError::InvalidParams(format!(
            "day of {} s cannot fit up to {} departures",
            params.day_seconds, max_deps
        )));
    }
    if params.absence_bounds_s.0 > params.absence_bounds_s.1 {
        return Err(ScheduleError::InvalidParams("absence bounds inverted".to_string()));
    }
    if params.earliest_arrival_s > params.latest_arrival_s {
        return Err(ScheduleError::InvalidParams("arrival bounds inverted".to_string()));
    }
    Ok(())
}

fn try_generate_day(
    layout: &OfficeLayout,
    params: &ScheduleParams,
    rng: &mut Rng,
) -> DaySchedule {
    let n_users = layout.n_workstations();
    let mut timelines = Vec::with_capacity(n_users);
    for user in 0..n_users {
        let presence = generate_presence(params, rng);
        timelines.push(PersonTimeline::build(
            layout,
            user,
            &presence,
            params.day_seconds,
            rng,
        ));
    }
    DaySchedule { timelines }
}

/// Presence intervals for one user: arrival, a few out-and-back trips,
/// final exit.
fn generate_presence(params: &ScheduleParams, rng: &mut Rng) -> Vec<(f64, f64)> {
    let n_dep = params.departures_choices[rng.below(params.departures_choices.len())];
    let arrival = rng.range_f64(params.earliest_arrival_s, params.latest_arrival_s);
    let final_exit = params.day_seconds - rng.range_f64(60.0, 600.0);
    // Seated time to distribute across n_dep stretches.
    let mut cuts: Vec<f64> = (0..n_dep - 1).map(|_| rng.f64()).collect();
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // Total absence time.
    let absences: Vec<f64> = (0..n_dep - 1)
        .map(|_| rng.range_f64(params.absence_bounds_s.0, params.absence_bounds_s.1))
        .collect();
    let total_absence: f64 = absences.iter().sum();
    let total_seated = final_exit - arrival - total_absence;
    // Fall back to a single stretch when the draw left too little room.
    if total_seated < n_dep as f64 * params.min_seated_s {
        return vec![(arrival, final_exit)];
    }
    // Seated stretch lengths from the sorted cuts, floored at the
    // minimum by mixing toward the uniform split.
    let uniform = total_seated / n_dep as f64;
    let mut stretches = Vec::with_capacity(n_dep);
    let mut prev = 0.0;
    for (i, &c) in cuts.iter().chain(std::iter::once(&1.0)).enumerate() {
        let raw = (c - prev) * total_seated;
        prev = c;
        // Blend 60% raw randomness with 40% uniform, then floor.
        let blended = 0.6 * raw + 0.4 * uniform;
        stretches.push(blended.max(params.min_seated_s));
        let _ = i;
    }
    // Renormalize to the exact total.
    let sum: f64 = stretches.iter().sum();
    for s in &mut stretches {
        *s *= total_seated / sum;
    }
    let mut presence = Vec::with_capacity(n_dep);
    let mut t = arrival;
    for (i, &stretch) in stretches.iter().enumerate() {
        let leave = t + stretch;
        presence.push((t, leave));
        if i + 1 < n_dep {
            t = leave + 12.0 + absences[i]; // 12 s covers the walk out and back in
        }
    }
    presence
}

/// Whether any two different users' movement intervals come closer
/// than the configured separation.
fn has_conflicts(day: &DaySchedule, params: &ScheduleParams) -> bool {
    let mut movements: Vec<(usize, Movement)> = Vec::new();
    for (user, tl) in day.timelines.iter().enumerate() {
        for m in tl.movements() {
            movements.push((user, m));
        }
    }
    movements.sort_by(|a, b| a.1.t_start.partial_cmp(&b.1.t_start).expect("finite"));
    movements.windows(2).any(|pair| {
        let (ua, a) = &pair[0];
        let (ub, b) = &pair[1];
        ua != ub && b.t_start - a.t_end < params.min_event_separation_s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::MovementKind;

    fn day(seed: u64) -> DaySchedule {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(seed);
        generate_day(&layout, &ScheduleParams::default(), &mut rng).unwrap()
    }

    #[test]
    fn every_user_has_a_timeline() {
        let d = day(1);
        assert_eq!(d.timelines.len(), 3);
        for (u, tl) in d.timelines.iter().enumerate() {
            assert_eq!(tl.workstation(), u);
            assert!(!tl.movements().is_empty());
        }
    }

    #[test]
    fn departures_in_expected_range() {
        for seed in 0..10 {
            let d = day(seed);
            for tl in &d.timelines {
                let leaves =
                    tl.movements().iter().filter(|m| m.kind == MovementKind::Leave).count();
                assert!((1..=5).contains(&leaves), "leaves = {leaves}");
            }
        }
    }

    #[test]
    fn mean_departures_near_four() {
        let mut total = 0usize;
        let n_days = 30;
        for seed in 0..n_days {
            let d = day(seed);
            for tl in &d.timelines {
                total += tl.movements().iter().filter(|m| m.kind == MovementKind::Leave).count();
            }
        }
        let mean = total as f64 / (n_days * 3) as f64;
        assert!((3.2..=4.8).contains(&mean), "mean departures/user/day = {mean}");
    }

    #[test]
    fn no_movement_overlaps() {
        for seed in 0..10 {
            let d = day(seed);
            let mut movements: Vec<(usize, f64, f64)> = Vec::new();
            for (u, tl) in d.timelines.iter().enumerate() {
                for m in tl.movements() {
                    movements.push((u, m.t_start, m.t_end));
                }
            }
            movements.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for pair in movements.windows(2) {
                if pair[0].0 != pair[1].0 {
                    let gap = pair[1].1 - pair[0].2;
                    assert!(gap >= 45.0, "gap {gap} between users {} and {}", pair[0].0, pair[1].0);
                }
            }
        }
    }

    #[test]
    fn office_empty_at_day_start_and_end() {
        let d = day(3);
        for tl in &d.timelines {
            assert!(tl.body_at(0.0).is_none(), "office must start empty");
            assert!(tl.body_at(8.0 * 3600.0 - 1.0).is_none(), "office must end empty");
        }
    }

    #[test]
    fn overlap_mode_generates_without_deconfliction() {
        let layout = OfficeLayout::paper_office();
        let params = ScheduleParams { min_event_separation_s: 0.0, ..Default::default() };
        let mut rng = Rng::seed_from_u64(4);
        // Must not fail even if movements collide.
        let d = generate_day(&layout, &params, &mut rng).unwrap();
        assert_eq!(d.timelines.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = day(7);
        let b = day(7);
        for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
            assert_eq!(ta.movements(), tb.movements());
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let layout = OfficeLayout::paper_office();
        let params = ScheduleParams { day_seconds: 3600.0, ..Default::default() };
        let mut rng = Rng::seed_from_u64(1);
        assert!(matches!(
            generate_day(&layout, &params, &mut rng),
            Err(ScheduleError::InvalidParams(_))
        ));
    }
}
