//! Keyboard/mouse input simulation.
//!
//! The paper simulates workstation input rather than recording it
//! (§VI-A, §VII-D), citing Mikkelsen et al.: office users generate
//! keyboard/mouse activity in 78% of 5-second intervals. We do the
//! same: while a user is seated, each 5-s slot independently contains
//! an input with probability `activity_probability`, placed uniformly
//! inside the slot; additionally the last input of every presence
//! interval falls exactly at the departure time — the paper's
//! worst-case assumption for the security analysis (§V-B).

use fadewich_stats::rng::Rng;

use crate::person::PersonTimeline;

/// Mikkelsen et al.'s activity probability per 5-second interval.
pub const PAPER_ACTIVITY_PROBABILITY: f64 = 0.78;

/// Length of the activity slots (s).
pub const SLOT_SECONDS: f64 = 5.0;

/// Input events generated inside an *active* slot. Mikkelsen et al.
/// report whether the keyboard/mouse was used *at all* during a slot;
/// actual use is a burst of keystrokes, not a single event, so an
/// active slot gets several timestamps. With one event per slot a
/// seated user would look idle for multiple seconds between
/// keystrokes and trip the alert path constantly.
pub const INPUTS_PER_ACTIVE_SLOT: usize = 5;

/// Simulated input timestamps for every workstation over one day.
#[derive(Debug, Clone, PartialEq)]
pub struct InputTrace {
    /// Per workstation: sorted input times (seconds from day start).
    inputs: Vec<Vec<f64>>,
}

impl InputTrace {
    /// Draws one realization of the input process for a day.
    ///
    /// `timelines[u]` is assumed to sit at workstation `u`.
    pub fn generate(timelines: &[PersonTimeline], activity_probability: f64, rng: &mut Rng) -> InputTrace {
        let inputs = timelines
            .iter()
            .map(|tl| {
                let mut times = Vec::new();
                for (start, until) in tl.seated_intervals() {
                    let mut slot = start;
                    while slot < until {
                        let slot_end = (slot + SLOT_SECONDS).min(until);
                        if rng.bernoulli(activity_probability) {
                            for _ in 0..INPUTS_PER_ACTIVE_SLOT {
                                times.push(rng.range_f64(slot, slot_end));
                            }
                        }
                        slot = slot_end;
                    }
                    // Worst-case: the user's very last action coincides
                    // with standing up.
                    times.push(until);
                }
                times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                times
            })
            .collect();
        InputTrace { inputs }
    }

    /// Builds a trace from explicit input times (for tests and custom
    /// scenarios). Times are sorted internally.
    pub fn from_times(mut inputs: Vec<Vec<f64>>) -> InputTrace {
        for times in &mut inputs {
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        }
        InputTrace { inputs }
    }

    /// Number of workstations covered.
    pub fn n_workstations(&self) -> usize {
        self.inputs.len()
    }

    /// The most recent input at `ws` at or before time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn last_input_before(&self, ws: usize, t: f64) -> Option<f64> {
        let times = &self.inputs[ws];
        match times.binary_search_by(|x| x.partial_cmp(&t).expect("finite times")) {
            Ok(i) => Some(times[i]),
            Err(0) => None,
            Err(i) => Some(times[i - 1]),
        }
    }

    /// Idle time of `ws` at time `t`: seconds since the last input, or
    /// since day start when there has been none.
    pub fn idle_time(&self, ws: usize, t: f64) -> f64 {
        match self.last_input_before(ws, t) {
            Some(last) => t - last,
            None => t,
        }
    }

    /// The first input at `ws` strictly after time `t`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn next_input_after(&self, ws: usize, t: f64) -> Option<f64> {
        let times = &self.inputs[ws];
        let i = match times.binary_search_by(|x| x.partial_cmp(&t).expect("finite times")) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        times.get(i).copied()
    }

    /// Whether `ws` produced any input strictly inside `(from, to)`.
    pub fn any_input_in(&self, ws: usize, from: f64, to: f64) -> bool {
        let times = &self.inputs[ws];
        let i = match times.binary_search_by(|x| x.partial_cmp(&from).expect("finite")) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        times.get(i).is_some_and(|&x| x < to)
    }

    /// All input times of one workstation.
    ///
    /// # Panics
    ///
    /// Panics if `ws` is out of range.
    pub fn times(&self, ws: usize) -> &[f64] {
        &self.inputs[ws]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::OfficeLayout;

    fn trace(seed: u64) -> (InputTrace, Vec<(f64, f64)>) {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(seed);
        let tl = PersonTimeline::build(&layout, 0, &[(100.0, 2000.0)], 3000.0, &mut rng);
        let seated = tl.seated_intervals();
        (InputTrace::generate(&[tl], PAPER_ACTIVITY_PROBABILITY, &mut rng), seated)
    }

    #[test]
    fn activity_rate_near_78_percent() {
        let (trace, seated) = trace(1);
        let (start, until) = seated[0];
        let n_slots = ((until - start) / SLOT_SECONDS).floor();
        let n_inputs = trace.times(0).len() as f64 - 1.0; // minus the final forced input
        let rate = n_inputs / n_slots / INPUTS_PER_ACTIVE_SLOT as f64;
        assert!((0.68..=0.88).contains(&rate), "activity rate = {rate}");
    }

    #[test]
    fn last_input_exactly_at_departure() {
        let (trace, seated) = trace(2);
        let (_, until) = seated[0];
        assert_eq!(*trace.times(0).last().unwrap(), until);
        assert_eq!(trace.idle_time(0, until + 10.0), 10.0);
    }

    #[test]
    fn idle_before_arrival_counts_from_day_start() {
        let (trace, _) = trace(3);
        assert_eq!(trace.idle_time(0, 50.0), 50.0);
        assert_eq!(trace.last_input_before(0, 50.0), None);
    }

    #[test]
    fn seated_user_rarely_idle_long() {
        let (trace, seated) = trace(4);
        let (start, until) = seated[0];
        // Sample idle time while seated; it should be under 20 s at
        // least 95% of the time (P(idle>15s) = 0.22^3 ≈ 1%).
        let mut long_idles = 0;
        let mut total = 0;
        let mut t = start + 30.0;
        while t < until {
            total += 1;
            if trace.idle_time(0, t) > 20.0 {
                long_idles += 1;
            }
            t += 1.0;
        }
        assert!(
            (long_idles as f64) < 0.05 * total as f64,
            "{long_idles}/{total} long idles"
        );
    }

    #[test]
    fn any_input_in_interval() {
        let trace = InputTrace::from_times(vec![vec![10.0, 20.0, 30.0]]);
        assert!(trace.any_input_in(0, 15.0, 25.0));
        assert!(!trace.any_input_in(0, 21.0, 29.0));
        // Exclusive bounds.
        assert!(!trace.any_input_in(0, 20.0, 20.0));
        assert!(!trace.any_input_in(0, 30.0, 40.0));
    }

    #[test]
    fn from_times_sorts() {
        let trace = InputTrace::from_times(vec![vec![30.0, 10.0, 20.0]]);
        assert_eq!(trace.times(0), &[10.0, 20.0, 30.0]);
        assert_eq!(trace.last_input_before(0, 25.0), Some(20.0));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = trace(10);
        let (b, _) = trace(11);
        assert_ne!(a.times(0), b.times(0));
    }
}
