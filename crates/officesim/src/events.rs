//! Ground-truth movement events.
//!
//! In the paper a human supervisor noted when users stepped away from
//! their workstations and when they entered/exited the office; those
//! notes are the ground truth behind Tables II–III and Figs. 7–10. The
//! behaviour simulator emits the same information as an [`EventLog`].

use crate::layout::WorkstationId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A user entered the office and sat down at their workstation.
    Enter {
        /// The workstation the user sat down at.
        workstation: WorkstationId,
    },
    /// A user left their workstation and exited the office.
    Leave {
        /// The workstation the user departed from.
        workstation: WorkstationId,
    },
}

/// One ground-truth movement event with its timing, all in seconds
/// from the start of its day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovementEvent {
    /// What happened.
    pub kind: EventKind,
    /// Which day of the experiment (0-based).
    pub day: usize,
    /// When the movement begins: stand-up start for a leave, door
    /// crossing for an enter. For a leave this is also the moment of
    /// the user's last input (the paper's worst-case assumption).
    pub t_start: f64,
    /// When the user has left the workstation's vicinity — the paper's
    /// reference time `t` for the security analysis (end of stand-up
    /// for leaves; equals `t_start` for enters).
    pub t_proximity: f64,
    /// When the user crosses the door: exit time for a leave, entry
    /// time for an enter (equal to `t_start` for enters).
    pub t_door: f64,
    /// When the movement ends: out of the office (leave) or seated
    /// (enter).
    pub t_end: f64,
}

impl MovementEvent {
    /// The paper's class label: `0` for `w0` ("entered office"),
    /// `workstation + 1` for "left workstation i".
    pub fn label(&self) -> usize {
        match self.kind {
            EventKind::Enter { .. } => 0,
            EventKind::Leave { workstation } => workstation + 1,
        }
    }

    /// The *true window* `U = [t_start − δ, t_end + δ]` within which MD
    /// should observe a variation window (§V-A).
    pub fn true_window(&self, delta: f64) -> (f64, f64) {
        (self.t_start - delta, self.t_end + delta)
    }

    /// Whether this is a departure (the security-relevant direction).
    pub fn is_leave(&self) -> bool {
        matches!(self.kind, EventKind::Leave { .. })
    }
}

/// The full ground-truth log of an experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventLog {
    events: Vec<MovementEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends an event (kept sorted by day, then start time).
    pub fn push(&mut self, event: MovementEvent) {
        self.events.push(event);
        self.events.sort_by(|a, b| {
            (a.day, a.t_start)
                .partial_cmp(&(b.day, b.t_start))
                .expect("event times are finite")
        });
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[MovementEvent] {
        &self.events
    }

    /// Events of one day, in order.
    pub fn events_on_day(&self, day: usize) -> impl Iterator<Item = &MovementEvent> {
        self.events.iter().filter(move |e| e.day == day)
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events per label `w0..wk` — the paper's Table II.
    pub fn label_counts(&self, n_workstations: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_workstations + 1];
        for e in &self.events {
            counts[e.label()] += 1;
        }
        counts
    }

    /// All departures (the events that create attack opportunities).
    pub fn leaves(&self) -> impl Iterator<Item = &MovementEvent> {
        self.events.iter().filter(|e| e.is_leave())
    }

    /// Smallest gap (seconds) between the movement intervals of any two
    /// consecutive events on the same day; `None` with fewer than two
    /// events. Used to verify the no-overlap property of generated
    /// scenarios (§IV-E).
    pub fn min_event_gap(&self) -> Option<f64> {
        let mut min_gap: Option<f64> = None;
        for pair in self.events.windows(2) {
            if pair[0].day != pair[1].day {
                continue;
            }
            let gap = pair[1].t_start - pair[0].t_end;
            min_gap = Some(min_gap.map_or(gap, |g: f64| g.min(gap)));
        }
        min_gap
    }
}

impl FromIterator<MovementEvent> for EventLog {
    fn from_iter<I: IntoIterator<Item = MovementEvent>>(iter: I) -> EventLog {
        let mut log = EventLog::new();
        for e in iter {
            log.push(e);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leave(day: usize, ws: usize, t: f64) -> MovementEvent {
        MovementEvent {
            kind: EventKind::Leave { workstation: ws },
            day,
            t_start: t,
            t_proximity: t + 1.8,
            t_door: t + 5.0,
            t_end: t + 5.0,
        }
    }

    fn enter(day: usize, ws: usize, t: f64) -> MovementEvent {
        MovementEvent {
            kind: EventKind::Enter { workstation: ws },
            day,
            t_start: t,
            t_proximity: t,
            t_door: t,
            t_end: t + 5.0,
        }
    }

    #[test]
    fn labels_follow_paper_convention() {
        assert_eq!(enter(0, 2, 10.0).label(), 0);
        assert_eq!(leave(0, 0, 10.0).label(), 1);
        assert_eq!(leave(0, 2, 10.0).label(), 3);
    }

    #[test]
    fn true_window_brackets_movement() {
        let e = leave(0, 0, 100.0);
        let (lo, hi) = e.true_window(2.0);
        assert_eq!(lo, 98.0);
        assert_eq!(hi, 107.0);
    }

    #[test]
    fn log_sorts_and_counts() {
        let log: EventLog = vec![
            leave(1, 0, 50.0),
            enter(0, 1, 200.0),
            leave(0, 1, 400.0),
            enter(0, 0, 100.0),
        ]
        .into_iter()
        .collect();
        let times: Vec<(usize, f64)> = log.events().iter().map(|e| (e.day, e.t_start)).collect();
        assert_eq!(times, vec![(0, 100.0), (0, 200.0), (0, 400.0), (1, 50.0)]);
        assert_eq!(log.label_counts(3), vec![2, 1, 1, 0]);
        assert_eq!(log.len(), 4);
        assert_eq!(log.leaves().count(), 2);
        assert_eq!(log.events_on_day(0).count(), 3);
    }

    #[test]
    fn min_gap_same_day_only() {
        let log: EventLog = vec![enter(0, 0, 100.0), leave(0, 0, 200.0), enter(1, 0, 0.0)]
            .into_iter()
            .collect();
        // Gap = 200 - 105 = 95; the cross-day pair is ignored.
        assert_eq!(log.min_event_gap(), Some(95.0));
        assert_eq!(EventLog::new().min_event_gap(), None);
    }
}
