//! End-to-end scenario generation: behaviour + channel → trace.
//!
//! A [`Scenario`] materializes the paper's experiment: five working
//! days, three users, nine sensors, everything seeded. Generating the
//! behaviour is cheap; [`Scenario::simulate`] then runs the RF channel
//! over every tick to produce the [`Trace`] the FADEWICH pipeline
//! consumes.

use fadewich_rfchannel::{Body, BuildChannelError, ChannelParams, ChannelSim};
use fadewich_stats::rng::Rng;

use crate::events::{EventKind, EventLog, MovementEvent};
use crate::input::InputTrace;
use crate::layout::OfficeLayout;
use crate::light::{LightSim, LightSimParams};
use crate::person::MovementKind;
use crate::schedule::{generate_day, DaySchedule, ScheduleError, ScheduleParams};
use crate::trace::{DayTrace, Trace};

/// Everything that defines an experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of working days (paper: 5).
    pub days: usize,
    /// Sampling rate of the sensors (Hz).
    pub tick_hz: f64,
    /// Master seed; every derived stream forks from it.
    pub seed: u64,
    /// Radio channel parameters.
    pub channel: ChannelParams,
    /// Behaviour generator parameters.
    pub schedule: ScheduleParams,
    /// Input activity probability per 5-s slot (paper: 0.78).
    pub activity_probability: f64,
    /// The office geometry (defaults to the paper's Fig. 6 office;
    /// build others with [`OfficeLayout::custom`]).
    pub layout: OfficeLayout,
    /// Ambient-light modality: `None` (the default) records RSSI only
    /// and is bit-identical to the pre-fusion simulator; `Some` appends
    /// one photosensor column per workstation after the link columns,
    /// driven by the same person geometry and an independent seed fork.
    pub light: Option<LightSimParams>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            days: 5,
            tick_hz: 5.0,
            seed: 0xFADE,
            channel: ChannelParams::default(),
            schedule: ScheduleParams::default(),
            activity_probability: crate::input::PAPER_ACTIVITY_PROBABILITY,
            layout: OfficeLayout::paper_office(),
            light: None,
        }
    }
}

impl ScenarioConfig {
    /// A reduced configuration (1 day, lower rate) for tests and
    /// quick benches.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            days: 1,
            schedule: ScheduleParams {
                day_seconds: 2.0 * 3600.0,
                departures_choices: [2, 2, 3, 3],
                min_seated_s: 400.0,
                absence_bounds_s: (90.0, 300.0),
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        }
    }
}

/// Error generating or simulating a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The behaviour generator failed.
    Schedule(ScheduleError),
    /// The channel could not be constructed.
    Channel(BuildChannelError),
    /// The ambient-light parameters are invalid.
    Light(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Schedule(e) => write!(f, "schedule generation failed: {e}"),
            ScenarioError::Channel(e) => write!(f, "channel construction failed: {e}"),
            ScenarioError::Light(e) => write!(f, "light model invalid: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ScheduleError> for ScenarioError {
    fn from(e: ScheduleError) -> Self {
        ScenarioError::Schedule(e)
    }
}

impl From<BuildChannelError> for ScenarioError {
    fn from(e: BuildChannelError) -> Self {
        ScenarioError::Channel(e)
    }
}

/// A generated multi-day experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ScenarioConfig,
    layout: OfficeLayout,
    days: Vec<DaySchedule>,
    events: EventLog,
}

impl Scenario {
    /// Generates user behaviour for every day (no RF simulation yet).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from the behaviour generator.
    pub fn generate(config: ScenarioConfig) -> Result<Scenario, ScenarioError> {
        let layout = config.layout.clone();
        if let Some(light) = &config.light {
            light.validate(layout.n_workstations()).map_err(ScenarioError::Light)?;
        }
        let root = Rng::seed_from_u64(config.seed);
        let mut days = Vec::with_capacity(config.days);
        let mut events = EventLog::new();
        for day in 0..config.days {
            let mut day_rng = root.fork(1000 + day as u64);
            let schedule = generate_day(&layout, &config.schedule, &mut day_rng)?;
            for tl in &schedule.timelines {
                for m in tl.movements() {
                    events.push(MovementEvent {
                        kind: match m.kind {
                            MovementKind::Enter => EventKind::Enter { workstation: m.workstation },
                            MovementKind::Leave => EventKind::Leave { workstation: m.workstation },
                        },
                        day,
                        t_start: m.t_start,
                        t_proximity: m.t_proximity,
                        t_door: m.t_door,
                        t_end: m.t_end,
                    });
                }
            }
            days.push(schedule);
        }
        Ok(Scenario { config, layout, days, events })
    }

    /// The configuration this scenario was generated from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The office geometry.
    pub fn layout(&self) -> &OfficeLayout {
        &self.layout
    }

    /// Ground-truth event log (the "supervisor's notebook").
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Per-day schedules.
    pub fn day_schedules(&self) -> &[DaySchedule] {
        &self.days
    }

    /// Draws one realization of the keyboard/mouse input process for
    /// `day`. Different `draw` values give independent realizations
    /// (Table IV averages 100 of them).
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range.
    pub fn input_trace(&self, day: usize, draw: u64) -> InputTrace {
        let root = Rng::seed_from_u64(self.config.seed);
        let mut rng = root.fork(2000 + day as u64 * 101 + draw * 13_331);
        InputTrace::generate(
            &self.days[day].timelines,
            self.config.activity_probability,
            &mut rng,
        )
    }

    /// Runs the RF channel over every day and returns the recording.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildChannelError`] (only possible with invalid
    /// channel parameters).
    pub fn simulate(&self) -> Result<Trace, ScenarioError> {
        let channel_seed = Rng::seed_from_u64(self.config.seed).fork(42).next_u64();
        let mut sim = ChannelSim::new(
            self.layout.sensors(),
            self.layout.room(),
            self.config.tick_hz,
            self.config.channel,
            channel_seed,
        )?;
        let n_ticks = (self.config.schedule.day_seconds * self.config.tick_hz).round() as usize;
        let n_light = if self.config.light.is_some() { self.layout.n_workstations() } else { 0 };
        let light_root = Rng::seed_from_u64(self.config.seed);
        let mut day_traces = Vec::with_capacity(self.days.len());
        let mut bodies: Vec<Body> = Vec::with_capacity(self.layout.n_workstations());
        let mut row = Vec::with_capacity(sim.n_links() + n_light);
        for (day_idx, schedule) in self.days.iter().enumerate() {
            let mut day = DayTrace::with_capacity(sim.n_links() + n_light, n_ticks);
            // The photosensors draw from their own seed fork, so an
            // RSSI-only consumer of a light-enabled scenario sees the
            // exact bytes the pre-fusion simulator produced.
            let mut light = self.config.light.as_ref().map(|p| {
                LightSim::new(
                    self.layout.workstations().to_vec(),
                    p.clone(),
                    light_root.fork(3000 + day_idx as u64),
                )
            });
            for tick in 0..n_ticks {
                let t = tick as f64 / self.config.tick_hz;
                bodies.clear();
                bodies.extend(schedule.timelines.iter().filter_map(|tl| tl.body_at(t)));
                match &mut light {
                    None => day.push_row(sim.step(&bodies)),
                    Some(lsim) => {
                        row.clear();
                        row.extend_from_slice(sim.step(&bodies));
                        lsim.step_into(&bodies, t, &mut row);
                        day.push_row(&row);
                    }
                }
            }
            day_traces.push(day);
        }
        let link_ids = sim.link_ids().to_vec();
        let link_segments = (0..sim.n_links()).map(|i| sim.link_segment(i)).collect();
        let light_sensors = (0..n_light as u16).collect();
        Ok(Trace::with_light(
            self.config.tick_hz,
            day_traces,
            link_ids,
            link_segments,
            light_sensors,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario(seed: u64) -> Scenario {
        let config = ScenarioConfig { seed, ..ScenarioConfig::small() };
        Scenario::generate(config).unwrap()
    }

    #[test]
    fn generation_produces_events() {
        let s = small_scenario(1);
        assert!(!s.events().is_empty());
        // Every leave has a matching enter for the same workstation
        // earlier in the same day.
        for e in s.events().leaves() {
            let has_enter = s
                .events()
                .events_on_day(e.day)
                .any(|o| !o.is_leave() && o.label() == 0 && o.t_start < e.t_start);
            assert!(has_enter, "leave without a preceding enter: {e:?}");
        }
    }

    #[test]
    fn event_counts_balanced() {
        let s = small_scenario(2);
        let counts = s.events().label_counts(3);
        let enters = counts[0];
        let leaves: usize = counts[1..].iter().sum();
        assert_eq!(enters, leaves, "each presence interval has one enter and one leave");
    }

    #[test]
    fn simulation_shape() {
        let s = small_scenario(3);
        let trace = s.simulate().unwrap();
        assert_eq!(trace.n_streams(), 72);
        assert_eq!(trace.days().len(), 1);
        assert_eq!(
            trace.days()[0].n_ticks(),
            (2.0 * 3600.0 * 5.0) as usize
        );
        // Values are plausible RSSI.
        let v = trace.days()[0].sample(1000, 10);
        assert!((-95.0..-30.0).contains(&v), "rssi = {v}");
    }

    #[test]
    fn simulation_deterministic() {
        let a = small_scenario(4).simulate().unwrap();
        let b = small_scenario(4).simulate().unwrap();
        assert_eq!(a.days()[0].row(5000), b.days()[0].row(5000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_scenario(5).simulate().unwrap();
        let b = small_scenario(6).simulate().unwrap();
        assert_ne!(a.days()[0].row(5000), b.days()[0].row(5000));
    }

    #[test]
    fn input_draws_are_independent_but_reproducible() {
        let s = small_scenario(7);
        let a = s.input_trace(0, 0);
        let b = s.input_trace(0, 0);
        let c = s.input_trace(0, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn custom_layout_scenario() {
        use fadewich_geometry::{Point, Rect};
        // A wider office with four workstations and six wall sensors.
        let room = Rect::with_size(8.0, 4.0);
        let layout = OfficeLayout::custom(
            room,
            OfficeLayout::wall_sensors(room, 6),
            vec![
                Point::new(1.5, 3.0),
                Point::new(4.0, 3.2),
                Point::new(6.5, 3.0),
                Point::new(1.5, 1.0),
            ],
            Point::new(7.6, 0.2),
        )
        .unwrap();
        let config = ScenarioConfig { seed: 21, layout, ..ScenarioConfig::small() };
        let s = Scenario::generate(config).unwrap();
        assert_eq!(s.layout().n_workstations(), 4);
        let counts = s.events().label_counts(4);
        assert_eq!(counts.len(), 5);
        assert!(counts[4] > 0, "w4 must produce events too");
        let trace = s.simulate().unwrap();
        assert_eq!(trace.n_streams(), 6 * 5);
    }

    #[test]
    fn light_columns_append_without_perturbing_rssi() {
        let base = small_scenario(11).simulate().unwrap();
        let config = ScenarioConfig {
            seed: 11,
            light: Some(LightSimParams::default()),
            ..ScenarioConfig::small()
        };
        let fused = Scenario::generate(config).unwrap().simulate().unwrap();
        assert_eq!(fused.n_rssi_streams(), 72);
        assert_eq!(fused.n_streams(), 72 + 3);
        assert_eq!(fused.light_sensors(), &[0, 1, 2]);
        // The RSSI prefix of every row is bit-identical to the
        // light-free simulation — enabling the modality must not
        // perturb the paper's recording.
        for tick in [0usize, 5000, 20000] {
            assert_eq!(&fused.days()[0].row(tick)[..72], base.days()[0].row(tick));
        }
        // Light samples look like desk illuminance, and an occupied
        // desk sits well below the unoccluded baseline somewhere.
        let lux = fused.days()[0].sample(5000, 72);
        assert!((0.0..=600.0).contains(&lux), "lux = {lux}");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for tick in 0..fused.days()[0].n_ticks() {
            let v = fused.days()[0].sample(tick, 72);
            min = min.min(v);
            max = max.max(v);
        }
        assert!(max - min > 100.0, "no occupancy dip: min {min} max {max}");
    }

    #[test]
    fn bad_light_params_rejected() {
        let config = ScenarioConfig {
            light: Some(LightSimParams { mount_factors: vec![1.0], ..Default::default() }),
            ..ScenarioConfig::small()
        };
        match Scenario::generate(config) {
            Err(ScenarioError::Light(msg)) => assert!(msg.contains("mount_factors")),
            other => panic!("expected light validation error, got {other:?}"),
        }
    }

    #[test]
    fn paper_scale_five_days() {
        // Behaviour generation at full scale is cheap; check the event
        // budget tracks the paper (order 100-150 events over 5 days).
        let s = Scenario::generate(ScenarioConfig { seed: 9, ..ScenarioConfig::default() })
            .unwrap();
        let total = s.events().len();
        assert!((90..=180).contains(&total), "events = {total}");
        let counts = s.events().label_counts(3);
        // Leaves spread over the three workstations.
        for ws in 1..=3 {
            assert!(counts[ws] >= 10, "w{ws} leaves = {}", counts[ws]);
        }
    }
}
