//! Property-based tests of the behaviour simulator.

use fadewich_officesim::{InputTrace, OfficeLayout, PersonTimeline};
use fadewich_stats::rng::Rng;
use fadewich_testkit::prop::{f64s, u64s, usizes, vecs};

fadewich_testkit::property! {
    #[cases(24)]
    fn trajectories_respect_walls_and_speed(seed in u64s(0..200), ws in usizes(0..3)) {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(seed);
        let tl = PersonTimeline::build(&layout, ws, &[(50.0, 400.0)], 600.0, &mut rng);
        let mut prev: Option<fadewich_rfchannel::Body> = None;
        let mut t = 45.0;
        while t < 420.0 {
            if let Some(b) = tl.body_at(t) {
                assert!(layout.room().contains(b.position),
                    "body at {} outside the room", b.position);
                assert!((0.0..=1.0).contains(&b.motion));
                if let Some(p) = prev {
                    // max walking speed ~1.6 m/s; at 5 Hz that is 0.32 m
                    // per tick, plus fidget offsets.
                    assert!(p.position.distance_to(b.position) < 0.6);
                }
                prev = Some(b);
            } else {
                prev = None;
            }
            t += 0.2;
        }
    }

    #[cases(24)]
    fn movements_bracket_presence(seed in u64s(0..200), ws in usizes(0..3)) {
        let layout = OfficeLayout::paper_office();
        let mut rng = Rng::seed_from_u64(seed);
        let tl = PersonTimeline::build(&layout, ws, &[(50.0, 400.0)], 600.0, &mut rng);
        let movements = tl.movements();
        assert_eq!(movements.len(), 2);
        let (enter, leave) = (&movements[0], &movements[1]);
        assert_eq!(enter.t_start, 50.0);
        assert_eq!(leave.t_start, 400.0);
        assert!(enter.t_end < leave.t_start);
        assert!(enter.t_end - enter.t_start > 4.5,
            "enter lasts {}", enter.t_end - enter.t_start);
        assert!(leave.t_end - leave.t_start > 4.5);
        assert!(leave.t_proximity > leave.t_start);
        assert!(leave.t_door <= leave.t_end);
    }

    #[cases(24)]
    fn input_trace_queries_are_consistent(
        times in vecs(f64s(0.0..1000.0), 0..50),
        t in f64s(0.0..1100.0),
    ) {
        let trace = InputTrace::from_times(vec![times.clone()]);
        let last = trace.last_input_before(0, t);
        let next = trace.next_input_after(0, t);
        if let Some(l) = last {
            assert!(l <= t);
            assert!(times.contains(&l));
            assert!((trace.idle_time(0, t) - (t - l)).abs() < 1e-12);
        } else {
            assert!((trace.idle_time(0, t) - t).abs() < 1e-12);
        }
        if let Some(n) = next {
            assert!(n > t);
            assert!(times.contains(&n));
        }
        // last and next are adjacent in sorted order.
        if let (Some(l), Some(n)) = (last, next) {
            assert!(!times.iter().any(|&x| x > l && x < n && x > t));
        }
    }
}
