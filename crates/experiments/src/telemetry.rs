//! Decision-latency study over the telemetry audit trail.
//!
//! The paper's headline claim is *fast* deauthentication — FADEWICH
//! deauthenticates most departures within seconds of the movement that
//! betrays them. The audit trail makes that latency directly
//! measurable: every Rule 1 verdict is a span chain rooted at the MD
//! variation-window open, so `verdict tick − window-open tick` is the
//! pipeline's decision latency in logical ticks, free of wall-clock
//! noise. This module replays each online day with a buffering
//! [`Telemetry`] handle, walks the emitted records, and tabulates
//! per-day latency-to-deauth — the `reproduce telemetry` target.
//! Everything here is seed-deterministic: byte-identical output across
//! runs and thread counts.

use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;
use fadewich_telemetry::{Telemetry, Value};

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::report::TextTable;

/// Per-day decision-latency summary, extracted from the audit trail.
#[derive(Debug, Clone)]
pub struct DecisionLatencyRow {
    /// Which recorded day was replayed.
    pub day: usize,
    /// MD variation windows closed during the day.
    pub windows: u64,
    /// Rule 1 evaluations (one per significant window at `t∆`).
    pub evals: u64,
    /// Evaluations that ended in a deauthentication.
    pub deauths: u64,
    /// Latency from window open to deauth, in ticks: min over the day.
    pub min_ticks: u64,
    /// Median latency in ticks.
    pub median_ticks: u64,
    /// Max latency in ticks.
    pub max_ticks: u64,
    /// Median latency in seconds (`median_ticks / tick_hz`).
    pub median_s: f64,
}

/// Replays every online day with an instrumented engine and tabulates
/// the latency from variation-window open to Rule 1 deauthentication.
///
/// # Errors
///
/// Returns a message for an invalid train/online split or when RE
/// training / engine construction fails.
pub fn latency_study(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<Vec<DecisionLatencyRow>, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!("need 1..{} training days, got {train_days}", n_days - 1));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("telemetry::train", || {
        replay::train_re(&experiment.scenario, &experiment.trace, &streams, train_days, &experiment.params)
    })?;
    let hz = experiment.trace.tick_hz();

    let day_rows = timing::time_stage("telemetry::replay", || {
        par::par_map_indices(n_days - train_days, |i| -> Result<_, String> {
            let day = train_days + i;
            let telemetry = Telemetry::buffering();
            let cfg = EngineConfig::new(hz, experiment.params);
            replay::stream_day_with_telemetry(
                &experiment.scenario,
                &experiment.trace,
                &streams,
                &re,
                day,
                cfg,
                &LinkModel::lossless(),
                0xF10D,
                &telemetry,
            )?;

            let mut windows = 0u64;
            let mut evals = 0u64;
            let mut latencies: Vec<u64> = Vec::new();
            for rec in telemetry.records() {
                match rec.name.as_str() {
                    "md_window" => windows += 1,
                    "rule1_verdict" => {
                        evals += 1;
                        let deauthed = matches!(rec.attr("deauth"), Some(Value::Bool(true)));
                        if let (true, Some(Value::U64(start))) =
                            (deauthed, rec.attr("window_start_tick"))
                        {
                            latencies.push(rec.tick.saturating_sub(*start));
                        }
                    }
                    _ => {}
                }
            }
            latencies.sort_unstable();
            let median = latencies.get(latencies.len() / 2).copied().unwrap_or(0);
            Ok(DecisionLatencyRow {
                day,
                windows,
                evals,
                deauths: latencies.len() as u64,
                min_ticks: latencies.first().copied().unwrap_or(0),
                median_ticks: median,
                max_ticks: latencies.last().copied().unwrap_or(0),
                median_s: median as f64 / hz,
            })
        })
    });

    day_rows.into_iter().collect()
}

/// Renders the latency study as the `reproduce telemetry` table.
pub fn latency_table(rows: &[DecisionLatencyRow]) -> TextTable {
    let mut t = TextTable::new(
        "Decision latency from the audit trail (window open -> Rule 1 deauth)",
        &["day", "windows", "rule1 evals", "deauths", "min ticks", "median ticks", "max ticks", "median s"],
    );
    for r in rows {
        t.add_row(vec![
            r.day.to_string(),
            r.windows.to_string(),
            r.evals.to_string(),
            r.deauths.to_string(),
            r.min_ticks.to_string(),
            r.median_ticks.to_string(),
            r.max_ticks.to_string(),
            format!("{:.1}", r.median_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::{ScenarioConfig, ScheduleParams};
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| {
            let config = ScenarioConfig {
                seed: 0xD3B,
                days: 2,
                schedule: ScheduleParams {
                    day_seconds: 2.0 * 3600.0,
                    departures_choices: [3, 3, 4, 4],
                    min_seated_s: 400.0,
                    absence_bounds_s: (90.0, 300.0),
                    ..ScheduleParams::default()
                },
                ..ScenarioConfig::default()
            };
            Experiment::from_config(config, fadewich_core::FadewichParams::default()).unwrap()
        })
    }

    #[test]
    fn study_extracts_consistent_latencies() {
        let rows = latency_study(fixture(), 1, 9).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.windows > 0, "{r:?}");
        assert!(r.evals > 0, "{r:?}");
        assert!(r.deauths <= r.evals, "{r:?}");
        assert!(r.min_ticks <= r.median_ticks && r.median_ticks <= r.max_ticks, "{r:?}");
        let hz = fixture().trace.tick_hz();
        assert!((r.median_s - r.median_ticks as f64 / hz).abs() < 1e-12);
        // Deterministic: the same replay yields the same table.
        let again = latency_study(fixture(), 1, 9).unwrap();
        assert_eq!(latency_table(&rows).render(), latency_table(&again).render());
        assert!(latency_table(&rows).render().contains("median"), "table header");
    }

    #[test]
    fn invalid_split_rejected() {
        assert!(latency_study(fixture(), 0, 9).is_err());
        assert!(latency_study(fixture(), 2, 9).is_err());
    }
}
