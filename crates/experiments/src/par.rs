//! Deterministic parallel task pool on `std::thread::scope`.
//!
//! [`par_map`] fans a slice of independent tasks out over a small
//! worker pool. Workers claim tasks through a shared atomic cursor
//! (work stealing degenerates to work *sharing* with one queue, which
//! is ideal for the coarse per-fold / per-scenario tasks this
//! workspace runs), collect `(index, result)` pairs locally, and the
//! results are merged back **in task-index order**. Combined with
//! per-task RNG streams ([`fadewich_stats::rng::Rng::task_stream`]),
//! output is bit-identical regardless of thread count or scheduling.
//!
//! Thread-count resolution, highest priority first:
//!
//! 1. a [`with_threads`] override (used by determinism tests);
//! 2. the `FADEWICH_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! The [`timing`] submodule accumulates per-stage wall-clock counters
//! so binaries like `reproduce` can report where time went and what
//! parallelism bought.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count override installed by [`with_threads`]; 0 = none.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolves the worker-pool size: override > `FADEWICH_THREADS` >
/// available parallelism, clamped to at least 1.
pub fn thread_count() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("FADEWICH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the pool size pinned to `n` threads.
///
/// Serializes against other `with_threads` callers (the override is
/// process-global, like the environment) and restores the previous
/// value even if `f` panics. Intended for tests that compare serial
/// and parallel runs of the same computation.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static LOCK: Mutex<()> = Mutex::new(());
    let _serialize = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(OVERRIDE.swap(n, Ordering::SeqCst));
    f()
}

/// Maps `f` over `0..n` on the worker pool, returning results in
/// index order.
///
/// `f` must be pure per index (draw randomness from
/// `Rng::task_stream`, not shared state) for the output to be
/// deterministic. Panics in `f` are propagated to the caller after
/// the scope unwinds.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = thread_count().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                Err(p) => panic = Some(p),
            }
        }
    });
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index in 0..n is claimed exactly once"))
        .collect()
}

/// Maps `f` over a slice on the worker pool, returning results in
/// input order. See [`par_map_indices`] for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indices(items.len(), |i| f(i, &items[i]))
}

/// Per-stage wall-clock counters for pipeline observability.
///
/// Counters are process-global and additive: timing the same stage
/// name twice accumulates duration and invocation count. `reproduce`
/// prints [`report`] to stderr so stdout stays byte-stable across
/// thread counts.
pub mod timing {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Duration;

    use fadewich_telemetry::{Clock, WallClock};

    static STAGES: Mutex<BTreeMap<String, (Duration, usize)>> = Mutex::new(BTreeMap::new());

    fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, (Duration, usize)>> {
        STAGES.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f`, charging its wall-clock time to `name` (read through
    /// the telemetry [`Clock`], the workspace's single wall-time seam).
    pub fn time_stage<R>(name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = WallClock.now_ns();
        let r = f();
        record(name, Duration::from_nanos(WallClock.now_ns().saturating_sub(t0)));
        r
    }

    /// Adds an externally measured duration to `name`.
    pub fn record(name: &str, elapsed: Duration) {
        let mut stages = lock();
        let entry = stages.entry(name.to_string()).or_insert((Duration::ZERO, 0));
        entry.0 += elapsed;
        entry.1 += 1;
    }

    /// Clears all counters (start of a fresh measured run).
    pub fn reset() {
        lock().clear();
    }

    /// Returns `(stage, total duration, invocations)` sorted by stage
    /// name.
    pub fn snapshot() -> Vec<(String, Duration, usize)> {
        lock().iter().map(|(k, &(d, n))| (k.clone(), d, n)).collect()
    }

    /// Renders the counters as an aligned text table.
    pub fn report() -> String {
        let snap = snapshot();
        if snap.is_empty() {
            return "no stages timed".to_string();
        }
        let width = snap.iter().map(|(k, _, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, total, calls) in &snap {
            out.push_str(&format!(
                "{name:<width$}  {:>10.3} s  ({calls} call{})\n",
                total.as_secs_f64(),
                if *calls == 1 { "" } else { "s" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::rng::Rng;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || par_map(&items, |i, &x| (i, x * 2)));
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!((*idx, *doubled), (i, i * 2));
            }
        }
    }

    #[test]
    fn par_map_matches_serial_with_task_streams() {
        let draw = |i: usize| {
            let mut rng = Rng::task_stream(0xABCD, i as u64);
            (0..50).map(|_| rng.f64()).sum::<f64>()
        };
        let serial: Vec<f64> = (0..40).map(draw).collect();
        let parallel = with_threads(8, || par_map_indices(40, draw));
        assert_eq!(serial, parallel, "bit-identical across thread counts");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u8], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn nested_par_map_completes() {
        let out = with_threads(4, || {
            par_map_indices(6, |i| par_map_indices(6, move |j| i * 10 + j))
        });
        for (i, row) in out.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, i * 10 + j);
            }
        }
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        with_threads(4, || {
            par_map_indices(8, |i| {
                assert!(i != 3, "task {i} exploded");
                i
            })
        });
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = thread_count();
        let inner = with_threads(3, thread_count);
        assert_eq!(inner, 3);
        assert_eq!(thread_count(), outer);
    }

    #[test]
    fn timing_counters_accumulate() {
        timing::time_stage("par::test_stage", || std::thread::sleep(
            std::time::Duration::from_millis(2),
        ));
        timing::time_stage("par::test_stage", || ());
        let snap = timing::snapshot();
        let (_, total, calls) = snap
            .iter()
            .find(|(name, _, _)| name == "par::test_stage")
            .expect("stage recorded");
        assert_eq!(*calls, 2);
        assert!(*total >= std::time::Duration::from_millis(2));
        assert!(timing::report().contains("par::test_stage"));
    }
}
