//! Reproduction of the paper's tables.
//!
//! Each function returns both the structured numbers and a rendered
//! [`TextTable`], so benches can assert on the data and the
//! `reproduce` binary can print it.

use fadewich_core::features::feature_names;
use fadewich_core::usability::{simulate_day, DayUsability, UsabilityParams};
use fadewich_stats::rmi::{rank_features, RankedFeature, PAPER_BINS};
use fadewich_stats::rng::Rng;

use crate::experiment::{Experiment, SensorRun};
use crate::pipeline::windows_with_predictions;
use crate::report::TextTable;

/// Table II — number of labeled events per class.
pub fn table2(experiment: &Experiment) -> TextTable {
    let counts = experiment
        .scenario
        .events()
        .label_counts(experiment.scenario.layout().n_workstations());
    let mut t = TextTable::new(
        "Table II: labeled events collected during the experiment",
        &["label", "events"],
    );
    for (label, &count) in counts.iter().enumerate() {
        t.add_row(vec![format!("w{label}"), count.to_string()]);
    }
    t.add_row(vec!["total".into(), counts.iter().sum::<usize>().to_string()]);
    t
}

/// Table III — MD detection performance per sensor count at `t∆`.
pub fn table3(experiment: &Experiment, runs: &[SensorRun]) -> TextTable {
    let n_events = experiment.scenario.events().len() as f64;
    let mut t = TextTable::new(
        "Table III: MD performance (TP / FP / FN) per number of sensors",
        &["sensors", "TP", "FP", "FN", "TP frac", "FP frac", "FN frac"],
    );
    for run in runs {
        let c = run.stage.detection.counts;
        t.add_row(vec![
            run.n_sensors.to_string(),
            c.true_positives.to_string(),
            c.false_positives.to_string(),
            c.false_negatives.to_string(),
            format!("{:.2}", c.true_positives as f64 / n_events),
            format!("{:.2}", c.false_positives as f64 / n_events),
            format!("{:.2}", c.false_negatives as f64 / n_events),
        ]);
    }
    t
}

/// The numbers behind one Table IV row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsabilityRow {
    /// Number of sensors.
    pub n_sensors: usize,
    /// Mean spurious screen savers per day.
    pub screensavers_per_day: f64,
    /// Standard deviation over the input draws.
    pub screensavers_sd: f64,
    /// Mean wrongful deauthentications per day.
    pub deauths_per_day: f64,
    /// Standard deviation over the input draws.
    pub deauths_sd: f64,
    /// Mean total user cost per day (seconds).
    pub cost_s_per_day: f64,
}

/// Computes one Table IV row: replay the detected windows against
/// `draws` independent input realizations and average the error
/// counts.
pub fn usability_row(
    experiment: &Experiment,
    run: &SensorRun,
    draws: usize,
    usability: &UsabilityParams,
) -> UsabilityRow {
    let windows_by_day = windows_with_predictions(
        &experiment.trace,
        &run.stage,
        &run.samples,
        &run.predictions,
        &run.streams,
        &experiment.params,
        0xBEEF ^ run.n_sensors as u64,
    );
    let n_days = experiment.trace.days().len();
    let seated: Vec<Vec<Vec<(f64, f64)>>> = (0..n_days)
        .map(|d| {
            experiment.scenario.day_schedules()[d]
                .timelines
                .iter()
                .map(|tl| tl.seated_intervals())
                .collect()
        })
        .collect();
    let mut per_day_ss = Vec::new();
    let mut per_day_deauth = Vec::new();
    for draw in 0..draws {
        let mut total = DayUsability::default();
        for day in 0..n_days {
            let inputs = experiment.scenario.input_trace(day, draw as u64);
            let mut rng = Rng::seed_from_u64(0xCAFE ^ (draw as u64) << 8 ^ day as u64);
            let windows: Vec<_> = windows_by_day[day].iter().map(|(w, _)| *w).collect();
            let preds: Vec<usize> = windows_by_day[day].iter().map(|(_, p)| *p).collect();
            let d = simulate_day(
                &windows,
                &preds,
                &inputs,
                &seated[day],
                &experiment.params,
                usability,
                experiment.trace.tick_hz(),
                &mut rng,
            );
            total.error_screensavers += d.error_screensavers;
            total.error_deauths += d.error_deauths;
        }
        per_day_ss.push(total.error_screensavers as f64 / n_days as f64);
        per_day_deauth.push(total.error_deauths as f64 / n_days as f64);
    }
    let ss = fadewich_stats::metrics::MeanCi::of(&per_day_ss);
    let de = fadewich_stats::metrics::MeanCi::of(&per_day_deauth);
    let ss_sd = fadewich_stats::descriptive::sample_variance(&per_day_ss).sqrt();
    let de_sd = fadewich_stats::descriptive::sample_variance(&per_day_deauth).sqrt();
    UsabilityRow {
        n_sensors: run.n_sensors,
        screensavers_per_day: ss.mean,
        screensavers_sd: ss_sd,
        deauths_per_day: de.mean,
        deauths_sd: de_sd,
        cost_s_per_day: ss.mean * usability.screensaver_cost_s + de.mean * usability.relogin_cost_s,
    }
}

/// Table IV — usability cost per day, per sensor count.
pub fn table4(
    experiment: &Experiment,
    runs: &[SensorRun],
    draws: usize,
) -> (Vec<UsabilityRow>, TextTable) {
    let usability = UsabilityParams::default();
    let rows: Vec<UsabilityRow> =
        runs.iter().map(|run| usability_row(experiment, run, draws, &usability)).collect();
    let mut t = TextTable::new(
        format!("Table IV: usability errors and cost per 8h day ({draws} input draws)"),
        &["sensors", "screen savers/day", "deauths/day", "cost (s)/day"],
    );
    for r in &rows {
        t.add_row(vec![
            r.n_sensors.to_string(),
            format!("{:.3} ({:.2})", r.screensavers_per_day, r.screensavers_sd),
            format!("{:.3} ({:.2})", r.deauths_per_day, r.deauths_sd),
            format!("{:.2}", r.cost_s_per_day),
        ]);
    }
    (rows, t)
}

/// Table V — the top features by relative mutual information.
pub fn table5(experiment: &Experiment, run: &SensorRun, top: usize) -> (Vec<RankedFeature>, TextTable) {
    let matched: Vec<&fadewich_core::TrainingSample> =
        run.samples.per_event.iter().flatten().collect();
    let labels: Vec<usize> = matched.iter().map(|s| s.label).collect();
    let names = feature_names(experiment.trace.link_ids(), &run.streams);
    let n_features = names.len();
    let columns: Vec<Vec<f64>> = (0..n_features)
        .map(|j| matched.iter().map(|s| s.features[j]).collect())
        .collect();
    let ranked = rank_features(&names, &columns, &labels, PAPER_BINS);
    let mut t = TextTable::new(
        format!("Table V: top {top} features by relative mutual information"),
        &["rank", "feature", "RMI"],
    );
    for (i, f) in ranked.iter().take(top).enumerate() {
        t.add_row(vec![(i + 1).to_string(), f.name.clone(), format!("{:.4}", f.rmi)]);
    }
    (ranked, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static (Experiment, Vec<SensorRun>) {
        static FIX: OnceLock<(Experiment, Vec<SensorRun>)> = OnceLock::new();
        FIX.get_or_init(|| {
            let exp = Experiment::small(123).unwrap();
            let runs = exp.sweep(&[3, 9], 3).unwrap();
            (exp, runs)
        })
    }

    #[test]
    fn table2_totals_match_events() {
        let (exp, _) = fixture();
        let t = table2(exp);
        assert_eq!(t.n_rows(), 5); // w0..w3 + total
        let total: usize = t.cell(4, 1).parse().unwrap();
        assert_eq!(total, exp.scenario.events().len());
    }

    #[test]
    fn table3_rows_per_sensor_count() {
        let (exp, runs) = fixture();
        let t = table3(exp, runs);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(0, 0), "3");
        assert_eq!(t.cell(1, 0), "9");
        // TP + FN = number of events for each row.
        let events = exp.scenario.events().len();
        for r in 0..2 {
            let tp: usize = t.cell(r, 1).parse().unwrap();
            let fn_: usize = t.cell(r, 3).parse().unwrap();
            assert_eq!(tp + fn_, events);
        }
    }

    #[test]
    fn table4_costs_are_consistent() {
        let (exp, runs) = fixture();
        let (rows, t) = table4(exp, &runs[1..], 5);
        assert_eq!(rows.len(), 1);
        assert_eq!(t.n_rows(), 1);
        let r = &rows[0];
        let expected = r.screensavers_per_day * 3.0 + r.deauths_per_day * 13.0;
        assert!((r.cost_s_per_day - expected).abs() < 1e-9);
        assert!(r.screensavers_per_day >= 0.0 && r.deauths_per_day >= 0.0);
    }

    #[test]
    fn table5_ranked_descending() {
        let (exp, runs) = fixture();
        let (ranked, t) = table5(exp, &runs[1], 15);
        assert_eq!(t.n_rows(), 15);
        assert_eq!(ranked.len(), 72 * 3);
        for pair in ranked.windows(2) {
            assert!(pair[0].rmi >= pair[1].rmi);
        }
        // The top feature should carry real information.
        assert!(ranked[0].rmi > 0.05, "top RMI = {}", ranked[0].rmi);
    }
}
