//! Reproduction of the paper's data figures.
//!
//! Every function returns structured series (asserted on by benches
//! and integration tests) plus helpers to render them as text.

use fadewich_core::security::{
    attack_opportunities, deauth_outcomes, deauth_proportion_curve, return_times,
    total_vulnerable_minutes, AttackAnalysis, DeauthOutcome, INSIDER_DELAY_S,
};
use fadewich_geometry::FloorGrid;
use fadewich_stats::corr::CorrelationMatrix;
use fadewich_stats::histogram::Histogram;
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::rmi::{rank_features, PAPER_BINS};

use crate::experiment::{Experiment, SensorRun};
use crate::pipeline::{learning_curve, LearningPoint};
use crate::report::TextTable;

/// Fig. 2 — the distribution of the summed window standard deviation
/// `s_t`, split into "nobody moving" and "user walking" regimes.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// `s_t` samples while nobody moves.
    pub normal: Vec<f64>,
    /// `s_t` samples during ground-truth movements.
    pub walking: Vec<f64>,
    /// The 99th percentile of the KDE-smoothed normal distribution.
    pub threshold: f64,
}

/// Computes Fig. 2 from the first day of a run.
pub fn fig2(experiment: &Experiment, run: &SensorRun) -> Fig2Data {
    let st = &run.stage.runs[0].st_series;
    let hz = experiment.trace.tick_hz();
    let day_events: Vec<(usize, usize)> = experiment
        .scenario
        .events()
        .events_on_day(0)
        .map(|e| {
            (
                experiment.trace.tick_of(e.t_start),
                experiment.trace.tick_of(e.t_end),
            )
        })
        .collect();
    let warmup = (experiment.params.profile_init_s * hz) as usize + 50;
    let mut normal = Vec::new();
    let mut walking = Vec::new();
    for (tick, &s) in st.iter().enumerate().skip(warmup) {
        if day_events.iter().any(|&(a, b)| tick >= a && tick <= b) {
            walking.push(s);
        } else {
            normal.push(s);
        }
    }
    let threshold = GaussianKde::fit(&normal)
        .map(|kde| kde.quantile(1.0 - experiment.params.alpha / 100.0))
        .unwrap_or(f64::NAN);
    Fig2Data { normal, walking, threshold }
}

impl Fig2Data {
    /// Renders the two distributions as a shared-axis ASCII histogram.
    pub fn render(&self) -> String {
        let lo = fadewich_stats::descriptive::min(&self.normal).unwrap_or(0.0);
        let hi = fadewich_stats::descriptive::max(&self.walking)
            .unwrap_or(1.0)
            .max(fadewich_stats::descriptive::max(&self.normal).unwrap_or(1.0));
        let bins = 30;
        let mut h_normal = Histogram::new(lo, hi + 1e-9, bins);
        let mut h_walk = Histogram::new(lo, hi + 1e-9, bins);
        for &x in &self.normal {
            h_normal.add(x);
        }
        for &x in &self.walking {
            h_walk.add(x);
        }
        let pn = h_normal.probabilities();
        let pw = h_walk.probabilities();
        let pmax = pn.iter().chain(&pw).copied().fold(0.0, f64::max);
        let mut out = String::from(
            "== Fig 2: distribution of the summed std-dev (normal '.' vs walking '#') ==\n",
        );
        out.push_str(&format!("99th-percentile threshold = {:.1}\n", self.threshold));
        for i in 0..bins {
            let bar = |p: f64, c: char| -> String {
                let len = if pmax > 0.0 { (p / pmax * 40.0).round() as usize } else { 0 };
                std::iter::repeat(c).take(len).collect()
            };
            out.push_str(&format!(
                "{:7.1}  {:<40}  {:<40}\n",
                h_normal.bin_center(i),
                bar(pn[i], '.'),
                bar(pw[i], '#'),
            ));
        }
        out
    }
}

/// Fig. 7 — MD F-measure as a function of `t∆`, per sensor count.
///
/// Windows do not depend on `t∆` (only the significance filter does),
/// so the sweep reuses each run's raw windows.
pub fn fig7(
    experiment: &Experiment,
    runs: &[SensorRun],
    t_deltas: &[f64],
) -> Vec<(usize, Vec<(f64, f64)>)> {
    let hz = experiment.trace.tick_hz();
    runs.iter()
        .map(|run| {
            let series = t_deltas
                .iter()
                .map(|&td| {
                    let ticks = (td * hz).round().max(1.0) as usize;
                    let significant: Vec<Vec<_>> = run
                        .stage
                        .runs
                        .iter()
                        .map(|r| r.significant_windows(ticks))
                        .collect();
                    let detection = fadewich_core::security::evaluate_detection(
                        &significant,
                        experiment.scenario.events(),
                        hz,
                        &experiment.params,
                    );
                    (td, detection.counts.f_measure())
                })
                .collect();
            (run.n_sensors, series)
        })
        .collect()
}

/// Fig. 8 — RE classification accuracy vs training-set size, per
/// sensor count.
pub fn fig8(
    runs: &[SensorRun],
    train_sizes: &[usize],
    repeats: usize,
) -> Vec<(usize, Vec<LearningPoint>)> {
    runs.iter()
        .map(|run| {
            (
                run.n_sensors,
                learning_curve(&run.samples, train_sizes, 5, repeats, 0xF16_8 ^ run.n_sensors as u64),
            )
        })
        .collect()
}

/// Per-departure outcomes of one run under the Fig. 5 decision tree.
pub fn outcomes_for_run(experiment: &Experiment, run: &SensorRun) -> Vec<DeauthOutcome> {
    deauth_outcomes(
        &run.stage.detection,
        &run.predictions,
        experiment.scenario.events(),
        &experiment.params,
        experiment.trace.tick_hz(),
    )
}

/// The all-timeout baseline outcomes (no FADEWICH, only `T`).
pub fn timeout_outcomes(experiment: &Experiment) -> Vec<DeauthOutcome> {
    let events = experiment.scenario.events();
    let n_days = experiment.trace.days().len();
    let empty: Vec<Vec<fadewich_core::VariationWindow>> = vec![Vec::new(); n_days];
    let detection = fadewich_core::security::evaluate_detection(
        &empty,
        events,
        experiment.trace.tick_hz(),
        &experiment.params,
    );
    let none = vec![None; events.len()];
    deauth_outcomes(&detection, &none, events, &experiment.params, experiment.trace.tick_hz())
}

/// Fig. 9 — percentage of departures deauthenticated within each
/// elapsed time, per sensor count.
pub fn fig9(
    experiment: &Experiment,
    runs: &[SensorRun],
    time_points: &[f64],
) -> Vec<(usize, Vec<(f64, f64)>)> {
    runs.iter()
        .map(|run| {
            let outcomes = outcomes_for_run(experiment, run);
            (run.n_sensors, deauth_proportion_curve(&outcomes, time_points))
        })
        .collect()
}

/// One Fig. 10 bar: opportunities for both adversaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// `None` is the timeout baseline row.
    pub n_sensors: Option<usize>,
    /// The analysis counts.
    pub attacks: AttackAnalysis,
}

/// Fig. 10 — attack opportunities per sensor count, plus the timeout
/// baseline.
pub fn fig10(experiment: &Experiment, runs: &[SensorRun]) -> Vec<Fig10Row> {
    let events = experiment.scenario.events();
    let mut rows = vec![Fig10Row {
        n_sensors: None,
        attacks: attack_opportunities(&timeout_outcomes(experiment), events, INSIDER_DELAY_S),
    }];
    for run in runs {
        let outcomes = outcomes_for_run(experiment, run);
        rows.push(Fig10Row {
            n_sensors: Some(run.n_sensors),
            attacks: attack_opportunities(&outcomes, events, INSIDER_DELAY_S),
        });
    }
    rows
}

/// Renders Fig. 10 as a table.
pub fn fig10_table(rows: &[Fig10Row]) -> TextTable {
    let mut t = TextTable::new(
        "Fig 10: attack opportunities (% of office exits)",
        &["deployment", "insider %", "co-worker %", "exits"],
    );
    for r in rows {
        t.add_row(vec![
            r.n_sensors.map_or("timeout".to_string(), |n| format!("{n} sensors")),
            format!("{:.1}", r.attacks.insider_pct()),
            format!("{:.1}", r.attacks.coworker_pct()),
            r.attacks.n_exits.to_string(),
        ]);
    }
    t
}

/// Fig. 11 — correlation matrix of the per-stream variance features
/// across samples, with the paper's qualitative check: streams
/// anchored at a common sensor correlate more than disjoint ones.
#[derive(Debug, Clone)]
pub struct Fig11Data {
    /// The full correlation matrix (one row/column per stream).
    pub matrix: CorrelationMatrix,
    /// Mean |r| over stream pairs sharing a sensor.
    pub mean_abs_shared: f64,
    /// Mean |r| over stream pairs with four distinct sensors.
    pub mean_abs_disjoint: f64,
}

/// Computes Fig. 11 from a run's matched samples.
pub fn fig11(experiment: &Experiment, run: &SensorRun) -> Fig11Data {
    let matched: Vec<&fadewich_core::TrainingSample> =
        run.samples.per_event.iter().flatten().collect();
    let link_ids = experiment.trace.link_ids();
    let names: Vec<String> =
        run.streams.iter().map(|&s| link_ids[s].stream_name()).collect();
    // Variance feature is index 0 of each stream's triple.
    let columns: Vec<Vec<f64>> = (0..run.streams.len())
        .map(|j| matched.iter().map(|s| s.features[j * 3]).collect())
        .collect();
    let matrix = CorrelationMatrix::compute(&names, &columns);
    let mut shared = Vec::new();
    let mut disjoint = Vec::new();
    for i in 0..run.streams.len() {
        for j in (i + 1)..run.streams.len() {
            let a = link_ids[run.streams[i]];
            let b = link_ids[run.streams[j]];
            let r = matrix.get(i, j).abs();
            if a.tx == b.tx || a.tx == b.rx || a.rx == b.tx || a.rx == b.rx {
                shared.push(r);
            } else {
                disjoint.push(r);
            }
        }
    }
    Fig11Data {
        matrix,
        mean_abs_shared: fadewich_stats::descriptive::mean(&shared),
        mean_abs_disjoint: fadewich_stats::descriptive::mean(&disjoint),
    }
}

impl Fig11Data {
    /// Renders the summary plus the strongest pairs.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig 11: correlations between stream variances ==\n");
        out.push_str(&format!(
            "mean |r|: streams sharing a sensor = {:.3}, disjoint streams = {:.3}\n",
            self.mean_abs_shared, self.mean_abs_disjoint
        ));
        out.push_str("strongest off-diagonal pairs:\n");
        for (i, j, r) in self.matrix.strongest_pairs(10) {
            out.push_str(&format!(
                "  {} ~ {}  r = {:+.3}\n",
                self.matrix.names()[i],
                self.matrix.names()[j],
                r
            ));
        }
        out
    }
}

/// Fig. 12 — stream importance (RMI) painted onto the floor plan.
#[derive(Debug, Clone)]
pub struct Fig12Data {
    /// Accumulated importance per floor cell.
    pub grid: FloorGrid,
    /// Per-stream RMI (max over the stream's three features).
    pub stream_rmi: Vec<(String, f64)>,
}

/// Computes Fig. 12 from a run's matched samples.
pub fn fig12(experiment: &Experiment, run: &SensorRun) -> Fig12Data {
    let matched: Vec<&fadewich_core::TrainingSample> =
        run.samples.per_event.iter().flatten().collect();
    let labels: Vec<usize> = matched.iter().map(|s| s.label).collect();
    let names = fadewich_core::features::feature_names(experiment.trace.link_ids(), &run.streams);
    let columns: Vec<Vec<f64>> = (0..names.len())
        .map(|j| matched.iter().map(|s| s.features[j]).collect())
        .collect();
    let ranked = rank_features(&names, &columns, &labels, PAPER_BINS);
    let rmi_by_name: std::collections::HashMap<&str, f64> =
        ranked.iter().map(|f| (f.name.as_str(), f.rmi)).collect();
    let link_ids = experiment.trace.link_ids();
    let mut grid = FloorGrid::new(experiment.scenario.layout().room(), 60, 24);
    let mut stream_rmi = Vec::new();
    for (idx, &s) in run.streams.iter().enumerate() {
        let stream = link_ids[s].stream_name();
        let rmi = fadewich_core::features::FEATURE_SUFFIXES
            .iter()
            .filter_map(|suffix| rmi_by_name.get(format!("{stream}-{suffix}").as_str()))
            .copied()
            .fold(0.0f64, f64::max);
        grid.deposit_segment(&experiment.trace.link_segments()[run.streams[idx]], rmi);
        stream_rmi.push((stream, rmi));
    }
    stream_rmi.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite RMI"));
    Fig12Data { grid, stream_rmi }
}

impl Fig12Data {
    /// Renders the heatmap and the most/least informative streams.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "== Fig 12: stream importance (RMI) on the office floor plan ==\n",
        );
        out.push_str(&self.grid.render_ascii());
        out.push_str("most informative streams:\n");
        for (name, rmi) in self.stream_rmi.iter().take(5) {
            out.push_str(&format!("  {name}: {rmi:.3}\n"));
        }
        out.push_str("least informative streams:\n");
        for (name, rmi) in self.stream_rmi.iter().rev().take(5) {
            out.push_str(&format!("  {name}: {rmi:.3}\n"));
        }
        out
    }
}

/// One Fig. 13 point: security (vulnerable minutes) vs usability cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Row {
    /// `None` is the timeout baseline.
    pub n_sensors: Option<usize>,
    /// Total minutes workstations sat unattended-and-authenticated.
    pub vulnerable_minutes: f64,
    /// Total user cost in minutes over the monitored period.
    pub cost_minutes: f64,
}

/// Fig. 13 — vulnerable time vs total user cost, timeout baseline
/// included. `cost_rows` come from [`crate::tables::table4`].
pub fn fig13(
    experiment: &Experiment,
    runs: &[SensorRun],
    cost_rows: &[crate::tables::UsabilityRow],
) -> Vec<Fig13Row> {
    let events = experiment.scenario.events();
    let n_days = experiment.trace.days().len() as f64;
    let baseline = timeout_outcomes(experiment);
    let returns = return_times(&baseline, events);
    let mut rows = vec![Fig13Row {
        n_sensors: None,
        vulnerable_minutes: total_vulnerable_minutes(&baseline, events, &returns),
        cost_minutes: 0.0,
    }];
    for run in runs {
        let outcomes = outcomes_for_run(experiment, run);
        let returns = return_times(&outcomes, events);
        let cost = cost_rows
            .iter()
            .find(|r| r.n_sensors == run.n_sensors)
            .map_or(0.0, |r| r.cost_s_per_day * n_days / 60.0);
        rows.push(Fig13Row {
            n_sensors: Some(run.n_sensors),
            vulnerable_minutes: total_vulnerable_minutes(&outcomes, events, &returns),
            cost_minutes: cost,
        });
    }
    rows
}

/// Renders Fig. 13 as a table.
pub fn fig13_table(rows: &[Fig13Row]) -> TextTable {
    let mut t = TextTable::new(
        "Fig 13: vulnerable time vs total user cost (whole monitored period)",
        &["deployment", "vulnerable (min)", "cost (min)"],
    );
    for r in rows {
        t.add_row(vec![
            r.n_sensors.map_or("timeout".to_string(), |n| format!("{n} sensors")),
            format!("{:.2}", r.vulnerable_minutes),
            format!("{:.2}", r.cost_minutes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static (Experiment, Vec<SensorRun>) {
        static FIX: OnceLock<(Experiment, Vec<SensorRun>)> = OnceLock::new();
        FIX.get_or_init(|| {
            let exp = Experiment::small(123).unwrap();
            let runs = exp.sweep(&[3, 9], 3).unwrap();
            (exp, runs)
        })
    }

    #[test]
    fn fig2_separates_regimes() {
        let (exp, runs) = fixture();
        let data = fig2(exp, &runs[1]);
        assert!(!data.normal.is_empty() && !data.walking.is_empty());
        let mn = fadewich_stats::descriptive::mean(&data.normal);
        let mw = fadewich_stats::descriptive::mean(&data.walking);
        assert!(mw > 1.3 * mn, "walking {mw} should dominate normal {mn}");
        assert!(data.threshold > mn);
        assert!(!data.render().is_empty());
    }

    #[test]
    fn fig7_f_measure_peaks_in_plausible_range() {
        let (exp, runs) = fixture();
        let t_deltas: Vec<f64> = (4..=16).map(|i| i as f64 * 0.5).collect();
        let series = fig7(exp, runs, &t_deltas);
        assert_eq!(series.len(), 2);
        let nine = &series[1].1;
        let best = nine
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (3.0..=6.5).contains(&best.0),
            "9-sensor F-measure should peak near the walk duration, got t_delta = {}",
            best.0
        );
        // F at the peak is meaningfully high.
        assert!(best.1 > 0.7, "peak F = {}", best.1);
    }

    #[test]
    fn fig9_curves_monotone_and_bounded() {
        let (exp, runs) = fixture();
        let pts: Vec<f64> = (0..=20).map(|i| i as f64 * 0.5).collect();
        for (_, curve) in fig9(exp, runs, &pts) {
            for pair in curve.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
            for (_, pct) in &curve {
                assert!((0.0..=100.0).contains(pct));
            }
        }
    }

    #[test]
    fn fig10_timeout_is_always_vulnerable() {
        let (exp, runs) = fixture();
        let rows = fig10(exp, runs);
        assert_eq!(rows[0].n_sensors, None);
        assert_eq!(rows[0].attacks.coworker_pct(), 100.0);
        assert_eq!(rows[0].attacks.insider_pct(), 100.0);
        // More sensors -> no more opportunities than the baseline.
        for r in &rows[1..] {
            assert!(r.attacks.coworker_opportunities <= rows[0].attacks.coworker_opportunities);
            // The insider is never better off than the co-worker.
            assert!(r.attacks.insider_opportunities <= r.attacks.coworker_opportunities);
        }
        assert!(fig10_table(&rows).n_rows() == rows.len());
    }

    #[test]
    fn fig11_shared_streams_correlate_more() {
        let (exp, runs) = fixture();
        let data = fig11(exp, &runs[1]);
        assert_eq!(data.matrix.len(), 72);
        assert!(
            data.mean_abs_shared > data.mean_abs_disjoint,
            "shared {} vs disjoint {}",
            data.mean_abs_shared,
            data.mean_abs_disjoint
        );
        assert!(!data.render().is_empty());
    }

    #[test]
    fn fig12_grid_has_structure() {
        let (exp, runs) = fixture();
        let data = fig12(exp, &runs[1]);
        assert!(data.grid.max_value() > 0.0);
        assert_eq!(data.stream_rmi.len(), 72);
        // Sorted descending.
        for pair in data.stream_rmi.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert!(data.render().contains("Fig 12"));
    }

    #[test]
    fn fig13_more_sensors_less_vulnerable() {
        let (exp, runs) = fixture();
        let (cost_rows, _) = crate::tables::table4(exp, runs, 3);
        let rows = fig13(exp, runs, &cost_rows);
        assert_eq!(rows.len(), 3);
        let timeout = rows[0].vulnerable_minutes;
        let nine = rows[2].vulnerable_minutes;
        assert!(nine < timeout, "9 sensors {nine} should beat timeout {timeout}");
        assert_eq!(rows[0].cost_minutes, 0.0);
        assert!(fig13_table(&rows).n_rows() == 3);
    }
}
