//! Ablation studies beyond the paper's headline results.
//!
//! The paper's §VIII-A lists open questions — different sensor
//! placements, other parameters — that our simulator can answer
//! cheaply. Each ablation regenerates a table the `reproduce` binary
//! prints alongside the paper's own.

use fadewich_core::security::evaluate_detection;
use fadewich_stats::rng::Rng;
use fadewich_svm::{cv, Kernel, NearestCentroid, SmoParams};

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::pipeline::cross_validated_predictions;
use crate::report::TextTable;

/// Placement ablation: detection recall of the documented greedy
/// order vs a random order vs a wall-clustered (worst-practice) order,
/// for growing sensor counts.
pub fn placement_ablation(experiment: &Experiment, ns: &[usize]) -> Result<TextTable, String> {
    let greedy = fadewich_officesim::layout::SUBSET_ORDER;
    let mut random = greedy;
    Rng::seed_from_u64(0xAB1A).shuffle(&mut random);
    // All sensors from the north wall first, then clockwise: links hug
    // the walls instead of crossing the room.
    let clustered: [usize; 9] = [1, 2, 3, 4, 0, 5, 6, 7, 8];
    let mut t = TextTable::new(
        "Ablation: sensor placement order vs MD recall",
        &["sensors", "greedy", "random", "wall-clustered"],
    );
    // One task per (sensor count, placement order) cell of the grid.
    let orders = [&greedy, &random, &clustered];
    let cells: Vec<(usize, usize)> = ns
        .iter()
        .flat_map(|&n| (0..orders.len()).map(move |oi| (n, oi)))
        .collect();
    let recalls = timing::time_stage("ablations::placement", || {
        par::par_map(&cells, |_, &(n, oi)| -> Result<f64, String> {
            let mut subset = orders[oi][..n].to_vec();
            subset.sort_unstable();
            let run = experiment.run_for_subset(&subset, 5)?;
            Ok(run.stage.detection.counts.recall())
        })
    });
    let mut recalls = recalls.into_iter();
    for &n in ns {
        let mut row = vec![n.to_string()];
        for _ in &orders {
            row.push(format!("{:.2}", recalls.next().expect("cell per task")?));
        }
        t.add_row(row);
    }
    Ok(t)
}

/// MD parameter ablation: α, batch size and τ against TP/FP/FN at a
/// fixed deployment.
pub fn md_param_ablation(experiment: &Experiment, n_sensors: usize) -> Result<TextTable, String> {
    let mut t = TextTable::new(
        format!("Ablation: MD parameters at {n_sensors} sensors"),
        &["alpha", "batch b", "tau", "TP", "FP", "FN"],
    );
    let base = experiment.params;
    let variants = [
        (0.5, base.batch_size, base.tau),
        (1.0, base.batch_size, base.tau),
        (2.0, base.batch_size, base.tau),
        (5.0, base.batch_size, base.tau),
        (1.0, 50, base.tau),
        (1.0, 200, base.tau),
        (1.0, base.batch_size, 0.02),
        (1.0, base.batch_size, 0.3),
    ];
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    // Each parameter variant reruns MD over every day; fan the
    // variants out and keep the table rows in declaration order.
    let rows = timing::time_stage("ablations::md_params", || {
        par::par_map(&variants, |_, &(alpha, batch, tau)| -> Result<_, String> {
            let params = fadewich_core::FadewichParams { alpha, batch_size: batch, tau, ..base };
            let significant = par::par_map(experiment.trace.days(), |_, day| {
                fadewich_core::md::run_md_over_day(
                    day,
                    &streams,
                    experiment.trace.tick_hz(),
                    params,
                )
                .map(|run| {
                    run.significant_windows(params.t_delta_ticks(experiment.trace.tick_hz()))
                })
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            let detection = evaluate_detection(
                &significant,
                experiment.scenario.events(),
                experiment.trace.tick_hz(),
                &params,
            );
            let c = detection.counts;
            Ok(vec![
                format!("{alpha}"),
                batch.to_string(),
                format!("{tau}"),
                c.true_positives.to_string(),
                c.false_positives.to_string(),
                c.false_negatives.to_string(),
            ])
        })
    });
    for row in rows {
        t.add_row(row?);
    }
    Ok(t)
}

/// Classifier ablation: linear SVM (the default) vs RBF vs a
/// nearest-centroid baseline, cross-validated on the same samples.
pub fn classifier_ablation(experiment: &Experiment, n_sensors: usize) -> Result<TextTable, String> {
    let run = experiment.run_for_sensors(n_sensors, 5)?;
    let (_, linear) = cross_validated_predictions(&run.samples, 5, Some(Kernel::Linear), 1);
    let matched: Vec<&fadewich_core::TrainingSample> =
        run.samples.per_event.iter().flatten().collect();
    let xs: Vec<Vec<f64>> = matched.iter().map(|s| s.features.clone()).collect();
    let rbf_kernel = Kernel::rbf_scale(&xs);
    let (_, rbf) = cross_validated_predictions(&run.samples, 5, Some(rbf_kernel), 1);
    // Nearest-centroid with the same folds.
    let labels: Vec<usize> = matched.iter().map(|s| s.label).collect();
    let mut rng = Rng::seed_from_u64(1);
    let folds = cv::stratified_k_fold(&labels, 5, &mut rng);
    let mut correct = 0usize;
    for fold in &folds {
        let train_xs: Vec<Vec<f64>> = fold.train.iter().map(|&i| xs[i].clone()).collect();
        let train_ys: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
        if let Ok(nc) = NearestCentroid::train(&train_xs, &train_ys) {
            correct += fold
                .test
                .iter()
                .filter(|&&i| nc.predict(&xs[i]) == labels[i])
                .count();
        }
    }
    let centroid = correct as f64 / matched.len() as f64;
    let _ = SmoParams::default();
    let mut t = TextTable::new(
        format!("Ablation: RE classifier at {n_sensors} sensors (5-fold CV accuracy)"),
        &["classifier", "accuracy"],
    );
    t.add_row(vec!["linear SVM (default)".into(), format!("{linear:.3}")]);
    t.add_row(vec!["RBF SVM (gamma=scale)".into(), format!("{rbf:.3}")]);
    t.add_row(vec!["nearest centroid".into(), format!("{centroid:.3}")]);
    Ok(t)
}

/// Overlap stress: regenerate the scenario *without* movement
/// de-confliction and report how detection degrades — the situation
/// §IV-E declares out of the classifier's scope, handled only by the
/// conservative Noisy-state rules.
pub fn overlap_stress(seed: u64) -> Result<TextTable, String> {
    use fadewich_officesim::{ScenarioConfig, ScheduleParams};
    let mut config = ScenarioConfig {
        seed,
        ..ScenarioConfig::small()
    };
    config.schedule = ScheduleParams { min_event_separation_s: 0.0, ..config.schedule };
    // Generating + simulating a scenario dominates; build both
    // experiments concurrently.
    let mut experiments = timing::time_stage("ablations::overlap_stress", || {
        par::par_map_indices(2, |i| {
            if i == 0 {
                Experiment::from_config(config.clone(), fadewich_core::FadewichParams::default())
            } else {
                Experiment::small(seed)
            }
        })
    });
    let clean_exp = experiments.pop().expect("two experiments built")?;
    let overlap_exp = experiments.pop().expect("two experiments built")?;
    let mut t = TextTable::new(
        "Ablation: overlap stress (no movement de-confliction)",
        &["scenario", "events", "min gap (s)", "TP", "FP", "FN", "RE acc"],
    );
    for (name, exp) in [("clean", &clean_exp), ("overlapping", &overlap_exp)] {
        let run = exp.run_for_sensors(9, 3)?;
        let c = run.stage.detection.counts;
        t.add_row(vec![
            name.to_string(),
            exp.scenario.events().len().to_string(),
            exp.scenario
                .events()
                .min_event_gap()
                .map_or("-".to_string(), |g| format!("{g:.1}")),
            c.true_positives.to_string(),
            c.false_positives.to_string(),
            c.false_negatives.to_string(),
            format!("{:.2}", run.accuracy),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| Experiment::small(123).unwrap())
    }

    #[test]
    fn placement_table_shape() {
        let t = placement_ablation(fixture(), &[3, 5]).unwrap();
        assert_eq!(t.n_rows(), 2);
        // Recall cells parse as fractions.
        for r in 0..2 {
            for c in 1..4 {
                let v: f64 = t.cell(r, c).parse().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn md_params_affect_detection() {
        let t = md_param_ablation(fixture(), 9).unwrap();
        assert_eq!(t.n_rows(), 8);
        // A looser alpha (5.0) must not produce fewer FPs than the
        // tightest (0.5) — more of the distribution counts as anomalous.
        let fp_tight: usize = t.cell(0, 4).parse().unwrap();
        let fp_loose: usize = t.cell(3, 4).parse().unwrap();
        assert!(fp_loose >= fp_tight, "alpha=5 FPs {fp_loose} < alpha=0.5 FPs {fp_tight}");
    }

    #[test]
    fn classifier_comparison_runs() {
        let t = classifier_ablation(fixture(), 9).unwrap();
        assert_eq!(t.n_rows(), 3);
        let linear: f64 = t.cell(0, 1).parse().unwrap();
        assert!(linear > 0.3);
    }

    #[test]
    fn overlap_stress_runs() {
        let t = overlap_stress(55).unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
