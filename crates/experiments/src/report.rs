//! Plain-text rendering of tables and figure data.
//!
//! The `reproduce` binary prints every regenerated table and figure as
//! aligned ASCII; the same structures can be dumped as CSV for
//! plotting.

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row-major), for tests.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders an XY series as a crude ASCII line chart (one row per
/// point), for the `reproduce` binary's figure output.
pub fn render_series(title: &str, series: &[(String, Vec<(f64, f64)>)], y_width: usize) -> String {
    let mut out = format!("== {title} ==\n");
    let max_y = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .fold(f64::NEG_INFINITY, f64::max);
    for (name, pts) in series {
        out.push_str(&format!("-- {name} --\n"));
        for &(x, y) in pts {
            let bar_len = if max_y > 0.0 {
                ((y / max_y) * y_width as f64).round().max(0.0) as usize
            } else {
                0
            };
            out.push_str(&format!("{x:8.2}  {y:10.4}  {}\n", "#".repeat(bar_len)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TextTable {
        let mut t = TextTable::new("Demo", &["n", "value"]);
        t.add_row(vec!["3".into(), "0.47".into()]);
        t.add_row(vec!["9".into(), "0.95".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample_table().render();
        assert!(r.contains("== Demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("n") && lines[1].contains("value"));
        assert!(lines[3].trim_start().starts_with('3'));
    }

    #[test]
    fn csv_roundtrip_basics() {
        let csv = sample_table().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "n,value");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("x", &["a"]);
        t.add_row(vec!["1,5".into()]);
        assert!(t.to_csv().contains("\"1,5\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        sample_table().add_row(vec!["only-one".into()]);
    }

    #[test]
    fn series_rendering() {
        let s = render_series(
            "F-measure",
            &[("3 sensors".into(), vec![(2.0, 0.5), (4.5, 0.9)])],
            20,
        );
        assert!(s.contains("F-measure"));
        assert!(s.contains("3 sensors"));
        assert!(s.contains('#'));
    }

    #[test]
    fn accessors() {
        let t = sample_table();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.title(), "Demo");
        assert_eq!(t.cell(1, 1), "0.95");
        assert!(!format!("{t}").is_empty());
    }
}
