//! Crash-recovery study: kill the streaming engine mid-day, resume
//! from the newest on-disk checkpoint, and check the stitched
//! decision stream against an uninterrupted run.
//!
//! For every online day the engine is crashed at 25%, 50% and 75% of
//! the day's deliveries (over the same lossy link the streaming
//! comparison uses), resumed from the checkpoint store, and the
//! pre-crash action prefix plus the post-resume log is compared —
//! `Debug`-formatted, so byte for byte — against the reference run,
//! along with the deterministic counter summary. All reported fields
//! are seed-deterministic, so the `reproduce` table stays
//! byte-identical across thread counts; the checkpoint files
//! themselves live in a scratch directory that is removed afterwards.

use std::path::PathBuf;

use fadewich_runtime::checkpoint::CheckpointStore;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::report::TextTable;
use crate::streaming::stress_link;

/// One crash/resume cycle of one online day.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Which recorded day was crashed and resumed.
    pub day: usize,
    /// Fraction of the day's deliveries ingested before the crash.
    pub crash_fraction: f64,
    /// Delivery index the crash was injected at.
    pub crash_delivery: u64,
    /// Delivery position the surviving checkpoint put the resume at
    /// (always `<= crash_delivery`; 0 means no checkpoint survived
    /// and the day was restarted cold).
    pub resumed_from: u64,
    /// Checkpoint files left on disk after the cycle (the store
    /// retains the newest two).
    pub checkpoints_kept: usize,
    /// Corrupt checkpoint files skipped at load (0 in this study —
    /// fault injection is exercised by the runtime's own tests).
    pub rejected: usize,
    /// Whether the stitched action log (pre-crash prefix + resumed
    /// log) is byte-identical to the uninterrupted run's.
    pub action_parity: bool,
    /// Whether the resumed run's deterministic counter summary equals
    /// the uninterrupted run's.
    pub counter_parity: bool,
}

/// Scratch directory for one crash cycle's checkpoint store; unique
/// per process and cycle so parallel workers never collide.
fn scratch_dir(day: usize, pct: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fadewich-recovery-{}-d{day}-p{pct}",
        std::process::id()
    ))
}

/// Crashes and resumes every online day of `experiment` at 25/50/75%
/// of its deliveries and reports whether the stitched output matches
/// the uninterrupted reference.
///
/// # Errors
///
/// Returns a message for an invalid train/online split, RE training
/// failure, or any checkpoint save/load/resume failure (none of which
/// are expected on a healthy filesystem).
pub fn recovery_study(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<Vec<RecoveryRow>, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!("need 1..{} training days, got {train_days}", n_days - 1));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("recovery::train", || {
        replay::train_re(&experiment.scenario, &experiment.trace, &streams, train_days, &experiment.params)
    })?;

    let link = stress_link();
    let link_seed = 0xF10D;
    let day_rows = timing::time_stage("recovery::cycles", || {
        par::par_map_indices(n_days - train_days, |i| -> Result<_, String> {
            let day = train_days + i;
            let mut cfg = EngineConfig::new(experiment.trace.tick_hz(), experiment.params);
            cfg.jitter_ticks = cfg.jitter_ticks.max(link.jitter_ticks);
            let reference = replay::stream_day(
                &experiment.scenario, &experiment.trace, &streams, &re, day, cfg, &link, link_seed,
            )?;
            let groups = experiment.trace.receiver_groups(&streams);
            let n_deliveries = replay::day_deliveries(
                &experiment.trace, &streams, &groups, day, &link, link_seed,
            )?
            .len() as u64;

            let mut rows = Vec::with_capacity(3);
            for pct in [25u64, 50, 75] {
                let crash_delivery = (n_deliveries * pct / 100).max(1);
                let dir = scratch_dir(day, pct);
                std::fs::create_dir_all(&dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                let row = crash_cycle(
                    experiment, &streams, &re, day, cfg, &link, link_seed,
                    &reference, crash_delivery, pct, &dir,
                );
                let _ = std::fs::remove_dir_all(&dir);
                rows.push(row?);
            }
            Ok(rows)
        })
    });

    let mut rows = Vec::new();
    for r in day_rows {
        rows.extend(r?);
    }
    Ok(rows)
}

/// One crash-at-`crash_delivery` / resume cycle against `reference`.
#[allow(clippy::too_many_arguments)]
fn crash_cycle(
    experiment: &Experiment,
    streams: &[usize],
    re: &fadewich_core::re::RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    link: &fadewich_runtime::link::LinkModel,
    link_seed: u64,
    reference: &replay::DayReplay,
    crash_delivery: u64,
    pct: u64,
    dir: &std::path::Path,
) -> Result<RecoveryRow, String> {
    let mut store = CheckpointStore::open(dir).map_err(|e| e.to_string())?;
    let crashed = replay::stream_day_checkpointed(
        &experiment.scenario, &experiment.trace, streams, re, day, cfg, link, link_seed,
        &mut store, Some(crash_delivery),
    )?;

    // Reopen, as a restarted process would.
    let mut store = CheckpointStore::open(dir).map_err(|e| e.to_string())?;
    let outcome = store.load_latest().map_err(|e| e.to_string())?;
    let rejected = outcome.rejected.len();
    let checkpoints_kept = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".fwcp"))
        .count();

    let (resumed_from, prefix_actions, resumed) = match &outcome.snapshot {
        Some((_, snap)) => {
            let resumed = replay::resume_day(
                &experiment.scenario, &experiment.trace, streams, re, cfg, link, link_seed, snap,
            )?;
            (snap.stream_pos, snap.controller.n_actions as usize, resumed)
        }
        // Crash before the first checkpoint: cold restart of the day.
        None => {
            let rerun = replay::stream_day(
                &experiment.scenario, &experiment.trace, streams, re, day, cfg, link, link_seed,
            )?;
            (0, 0, rerun)
        }
    };

    let stitched: Vec<&fadewich_core::controller::Action> = crashed.actions[..prefix_actions]
        .iter()
        .chain(resumed.actions.iter())
        .collect();
    let full: Vec<&fadewich_core::controller::Action> = reference.actions.iter().collect();
    Ok(RecoveryRow {
        day,
        crash_fraction: pct as f64 / 100.0,
        crash_delivery,
        resumed_from,
        checkpoints_kept,
        rejected,
        action_parity: format!("{stitched:?}") == format!("{full:?}"),
        counter_parity: resumed.counters.deterministic_summary()
            == reference.counters.deterministic_summary(),
    })
}

/// Renders the study as the `reproduce` table.
pub fn recovery_table(rows: &[RecoveryRow]) -> TextTable {
    let mut t = TextTable::new(
        "Crash recovery: checkpointed resume vs uninterrupted run (per online day)",
        &[
            "day", "crash at", "crash delivery", "resumed from", "ckpts kept",
            "rejected", "actions", "counters",
        ],
    );
    for r in rows {
        t.add_row(vec![
            r.day.to_string(),
            format!("{:.0}%", r.crash_fraction * 100.0),
            r.crash_delivery.to_string(),
            r.resumed_from.to_string(),
            r.checkpoints_kept.to_string(),
            r.rejected.to_string(),
            if r.action_parity { "identical".into() } else { "differ".into() },
            if r.counter_parity { "identical".into() } else { "differ".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::{ScenarioConfig, ScheduleParams};
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| {
            let config = ScenarioConfig {
                seed: 0xD3B,
                days: 2,
                schedule: ScheduleParams {
                    day_seconds: 2.0 * 3600.0,
                    departures_choices: [3, 3, 4, 4],
                    min_seated_s: 400.0,
                    absence_bounds_s: (90.0, 300.0),
                    ..ScheduleParams::default()
                },
                ..ScenarioConfig::default()
            };
            Experiment::from_config(config, fadewich_core::FadewichParams::default()).unwrap()
        })
    }

    #[test]
    fn every_crash_fraction_resumes_identically() {
        let rows = recovery_study(fixture(), 1, 9).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.action_parity, "{r:?}");
            assert!(r.counter_parity, "{r:?}");
            assert!(r.rejected == 0, "{r:?}");
            assert!(r.resumed_from <= r.crash_delivery, "{r:?}");
            assert!(r.checkpoints_kept <= 2, "retention must prune: {r:?}");
        }
        let table = recovery_table(&rows).render();
        assert!(table.contains("identical"), "{table}");
    }

    #[test]
    fn invalid_split_rejected() {
        assert!(recovery_study(fixture(), 0, 9).is_err());
        assert!(recovery_study(fixture(), 2, 9).is_err());
    }
}
