//! The full FADEWICH evaluation pipeline.
//!
//! Mirrors the paper's §VII procedure: run MD over the whole monitored
//! period, match variation windows against ground truth (TP/FP/FN),
//! extract a sample per true positive, then evaluate RE with
//! stratified 5-fold cross-validation — yielding per-event predictions
//! that feed the security and usability analyses.

use fadewich_core::config::FadewichParams;
use fadewich_core::features::{extract_features, TrainingSample};
use fadewich_core::md::{run_md_over_day, MdRun};
use fadewich_core::security::{evaluate_detection, DetectionOutcome};
use fadewich_core::windows::VariationWindow;
use fadewich_core::RadioEnvironment;
use fadewich_officesim::{EventLog, Trace};
use fadewich_stats::rng::Rng;
use fadewich_svm::{cv, Kernel};

use crate::par::{self, timing};

/// MD outputs for every day plus the ground-truth match.
#[derive(Debug, Clone)]
pub struct MdStage {
    /// Per-day raw MD runs.
    pub runs: Vec<MdRun>,
    /// Per-day significant windows (≥ `t∆`).
    pub significant: Vec<Vec<VariationWindow>>,
    /// Ground-truth matching and TP/FP/FN counts.
    pub detection: DetectionOutcome,
}

/// Runs MD over every day of a trace, monitoring `streams`.
///
/// # Errors
///
/// Propagates MD construction errors.
pub fn run_md_stage(
    trace: &Trace,
    streams: &[usize],
    events: &EventLog,
    params: &FadewichParams,
) -> Result<MdStage, String> {
    let runs: Vec<MdRun> = timing::time_stage("pipeline::md", || {
        par::par_map(trace.days(), |_, day| {
            run_md_over_day(day, streams, trace.tick_hz(), *params)
        })
        .into_iter()
        .collect::<Result<_, _>>()
    })?;
    let t_delta_ticks = params.t_delta_ticks(trace.tick_hz());
    let significant: Vec<Vec<VariationWindow>> =
        runs.iter().map(|r| r.significant_windows(t_delta_ticks)).collect();
    let detection = evaluate_detection(&significant, events, trace.tick_hz(), params);
    Ok(MdStage { runs, significant, detection })
}

/// A per-event sample: the features of the matched window plus the
/// ground-truth label (the evaluation uses ground truth; the automatic
/// KMA labeling is exercised separately).
#[derive(Debug, Clone)]
pub struct SampleSet {
    /// `samples[i]` is `Some` iff event `i` was matched by MD.
    pub per_event: Vec<Option<TrainingSample>>,
    /// Features of false-positive windows, with their day (classified
    /// by the online system too, so the usability analysis needs them).
    pub false_positive_features: Vec<(usize, VariationWindow, Vec<f64>)>,
}

/// Extracts features for every matched window and every FP window.
pub fn build_samples(
    trace: &Trace,
    stage: &MdStage,
    events: &EventLog,
    streams: &[usize],
    params: &FadewichParams,
) -> SampleSet {
    timing::time_stage("pipeline::features", || {
        let per_event = par::par_map(events.events(), |ei, event| {
            stage.detection.matched[ei].map(|(day, w)| TrainingSample {
                features: extract_features(
                    &trace.days()[day],
                    streams,
                    w.start_tick,
                    trace.tick_hz(),
                    params,
                ),
                label: event.label(),
            })
        });
        let false_positive_features =
            par::par_map(&stage.detection.false_positives, |_, &(day, w)| {
                let features = extract_features(
                    &trace.days()[day],
                    streams,
                    w.start_tick,
                    trace.tick_hz(),
                    params,
                );
                (day, w, features)
            });
        SampleSet { per_event, false_positive_features }
    })
}

/// Per-event cross-validated predictions: each matched event's sample
/// is classified by a model trained on the other folds.
///
/// Returns `(predictions, accuracy)` where `predictions[i]` is `None`
/// for unmatched events.
///
/// # Panics
///
/// Panics if there are fewer matched samples than folds.
pub fn cross_validated_predictions(
    samples: &SampleSet,
    k: usize,
    kernel: Option<Kernel>,
    seed: u64,
) -> (Vec<Option<usize>>, f64) {
    let matched: Vec<(usize, &TrainingSample)> = samples
        .per_event
        .iter()
        .enumerate()
        .filter_map(|(ei, s)| s.as_ref().map(|s| (ei, s)))
        .collect();
    assert!(matched.len() >= k, "need at least one sample per fold");
    let labels: Vec<usize> = matched.iter().map(|(_, s)| s.label).collect();
    // Stream 0 splits the folds; stream 1 + fi trains fold fi. Every
    // stream depends only on (seed, index), so the folds can train in
    // parallel with output identical to a serial run.
    let mut split_rng = Rng::task_stream(seed, 0);
    let folds = cv::stratified_k_fold(&labels, k, &mut split_rng);
    let fold_results = timing::time_stage("pipeline::cv", || {
        par::par_map(&folds, |fi, fold| {
            let train: Vec<TrainingSample> =
                fold.train.iter().map(|&i| matched[i].1.clone()).collect();
            let mut rng = Rng::task_stream(seed, 1 + fi as u64);
            let re = match RadioEnvironment::train(&train, kernel, &mut rng) {
                Ok(re) => re,
                Err(_) => return (Vec::new(), 0), // degenerate fold (single class): skip
            };
            let mut fold_preds = Vec::with_capacity(fold.test.len());
            let mut correct = 0usize;
            for &i in &fold.test {
                let (ei, sample) = (matched[i].0, matched[i].1);
                let pred = re.classify(&sample.features);
                if pred == sample.label {
                    correct += 1;
                }
                fold_preds.push((ei, pred));
            }
            (fold_preds, correct)
        })
    });
    let mut predictions: Vec<Option<usize>> = vec![None; samples.per_event.len()];
    let mut correct = 0usize;
    for (fold_preds, fold_correct) in fold_results {
        correct += fold_correct;
        for (ei, pred) in fold_preds {
            predictions[ei] = Some(pred);
        }
    }
    let accuracy = if matched.is_empty() { 0.0 } else { correct as f64 / matched.len() as f64 };
    (predictions, accuracy)
}

/// Trains one model on every matched sample — the model the online
/// system would deploy, and the one the artifact-export stage
/// serializes. Deterministic in `seed`; `None` when the sample set
/// cannot fit a classifier (e.g. a single class).
pub fn train_full_model(samples: &SampleSet, seed: u64) -> Option<RadioEnvironment> {
    let train: Vec<TrainingSample> = samples.per_event.iter().flatten().cloned().collect();
    let mut rng = Rng::seed_from_u64(seed);
    RadioEnvironment::train(&train, None, &mut rng).ok()
}

/// Classifies the false-positive windows with a model trained on all
/// matched samples (the online system would do the same), returning
/// `(day, window, predicted_label)`.
pub fn classify_false_positives(
    samples: &SampleSet,
    seed: u64,
) -> Vec<(usize, VariationWindow, usize)> {
    let Some(re) = train_full_model(samples, seed) else {
        return Vec::new();
    };
    samples
        .false_positive_features
        .iter()
        .map(|(day, w, features)| (*day, *w, re.classify(features)))
        .collect()
}

/// For every day, the significant windows paired with the label the
/// online system would act on: the cross-validated prediction for
/// matched windows, and a full-model classification for everything
/// else (false positives and duplicate windows on one event).
pub fn windows_with_predictions(
    trace: &Trace,
    stage: &MdStage,
    samples: &SampleSet,
    predictions: &[Option<usize>],
    streams: &[usize],
    params: &FadewichParams,
    seed: u64,
) -> Vec<Vec<(VariationWindow, usize)>> {
    use std::collections::HashMap;
    let mut by_window: HashMap<(usize, usize), usize> = HashMap::new();
    for (ei, m) in stage.detection.matched.iter().enumerate() {
        if let (Some((day, w)), Some(pred)) = (m, predictions[ei]) {
            by_window.insert((*day, w.start_tick), pred);
        }
    }
    // Full model for the leftovers.
    let full_model = train_full_model(samples, seed);
    par::par_map(&stage.significant, |day, windows| {
        windows
            .iter()
            .map(|w| {
                let pred = by_window.get(&(day, w.start_tick)).copied().or_else(|| {
                    full_model.as_ref().map(|m| {
                        m.classify(&extract_features(
                            &trace.days()[day],
                            streams,
                            w.start_tick,
                            trace.tick_hz(),
                            params,
                        ))
                    })
                });
                (*w, pred.unwrap_or(0))
            })
            .collect()
    })
}

/// One point of the Fig. 8 learning curve: mean accuracy and 95% CI
/// half-width over repeated splits at a given training-set size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningPoint {
    /// Number of training samples used.
    pub train_size: usize,
    /// Mean test accuracy over the repeats.
    pub mean_accuracy: f64,
    /// 95% confidence half-width over the repeats.
    pub ci_half_width: f64,
}

/// Computes the RE learning curve: for each training-set size, train
/// on a random subset of the training fold and test on the held-out
/// fold, averaged over `repeats` random 5-fold splits.
pub fn learning_curve(
    samples: &SampleSet,
    train_sizes: &[usize],
    k: usize,
    repeats: usize,
    seed: u64,
) -> Vec<LearningPoint> {
    let matched: Vec<&TrainingSample> =
        samples.per_event.iter().flatten().collect();
    let labels: Vec<usize> = matched.iter().map(|s| s.label).collect();
    // One task per (size, repeat) cell, each on its own RNG stream
    // keyed by the cell coordinates, so the grid parallelizes without
    // changing any cell's split or training draws.
    let cells: Vec<(usize, usize)> = (0..train_sizes.len())
        .flat_map(|si| (0..repeats).map(move |rep| (si, rep)))
        .collect();
    let cell_accs: Vec<(usize, Option<f64>)> =
        timing::time_stage("pipeline::learning_curve", || {
            par::par_map(&cells, |_, &(si, rep)| {
                let size = train_sizes[si];
                if matched.len() < k {
                    return (si, None);
                }
                let mut rng =
                    Rng::task_stream(seed, ((si as u64) << 32) | rep as u64);
                let folds = cv::stratified_k_fold(&labels, k, &mut rng);
                let mut fold_accs = Vec::new();
                for fold in &folds {
                    if fold.train.len() < size || size < 2 {
                        continue;
                    }
                    // Random subset of the training fold, stratification
                    // preserved approximately by shuffling.
                    let mut train_idx = fold.train.clone();
                    rng.shuffle(&mut train_idx);
                    train_idx.truncate(size);
                    let train: Vec<TrainingSample> =
                        train_idx.iter().map(|&i| matched[i].clone()).collect();
                    let re = match RadioEnvironment::train(&train, None, &mut rng) {
                        Ok(re) => re,
                        Err(_) => continue,
                    };
                    let correct = fold
                        .test
                        .iter()
                        .filter(|&&i| re.classify(&matched[i].features) == matched[i].label)
                        .count();
                    fold_accs.push(correct as f64 / fold.test.len() as f64);
                }
                if fold_accs.is_empty() {
                    (si, None)
                } else {
                    (si, Some(fadewich_stats::descriptive::mean(&fold_accs)))
                }
            })
        });
    let mut points = Vec::new();
    for (si, &size) in train_sizes.iter().enumerate() {
        let accuracies: Vec<f64> = cell_accs
            .iter()
            .filter(|(cell_si, _)| *cell_si == si)
            .filter_map(|(_, acc)| *acc)
            .collect();
        if accuracies.is_empty() {
            continue;
        }
        let ci = fadewich_stats::metrics::MeanCi::of(&accuracies);
        points.push(LearningPoint {
            train_size: size,
            mean_accuracy: ci.mean,
            ci_half_width: ci.half_width,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::{Scenario, ScenarioConfig};
    use std::sync::OnceLock;

    /// One shared small scenario+trace for all pipeline tests (the RF
    /// simulation is the expensive part).
    fn fixture() -> &'static (Scenario, Trace) {
        static FIXTURE: OnceLock<(Scenario, Trace)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let scenario =
                Scenario::generate(ScenarioConfig { seed: 77, ..ScenarioConfig::small() })
                    .unwrap();
            let trace = scenario.simulate().unwrap();
            (scenario, trace)
        })
    }

    #[test]
    fn md_stage_detects_most_events() {
        let (scenario, trace) = fixture();
        let params = FadewichParams::default();
        let streams: Vec<usize> = (0..trace.n_streams()).collect();
        let stage = run_md_stage(trace, &streams, scenario.events(), &params).unwrap();
        let recall = stage.detection.counts.recall();
        assert!(
            recall > 0.7,
            "9-sensor recall should be high, got {recall} ({:?})",
            stage.detection.counts
        );
    }

    #[test]
    fn samples_align_with_detection() {
        let (scenario, trace) = fixture();
        let params = FadewichParams::default();
        let streams: Vec<usize> = (0..trace.n_streams()).collect();
        let stage = run_md_stage(trace, &streams, scenario.events(), &params).unwrap();
        let samples = build_samples(trace, &stage, scenario.events(), &streams, &params);
        for (ei, s) in samples.per_event.iter().enumerate() {
            assert_eq!(s.is_some(), stage.detection.matched[ei].is_some());
            if let Some(s) = s {
                assert_eq!(s.features.len(), streams.len() * 3);
                assert_eq!(s.label, scenario.events().events()[ei].label());
            }
        }
        assert_eq!(
            samples.false_positive_features.len(),
            stage.detection.false_positives.len()
        );
    }

    #[test]
    fn cross_validation_produces_predictions_for_matched_events() {
        let (scenario, trace) = fixture();
        let params = FadewichParams::default();
        let streams: Vec<usize> = (0..trace.n_streams()).collect();
        let stage = run_md_stage(trace, &streams, scenario.events(), &params).unwrap();
        let samples = build_samples(trace, &stage, scenario.events(), &streams, &params);
        let (preds, accuracy) = cross_validated_predictions(&samples, 3, None, 5);
        for (ei, p) in preds.iter().enumerate() {
            assert_eq!(p.is_some(), samples.per_event[ei].is_some());
        }
        assert!((0.0..=1.0).contains(&accuracy));
        // The small scenario has only ~14 samples over 4 classes, so
        // just require better-than-chance; the full-scale accuracy is
        // asserted by the paper_scale integration test.
        assert!(accuracy > 0.3, "accuracy = {accuracy}");
    }
}
