//! The shared experiment context.
//!
//! Generating the behaviour and simulating the RF channel dominate the
//! cost of every table and figure, so [`Experiment`] does both once and
//! [`Experiment::sweep`] caches the per-sensor-count MD + RE pipeline
//! outputs that almost every reproduction consumes.

use fadewich_core::config::FadewichParams;
use fadewich_officesim::{Scenario, ScenarioConfig, Trace};

use crate::par::{self, timing};
use crate::pipeline::{
    build_samples, cross_validated_predictions, run_md_stage, MdStage, SampleSet,
};

/// A generated scenario plus its simulated trace and system parameters.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The behaviour scenario (ground truth included).
    pub scenario: Scenario,
    /// The recorded RSSI streams.
    pub trace: Trace,
    /// FADEWICH parameters used throughout.
    pub params: FadewichParams,
}

/// The sensor counts the paper evaluates.
pub const SENSOR_COUNTS: [usize; 7] = [3, 4, 5, 6, 7, 8, 9];

/// Everything the pipeline produces for one sensor count.
#[derive(Debug, Clone)]
pub struct SensorRun {
    /// Number of deployed sensors.
    pub n_sensors: usize,
    /// Stream indices (into the trace) of this deployment.
    pub streams: Vec<usize>,
    /// MD outputs and ground-truth matching.
    pub stage: MdStage,
    /// Per-event samples and FP features.
    pub samples: SampleSet,
    /// Cross-validated RE predictions per event.
    pub predictions: Vec<Option<usize>>,
    /// Cross-validated RE accuracy over matched events.
    pub accuracy: f64,
}

impl Experiment {
    /// Builds an experiment from a scenario configuration.
    ///
    /// # Errors
    ///
    /// Propagates scenario generation/simulation errors as strings.
    pub fn from_config(config: ScenarioConfig, params: FadewichParams) -> Result<Experiment, String> {
        let scenario = Scenario::generate(config).map_err(|e| e.to_string())?;
        let trace = scenario.simulate().map_err(|e| e.to_string())?;
        Ok(Experiment { scenario, trace, params })
    }

    /// The paper-scale experiment: 5 days × 8 h, 3 users, 9 sensors.
    ///
    /// # Errors
    ///
    /// See [`Experiment::from_config`].
    pub fn paper_scale(seed: u64) -> Result<Experiment, String> {
        Experiment::from_config(
            ScenarioConfig { seed, ..ScenarioConfig::default() },
            FadewichParams::default(),
        )
    }

    /// A reduced experiment (1 day × 2 h) for tests and quick benches.
    ///
    /// # Errors
    ///
    /// See [`Experiment::from_config`].
    pub fn small(seed: u64) -> Result<Experiment, String> {
        Experiment::from_config(
            ScenarioConfig { seed, ..ScenarioConfig::small() },
            FadewichParams::default(),
        )
    }

    /// Runs the full pipeline for one sensor count (using the layout's
    /// documented subset order).
    ///
    /// # Errors
    ///
    /// Propagates MD construction errors.
    pub fn run_for_sensors(&self, n_sensors: usize, cv_folds: usize) -> Result<SensorRun, String> {
        let subset = self.scenario.layout().sensor_subset(n_sensors);
        self.run_for_subset(&subset, cv_folds)
    }

    /// Runs the full pipeline for an explicit sensor subset (placement
    /// ablations use this).
    ///
    /// # Errors
    ///
    /// Propagates MD construction errors.
    pub fn run_for_subset(&self, subset: &[usize], cv_folds: usize) -> Result<SensorRun, String> {
        let n_sensors = subset.len();
        let streams = self.trace.stream_indices_for_subset(subset);
        let stage = run_md_stage(&self.trace, &streams, self.scenario.events(), &self.params)?;
        let samples = build_samples(&self.trace, &stage, self.scenario.events(), &streams, &self.params);
        let n_matched = samples.per_event.iter().flatten().count();
        let (predictions, accuracy) = if n_matched >= cv_folds {
            cross_validated_predictions(&samples, cv_folds, None, 0xC0FFEE ^ n_sensors as u64)
        } else {
            (vec![None; samples.per_event.len()], 0.0)
        };
        Ok(SensorRun { n_sensors, streams, stage, samples, predictions, accuracy })
    }

    /// Runs the pipeline for every sensor count in `ns`, one worker
    /// per count. Each run's CV seed depends only on the sensor count,
    /// so the sweep order and pool size never change the results.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn sweep(&self, ns: &[usize], cv_folds: usize) -> Result<Vec<SensorRun>, String> {
        timing::time_stage("experiment::sweep", || {
            par::par_map(ns, |_, &n| self.run_for_sensors(n, cv_folds))
                .into_iter()
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    pub(crate) fn small_experiment() -> &'static Experiment {
        static EXP: OnceLock<Experiment> = OnceLock::new();
        EXP.get_or_init(|| Experiment::small(123).unwrap())
    }

    #[test]
    fn sensor_run_consistency() {
        let exp = small_experiment();
        let run = exp.run_for_sensors(9, 3).unwrap();
        assert_eq!(run.n_sensors, 9);
        assert_eq!(run.streams.len(), 72);
        assert_eq!(run.predictions.len(), exp.scenario.events().len());
        assert!((0.0..=1.0).contains(&run.accuracy));
    }

    #[test]
    fn fewer_sensors_fewer_streams() {
        let exp = small_experiment();
        let r3 = exp.run_for_sensors(3, 3).unwrap();
        let r9 = exp.run_for_sensors(9, 3).unwrap();
        assert_eq!(r3.streams.len(), 6);
        assert!(r3.stage.detection.counts.recall() <= r9.stage.detection.counts.recall());
    }

    #[test]
    fn sweep_covers_requested_counts() {
        let exp = small_experiment();
        let runs = exp.sweep(&[3, 9], 3).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].n_sensors, 3);
        assert_eq!(runs[1].n_sensors, 9);
    }
}
