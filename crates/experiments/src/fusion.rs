//! RSSI/light fusion ablation: the `reproduce fusion` study.
//!
//! The tentpole question of the sensor-stream generalization: what
//! does the ambient-light modality buy, and what does it cost? One
//! light-enabled scenario is streamed three times through the fused
//! engine — [`DecisionMode::RssiOnly`], [`DecisionMode::LightOnly`],
//! [`DecisionMode::Fused`] — and every run is scored against the
//! simulator's ground-truth departure log:
//!
//! * **latency** — seconds from the user clearing workstation
//!   proximity (the paper's reference time `t`) to the
//!   deauthentication that covers that departure;
//! * **FN** — departures no deauthentication covered within the match
//!   window (the attack opportunities left open);
//! * **FP** — deauthentications covering no ground-truth departure
//!   (usability cost: a logged-in user kicked for no reason).
//!
//! The fixture mounts one photosensor per workstation with deliberately
//! unequal mounting quality (`mount_factors`), so the light-only mode
//! shows its blind spot on the badly-mounted desk while the fused mode
//! recovers it through rule 1 — the qualitative shape the ablation
//! table is pinned on. Everything is seeded; the table is
//! byte-identical across runs and thread counts, which `scripts/ci.sh`
//! enforces by diffing two `reproduce fusion` invocations.

use fadewich_core::config::FadewichParams;
use fadewich_core::controller::{Action, ActionKind};
use fadewich_core::fusion::DecisionMode;
use fadewich_officesim::{LightSimParams, Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;

use crate::par::timing;
use crate::report::TextTable;

/// Per-workstation photosensor mounting quality for the ablation
/// fixture: w0 ideal, w1 slightly off-axis, w2 badly mounted (the
/// occlusion dip shrinks below the detector threshold, so light-only
/// misses that desk).
pub const MOUNT_FACTORS: [f64; 3] = [1.0, 0.85, 0.3];

/// A deauthentication covers a departure when it fires inside
/// `[t_start, t_end + MATCH_WINDOW_S]` for the departed workstation.
pub const MATCH_WINDOW_S: f64 = 30.0;

/// The light-enabled ablation scenario: the streaming fixture's
/// schedule with one photosensor per workstation at [`MOUNT_FACTORS`]
/// quality.
#[must_use]
pub fn fusion_scenario(seed: u64, days: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        light: Some(LightSimParams {
            mount_factors: MOUNT_FACTORS.to_vec(),
            ..LightSimParams::default()
        }),
        ..ScenarioConfig::default()
    }
}

/// One decision mode's scorecard over one streamed day.
#[derive(Debug, Clone)]
pub struct FusionModeRow {
    /// Which decision mode arbitrated.
    pub mode: DecisionMode,
    /// Which recorded day was streamed.
    pub day: usize,
    /// Ground-truth departures that day.
    pub leaves: usize,
    /// Deauthentications the engine fired.
    pub deauths: usize,
    /// Deauthentications fired by the light departure path.
    pub light_deauths: usize,
    /// Departures covered by a deauthentication in the match window.
    pub matched: usize,
    /// Departures left open (missed).
    pub false_negatives: usize,
    /// Deauthentications covering no departure.
    pub false_positives: usize,
    /// Mean seconds from proximity-clear to the covering deauth.
    pub mean_latency_s: f64,
    /// Worst covered-departure latency.
    pub max_latency_s: f64,
    /// `Some(identical)` for the RSSI-only mode: whether the typed
    /// engine's decisions are byte-identical to the legacy untyped
    /// path over the same trace. `None` for the light modes.
    pub rssi_parity: Option<bool>,
}

/// Scores one mode's action log against the day's ground truth.
fn score(
    mode: DecisionMode,
    day: usize,
    actions: &[Action],
    scenario: &Scenario,
    rssi_parity: Option<bool>,
) -> FusionModeRow {
    let leaves: Vec<_> = scenario.events().events_on_day(day).filter(|e| e.is_leave()).collect();
    let deauths: Vec<&Action> = actions.iter().filter(|a| a.kind.is_deauth()).collect();
    let light_deauths = deauths
        .iter()
        .filter(|a| matches!(a.kind, ActionKind::DeauthenticateLight { .. }))
        .count();
    // Greedy chronological matching: each departure takes the earliest
    // unclaimed deauth of its workstation inside the match window.
    let mut used = vec![false; deauths.len()];
    let mut latencies: Vec<f64> = Vec::new();
    for e in &leaves {
        let ws = e.label() - 1;
        let hit = deauths.iter().enumerate().find(|(i, a)| {
            !used[*i]
                && a.kind.workstation() == ws
                && a.t >= e.t_start
                && a.t <= e.t_end + MATCH_WINDOW_S
        });
        if let Some((i, a)) = hit {
            used[i] = true;
            latencies.push(a.t - e.t_proximity);
        }
    }
    let matched = latencies.len();
    FusionModeRow {
        mode,
        day,
        leaves: leaves.len(),
        deauths: deauths.len(),
        light_deauths,
        matched,
        false_negatives: leaves.len() - matched,
        false_positives: deauths.len() - matched,
        mean_latency_s: if matched == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / matched as f64
        },
        max_latency_s: latencies.iter().fold(0.0f64, |m, &l| m.max(l)),
        rssi_parity,
    }
}

/// Runs the full ablation: generate the light-enabled scenario, train
/// RE on the leading days, stream every online day through all three
/// decision modes over a lossless link, score each against ground
/// truth.
///
/// # Errors
///
/// Returns a message for scenario/simulation failures, an invalid
/// train/online split, or engine construction errors.
pub fn fusion_study(
    seed: u64,
    days: usize,
    train_days: usize,
    n_sensors: usize,
) -> Result<Vec<FusionModeRow>, String> {
    if train_days == 0 || train_days >= days {
        return Err(format!("need 1..{} training days, got {train_days}", days - 1));
    }
    let (scenario, trace) = timing::time_stage("fusion::scenario", || {
        let scenario =
            Scenario::generate(fusion_scenario(seed, days)).map_err(|e| format!("{e}"))?;
        let trace = scenario.simulate().map_err(|e| format!("{e}"))?;
        Ok::<_, String>((scenario, trace))
    })?;
    let params = FadewichParams::default();
    let subset = scenario.layout().sensor_subset(n_sensors);
    let streams = trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("fusion::train", || {
        replay::train_re(&scenario, &trace, &streams, train_days, &params)
    })?;

    let link = LinkModel::lossless();
    let telemetry = fadewich_telemetry::Telemetry::disabled();
    let mut rows = Vec::new();
    for day in train_days..days {
        let legacy = legacy_actions(&scenario, &trace, &streams, &re, day, &params, &link)?;
        for mode in [DecisionMode::RssiOnly, DecisionMode::LightOnly, DecisionMode::Fused] {
            let cfg = EngineConfig::new(trace.tick_hz(), params);
            let fusion = replay::fusion_for_trace(&trace, mode);
            let out = replay::stream_day_fused(
                &scenario, &trace, &streams, &re, day, cfg, fusion, &link, 0xF10D, &telemetry,
            )?;
            let parity = (mode == DecisionMode::RssiOnly)
                .then(|| format!("{:?}", out.actions) == format!("{legacy:?}"));
            rows.push(score(mode, day, &out.actions, &scenario, parity));
        }
    }
    Ok(rows)
}

/// The pre-refactor reference: the same day streamed through the
/// untyped RSSI-only path (light columns never framed).
fn legacy_actions(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &fadewich_core::re::RadioEnvironment,
    day: usize,
    params: &FadewichParams,
    link: &LinkModel,
) -> Result<Vec<Action>, String> {
    let cfg = EngineConfig::new(trace.tick_hz(), *params);
    Ok(replay::stream_day(scenario, trace, streams, re, day, cfg, link, 0xF10D)?.actions)
}

/// Renders the ablation as the `reproduce fusion` table.
#[must_use]
pub fn fusion_table(rows: &[FusionModeRow]) -> TextTable {
    let mut t = TextTable::new(
        "Fusion ablation: deauth latency and error rates per decision mode",
        &[
            "day", "mode", "leaves", "deauths", "light deauths", "matched", "FN", "FP",
            "mean latency (s)", "max latency (s)", "rssi parity",
        ],
    );
    for r in rows {
        t.add_row(vec![
            r.day.to_string(),
            r.mode.label().to_string(),
            r.leaves.to_string(),
            r.deauths.to_string(),
            r.light_deauths.to_string(),
            r.matched.to_string(),
            r.false_negatives.to_string(),
            r.false_positives.to_string(),
            format!("{:.1}", r.mean_latency_s),
            format!("{:.1}", r.max_latency_s),
            match r.rssi_parity {
                Some(true) => "identical".into(),
                Some(false) => "DIFFERS".into(),
                None => "-".into(),
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn rows() -> &'static Vec<FusionModeRow> {
        static ROWS: OnceLock<Vec<FusionModeRow>> = OnceLock::new();
        ROWS.get_or_init(|| fusion_study(0xD3B, 2, 1, 9).unwrap())
    }

    #[test]
    fn rssi_only_mode_is_byte_identical_to_legacy_path() {
        let r = rows().iter().find(|r| r.mode == DecisionMode::RssiOnly).unwrap();
        assert_eq!(r.rssi_parity, Some(true), "{r:?}");
    }

    #[test]
    fn every_mode_covers_departures_and_light_modes_use_the_light_path() {
        for r in rows().iter() {
            assert!(r.leaves > 0, "{r:?}");
            assert!(r.matched > 0, "{r:?}");
            assert_eq!(r.matched + r.false_negatives, r.leaves);
            assert_eq!(r.matched + r.false_positives, r.deauths);
        }
        let light = rows().iter().find(|r| r.mode == DecisionMode::LightOnly).unwrap();
        assert!(light.light_deauths > 0, "{light:?}");
        let rssi = rows().iter().find(|r| r.mode == DecisionMode::RssiOnly).unwrap();
        assert_eq!(rssi.light_deauths, 0, "{rssi:?}");
    }

    #[test]
    fn study_is_deterministic_and_renders() {
        let again = fusion_study(0xD3B, 2, 1, 9).unwrap();
        assert_eq!(
            format!("{:?}", rows()),
            format!("{again:?}"),
            "fusion ablation must be seed-deterministic"
        );
        let table = fusion_table(rows()).render();
        assert!(table.contains("rssi-only") && table.contains("fused"), "{table}");
    }

    #[test]
    fn invalid_split_rejected() {
        assert!(fusion_study(0xD3B, 2, 0, 9).is_err());
        assert!(fusion_study(0xD3B, 2, 2, 9).is_err());
    }
}
