//! Experiment harness reproducing the FADEWICH evaluation.
//!
//! - [`experiment`] — the shared scenario + trace context and the
//!   per-sensor-count pipeline sweep;
//! - [`pipeline`] — MD stage, sample building, cross-validated
//!   predictions, learning curves;
//! - [`tables`]/[`figures`] — one function per paper table/figure;
//! - [`ablations`] — placement / parameter / classifier / overlap studies;
//! - [`deployment`] — the realistic train-then-run-online workflow;
//! - [`csi`] — the RSSI-vs-CSI future-work comparison;
//! - [`baseline`] — FADEWICH vs the RTI departure-detection baseline;
//! - [`offices`] — generalization across office setups and ad-hoc devices;
//! - [`attacks`] — jamming attacks, the integrity-guard response, and
//!   the `reproduce attacks` containment suite (seeded attacker
//!   families vs the authenticated engine);
//! - [`streaming`] — the live runtime replayed against the batch
//!   controller, lossless (parity) and lossy (degradation);
//! - [`fusion`] — the RSSI/light ablation: deauth latency and FP/FN
//!   across the three decision modes over a light-enabled scenario;
//! - [`recovery`] — crash the streaming engine mid-day, resume from
//!   the checkpoint store, verify the stitched decision stream;
//! - [`par`] — the deterministic parallel task pool driving all sweeps;
//! - [`report`] — ASCII/CSV rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod attacks;
pub mod baseline;
pub mod csi;
pub mod deployment;
pub mod experiment;
pub mod figures;
pub mod fusion;
pub mod offices;
pub mod par;
pub mod pipeline;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod streaming;
pub mod tables;
pub mod telemetry;

pub use experiment::{Experiment, SensorRun, SENSOR_COUNTS};
