//! Wireless physical attacks, measured (paper §V-C).
//!
//! Three conditions over the *same* recorded day: no attack, a noise
//! jammer, and a saturation jammer, each timed to cover one victim's
//! departure. For every condition we report whether MD still detected
//! the departure and whether the channel-integrity guard raised an
//! alarm — turning §V-C's "we believe such attacks are ineffective /
//! detectable" into numbers.

use fadewich_core::guard::{GuardParams, IntegrityGuard};
use fadewich_core::md::run_md_over_day;
use fadewich_geometry::Point;
use fadewich_officesim::{DayTrace, MovementEvent};
use fadewich_rfchannel::{Jammer, JammerKind};
use fadewich_stats::rng::Rng;

use crate::experiment::Experiment;
use crate::report::TextTable;

/// Result of one attack condition.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConditionResult {
    /// Condition name.
    pub name: String,
    /// Was the victim's departure detected by MD?
    pub departure_detected: bool,
    /// Significant windows during the attack interval (noise jamming
    /// floods this).
    pub windows_during_attack: usize,
    /// Did the integrity guard alarm during the attack?
    pub guard_alarmed: bool,
    /// Alarm latency from attack start (s), if alarmed.
    pub alarm_latency_s: Option<f64>,
}

/// Applies a jammer to a copy of a recorded day.
fn jam_day(
    day: &DayTrace,
    experiment: &Experiment,
    jammer: &Jammer,
    seed: u64,
) -> DayTrace {
    let affected = jammer.affected_links(experiment.trace.link_segments());
    let hz = experiment.trace.tick_hz();
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = DayTrace::with_capacity(day.n_streams(), day.n_ticks());
    let mut row = vec![0.0f64; day.n_streams()];
    for tick in 0..day.n_ticks() {
        for (dst, &v) in row.iter_mut().zip(day.row(tick)) {
            *dst = v as f64;
        }
        jammer.apply(tick as f64 / hz, &affected, &mut row, &mut rng);
        out.push_row(&row);
    }
    out
}

/// Evaluates one condition.
fn evaluate_condition(
    name: &str,
    day: &DayTrace,
    experiment: &Experiment,
    victim: &MovementEvent,
    attack_from: f64,
    attack_to: f64,
) -> Result<AttackConditionResult, String> {
    let hz = experiment.trace.tick_hz();
    let params = experiment.params;
    let streams: Vec<usize> = (0..day.n_streams()).collect();
    let run = run_md_over_day(day, &streams, hz, params)?;
    let significant = run.significant_windows(params.t_delta_ticks(hz));
    let (lo, hi) = victim.true_window(params.true_window_delta_s);
    let departure_detected = significant.iter().any(|w| w.overlaps_interval(lo, hi, hz));
    let windows_during_attack = significant
        .iter()
        .filter(|w| w.overlaps_interval(attack_from, attack_to, hz))
        .count();

    let mut guard = IntegrityGuard::new(streams.len(), hz, GuardParams::default());
    let mut first_alarm: Option<f64> = None;
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day.n_ticks() {
        for (dst, &v) in row.iter_mut().zip(day.row(tick)) {
            *dst = v as f64;
        }
        for alarm in guard.step(tick, &row) {
            let t = alarm.tick as f64 / hz;
            if t >= attack_from && first_alarm.is_none() {
                first_alarm = Some(t);
            }
        }
    }
    Ok(AttackConditionResult {
        name: name.to_string(),
        departure_detected,
        windows_during_attack,
        guard_alarmed: first_alarm.is_some(),
        alarm_latency_s: first_alarm.map(|t| (t - attack_from).max(0.0)),
    })
}

/// Runs the three attack conditions against the first departure of the
/// experiment's first day.
///
/// # Errors
///
/// Fails if the day contains no departure or MD cannot run.
pub fn jamming_study(experiment: &Experiment) -> Result<(Vec<AttackConditionResult>, TextTable), String> {
    let victim = *experiment
        .scenario
        .events()
        .leaves()
        .find(|e| e.day == 0)
        .ok_or("no departure on day 0")?;
    let attack_from = victim.t_start - 10.0;
    let attack_to = victim.t_end + 10.0;
    let room = experiment.scenario.layout().room();
    let centre = Point::new(room.center().x, room.center().y);
    let day = &experiment.trace.days()[0];

    let noise = Jammer {
        position: centre,
        radius_m: 4.0,
        kind: JammerKind::Noise { sd_db: 5.0 },
        active_from_s: attack_from,
        active_to_s: attack_to,
    };
    let saturate = Jammer {
        position: centre,
        radius_m: 4.0,
        kind: JammerKind::Saturate { level_dbm: -35.0 },
        active_from_s: attack_from,
        active_to_s: attack_to,
    };

    let results = vec![
        evaluate_condition("no attack", day, experiment, &victim, attack_from, attack_to)?,
        evaluate_condition(
            "noise jammer",
            &jam_day(day, experiment, &noise, 0xA77AC0),
            experiment,
            &victim,
            attack_from,
            attack_to,
        )?,
        evaluate_condition(
            "saturation jammer",
            &jam_day(day, experiment, &saturate, 0xA77AC1),
            experiment,
            &victim,
            attack_from,
            attack_to,
        )?,
    ];
    let mut t = TextTable::new(
        "Extension: wireless physical attacks during a departure (paper SS V-C)",
        &["condition", "departure detected", "windows in attack", "integrity alarm", "alarm latency (s)"],
    );
    for r in &results {
        t.add_row(vec![
            r.name.clone(),
            if r.departure_detected { "yes" } else { "MASKED" }.to_string(),
            r.windows_during_attack.to_string(),
            if r.guard_alarmed { "yes" } else { "no" }.to_string(),
            r.alarm_latency_s.map_or("-".to_string(), |l| format!("{l:.1}")),
        ]);
    }
    Ok((results, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| Experiment::small(0x7A3).unwrap())
    }

    #[test]
    fn jamming_study_matches_the_papers_claims() {
        let (results, table) = jamming_study(fixture()).unwrap();
        assert_eq!(results.len(), 3);
        let (clean, noise, saturate) = (&results[0], &results[1], &results[2]);
        // Clean channel: departure detected, guard quiet.
        assert!(clean.departure_detected, "{clean:?}");
        assert!(!clean.guard_alarmed, "{clean:?}");
        // Noise jamming cannot hide the departure silently: the window
        // count during the attack stays >= 1 (MD keeps firing).
        assert!(noise.windows_during_attack >= 1, "{noise:?}");
        // Saturation jamming is the dangerous one: it can mask the
        // departure...
        assert!(
            !saturate.departure_detected || saturate.guard_alarmed,
            "saturation must be masked-but-alarmed or detected: {saturate:?}"
        );
        // ...but the integrity guard catches the silenced streams fast.
        assert!(saturate.guard_alarmed, "{saturate:?}");
        assert!(
            saturate.alarm_latency_s.unwrap() < 10.0,
            "alarm too slow: {saturate:?}"
        );
        assert_eq!(table.n_rows(), 3);
    }
}
