//! Adversarial studies: physical-layer jamming (paper §V-C) and the
//! sensor-plane containment suite (`reproduce attacks`).
//!
//! Two complementary threat surfaces:
//!
//! * [`jamming_study`] — the paper's §V-C conditions over the *same*
//!   recorded day: no attack, a noise jammer, and a saturation jammer,
//!   each timed to cover one victim's departure. For every condition
//!   we report whether MD still detected the departure and whether
//!   the channel-integrity guard raised an alarm — turning §V-C's "we
//!   believe such attacks are ineffective / detectable" into numbers.
//!
//! * [`containment_study`] — the digital adversary of DESIGN.md §15:
//!   every seeded [`AttackKind`] family spliced into an authenticated
//!   (keyed-MAC v4) day stream, scored on detection rate, rate
//!   limiting, time-to-quarantine, and — the containment invariant —
//!   decision-stream divergence against the clean run, which must be
//!   **zero** for every contained family. A two-engine emulation of a
//!   fleet shows per-office flood targeting leaves the co-tenant
//!   untouched.

use fadewich_core::auth::KeyTable;
use fadewich_core::config::FadewichParams;
use fadewich_core::controller::Action;
use fadewich_core::guard::{GuardParams, IntegrityGuard};
use fadewich_core::kma::Kma;
use fadewich_core::md::run_md_over_day;
use fadewich_geometry::Point;
use fadewich_officesim::{DayTrace, MovementEvent, Scenario, ScenarioConfig, ScheduleParams};
use fadewich_rfchannel::{Jammer, JammerKind};
use fadewich_runtime::{
    replay, AttackKind, AttackModel, EngineAuth, EngineConfig, EngineEvent, StreamingEngine,
};
use fadewich_stats::rng::Rng;

use crate::experiment::Experiment;
use crate::par::timing;
use crate::report::TextTable;

/// Result of one attack condition.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConditionResult {
    /// Condition name.
    pub name: String,
    /// Was the victim's departure detected by MD?
    pub departure_detected: bool,
    /// Significant windows during the attack interval (noise jamming
    /// floods this).
    pub windows_during_attack: usize,
    /// Did the integrity guard alarm during the attack?
    pub guard_alarmed: bool,
    /// Alarm latency from attack start (s), if alarmed.
    pub alarm_latency_s: Option<f64>,
}

/// Applies a jammer to a copy of a recorded day.
fn jam_day(
    day: &DayTrace,
    experiment: &Experiment,
    jammer: &Jammer,
    seed: u64,
) -> DayTrace {
    let affected = jammer.affected_links(experiment.trace.link_segments());
    let hz = experiment.trace.tick_hz();
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = DayTrace::with_capacity(day.n_streams(), day.n_ticks());
    let mut row = vec![0.0f64; day.n_streams()];
    for tick in 0..day.n_ticks() {
        for (dst, &v) in row.iter_mut().zip(day.row(tick)) {
            *dst = v as f64;
        }
        jammer.apply(tick as f64 / hz, &affected, &mut row, &mut rng);
        out.push_row(&row);
    }
    out
}

/// Evaluates one condition.
fn evaluate_condition(
    name: &str,
    day: &DayTrace,
    experiment: &Experiment,
    victim: &MovementEvent,
    attack_from: f64,
    attack_to: f64,
) -> Result<AttackConditionResult, String> {
    let hz = experiment.trace.tick_hz();
    let params = experiment.params;
    let streams: Vec<usize> = (0..day.n_streams()).collect();
    let run = run_md_over_day(day, &streams, hz, params)?;
    let significant = run.significant_windows(params.t_delta_ticks(hz));
    let (lo, hi) = victim.true_window(params.true_window_delta_s);
    let departure_detected = significant.iter().any(|w| w.overlaps_interval(lo, hi, hz));
    let windows_during_attack = significant
        .iter()
        .filter(|w| w.overlaps_interval(attack_from, attack_to, hz))
        .count();

    let mut guard = IntegrityGuard::new(streams.len(), hz, GuardParams::default());
    let mut first_alarm: Option<f64> = None;
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day.n_ticks() {
        for (dst, &v) in row.iter_mut().zip(day.row(tick)) {
            *dst = v as f64;
        }
        for alarm in guard.step(tick, &row) {
            let t = alarm.tick as f64 / hz;
            if t >= attack_from && first_alarm.is_none() {
                first_alarm = Some(t);
            }
        }
    }
    Ok(AttackConditionResult {
        name: name.to_string(),
        departure_detected,
        windows_during_attack,
        guard_alarmed: first_alarm.is_some(),
        alarm_latency_s: first_alarm.map(|t| (t - attack_from).max(0.0)),
    })
}

/// Runs the three attack conditions against the first departure of the
/// experiment's first day.
///
/// # Errors
///
/// Fails if the day contains no departure or MD cannot run.
pub fn jamming_study(experiment: &Experiment) -> Result<(Vec<AttackConditionResult>, TextTable), String> {
    let victim = *experiment
        .scenario
        .events()
        .leaves()
        .find(|e| e.day == 0)
        .ok_or("no departure on day 0")?;
    let attack_from = victim.t_start - 10.0;
    let attack_to = victim.t_end + 10.0;
    let room = experiment.scenario.layout().room();
    let centre = Point::new(room.center().x, room.center().y);
    let day = &experiment.trace.days()[0];

    let noise = Jammer {
        position: centre,
        radius_m: 4.0,
        kind: JammerKind::Noise { sd_db: 5.0 },
        active_from_s: attack_from,
        active_to_s: attack_to,
    };
    let saturate = Jammer {
        position: centre,
        radius_m: 4.0,
        kind: JammerKind::Saturate { level_dbm: -35.0 },
        active_from_s: attack_from,
        active_to_s: attack_to,
    };

    let results = vec![
        evaluate_condition("no attack", day, experiment, &victim, attack_from, attack_to)?,
        evaluate_condition(
            "noise jammer",
            &jam_day(day, experiment, &noise, 0xA77AC0),
            experiment,
            &victim,
            attack_from,
            attack_to,
        )?,
        evaluate_condition(
            "saturation jammer",
            &jam_day(day, experiment, &saturate, 0xA77AC1),
            experiment,
            &victim,
            attack_from,
            attack_to,
        )?,
    ];
    let mut t = TextTable::new(
        "Extension: wireless physical attacks during a departure (paper SS V-C)",
        &["condition", "departure detected", "windows in attack", "integrity alarm", "alarm latency (s)"],
    );
    for r in &results {
        t.add_row(vec![
            r.name.clone(),
            if r.departure_detected { "yes" } else { "MASKED" }.to_string(),
            r.windows_during_attack.to_string(),
            if r.guard_alarmed { "yes" } else { "no" }.to_string(),
            r.alarm_latency_s.map_or("-".to_string(), |l| format!("{l:.1}")),
        ]);
    }
    Ok((results, t))
}

/// One attacker family's containment scorecard over one attacked day.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainmentRow {
    /// Attack family (or baseline) label.
    pub family: String,
    /// Attacker frames spliced into the day's send stream.
    pub frames_injected: usize,
    /// Attacker frames the engine refused (MAC/downgrade rejections
    /// plus anti-replay hits).
    pub frames_rejected: u64,
    /// `rejected / injected`; `None` for the no-attack rows.
    pub detection_rate: Option<f64>,
    /// Rejections past the per-sensor window budget.
    pub rate_limited: u64,
    /// Sensors pushed into attack-quarantine.
    pub quarantines: u64,
    /// Ticks from attack start to the first attack-quarantine event.
    pub quarantine_after_ticks: Option<u64>,
    /// Decisions differing from the clean run — the containment
    /// invariant pins this to zero for every contained family.
    pub diverged_decisions: usize,
}

/// The containment fixture: the streaming schedule, RSSI only — the
/// adversary lives on the sensor uplink, not in the light fixtures.
fn containment_scenario(seed: u64, days: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    }
}

/// What one engine pass under (possible) attack produced.
struct AttackedRun {
    actions: Vec<Action>,
    events: Vec<EngineEvent>,
    counters: fadewich_runtime::counters::RuntimeCounters,
}

/// Decisions differing from the clean reference, counted positionally
/// (extra or missing trailing actions each count as one divergence).
fn divergence(attacked: &[Action], clean: &[Action]) -> usize {
    let shared = attacked.len().min(clean.len());
    let mismatched = (0..shared)
        .filter(|&i| format!("{:?}", attacked[i]) != format!("{:?}", clean[i]))
        .count();
    mismatched + attacked.len().max(clean.len()) - shared
}

/// Runs the containment suite: train on day 0 of a seeded scenario,
/// then stream the first online day — clean, and once per
/// [`AttackKind`] family — through an authenticated engine holding
/// the deployment [`KeyTable`]. A final pair of rows emulates a
/// two-tenant fleet (post-demux) under a flood targeting office 1
/// only.
///
/// Everything is seeded: the scenario, the training pass, and each
/// attacker's draws (`Rng::task_stream(seed, family index)`), so the
/// table is byte-identical across runs and thread counts.
///
/// # Errors
///
/// Needs `days >= 2` (one training day plus the attacked online day);
/// propagates scenario, training, and engine construction errors.
pub fn containment_study(seed: u64, days: usize) -> Result<Vec<ContainmentRow>, String> {
    if days < 2 {
        return Err(format!("containment study needs >= 2 days, got {days}"));
    }
    let (scenario, trace) = timing::time_stage("attacks::scenario", || {
        let scenario =
            Scenario::generate(containment_scenario(seed, days)).map_err(|e| format!("{e}"))?;
        let trace = scenario.simulate().map_err(|e| format!("{e}"))?;
        Ok::<_, String>((scenario, trace))
    })?;
    let params = FadewichParams::default();
    let subset = scenario.layout().sensor_subset(9);
    let streams = trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("attacks::train", || {
        replay::train_re(&scenario, &trace, &streams, 1, &params)
    })?;
    let groups = trace.receiver_groups(&streams);
    let n_keys = groups.iter().map(|(s, _)| *s).max().unwrap_or(0) + 1;
    let keys = KeyTable::derive(seed ^ 0xA7_7AC4, n_keys);

    let day = 1;
    let n_ticks = trace.days()[day].n_ticks() as u64;
    let run = |frames: &[(u64, Vec<u8>)]| -> Result<AttackedRun, String> {
        let inputs = scenario.input_trace(day, 0);
        let kma = Kma::new(&inputs);
        let cfg = EngineConfig::new(trace.tick_hz(), params);
        let mut engine = StreamingEngine::new(cfg, groups.clone(), &re, kma)?;
        engine.set_auth(EngineAuth::new(keys.clone()));
        for (_, bytes) in frames {
            engine.ingest_bytes(bytes);
        }
        engine.finish(n_ticks);
        Ok(AttackedRun {
            actions: engine.actions().to_vec(),
            events: engine.events().to_vec(),
            counters: engine.counters().clone(),
        })
    };

    // The clean reference: every genuine frame signed, none rejected.
    let clean = replay::signed_day_frames(&trace, &streams, &groups, day, 0, &keys)?;
    let clean_run = timing::time_stage("attacks::clean", || run(&clean))?;

    // Attack window: a mid-day stretch long enough to exhaust several
    // per-sensor budget windows; the claimed identity is a mid-layout
    // sensor with that group's genuine payload width.
    let from_tick = n_ticks / 3;
    let to_tick = (from_tick + 240).min(n_ticks);
    let target = groups[groups.len() / 2].0;
    let width = groups[groups.len() / 2].1.len();
    let model = |kind| AttackModel {
        kind,
        sensor: target,
        payload_width: width,
        from_tick,
        to_tick,
        target_office: None,
    };
    let families = [
        ("forged-mac", model(AttackKind::ForgedMac { frames_per_tick: 2 })),
        ("absent-mac", model(AttackKind::AbsentMac { frames_per_tick: 2 })),
        ("replay", model(AttackKind::ReplayCapture { capture_p: 0.2, delay_ticks: 40 })),
        ("deauth-storm", model(AttackKind::DeauthStorm { frames_per_tick: 6 })),
    ];

    let score = |family: &str, injected: usize, r: &AttackedRun| -> ContainmentRow {
        let c = &r.counters;
        let rejected = c.frames_unauthenticated + c.frames_replayed;
        ContainmentRow {
            family: family.to_string(),
            frames_injected: injected,
            frames_rejected: rejected,
            detection_rate: (injected > 0).then(|| rejected as f64 / injected as f64),
            rate_limited: c.frames_rate_limited,
            quarantines: c.attack_quarantines,
            quarantine_after_ticks: r.events.iter().find_map(|e| match e {
                EngineEvent::SensorAttackQuarantined { tick, .. } => {
                    Some(tick.saturating_sub(from_tick))
                }
                _ => None,
            }),
            diverged_decisions: divergence(&r.actions, &clean_run.actions),
        }
    };

    let mut rows = vec![score("no attack", 0, &clean_run)];
    for (i, (family, attack)) in families.iter().enumerate() {
        let mut rng = Rng::task_stream(seed ^ 0x5A17, i as u64);
        let merged = attack.apply(&clean, &mut rng);
        let injected = merged.len() - clean.len();
        let attacked = timing::time_stage(&format!("attacks::{family}"), || run(&merged))?;
        rows.push(score(family, injected, &attacked));
    }

    // Fleet emulation: two tenants, post-demux, flood aimed at office
    // 1 only. The bystander's stream is untouched by construction —
    // the demux routes on the office id the storm stamps in — so its
    // row is the clean run's scorecard under a second label.
    let clean_office1 = replay::signed_day_frames(&trace, &streams, &groups, day, 1, &keys)?;
    let storm = AttackModel {
        target_office: Some(1),
        ..model(AttackKind::DeauthStorm { frames_per_tick: 6 })
    };
    let mut rng = Rng::task_stream(seed ^ 0x5A17, families.len() as u64);
    let merged = storm.apply(&clean_office1, &mut rng);
    let injected = merged.len() - clean_office1.len();
    let flooded = timing::time_stage("attacks::targeted-flood", || run(&merged))?;
    rows.push(score("flood -> office 1 (target)", injected, &flooded));
    rows.push(score("flood -> office 0 (bystander)", 0, &clean_run));
    Ok(rows)
}

/// Renders the containment suite as the `reproduce attacks` table.
#[must_use]
pub fn containment_table(rows: &[ContainmentRow]) -> TextTable {
    let mut t = TextTable::new(
        "Containment: seeded attacker families vs the authenticated engine",
        &[
            "family", "injected", "rejected", "detection", "rate-limited", "quarantines",
            "quarantine after (ticks)", "diverged decisions",
        ],
    );
    for r in rows {
        t.add_row(vec![
            r.family.clone(),
            r.frames_injected.to_string(),
            r.frames_rejected.to_string(),
            r.detection_rate.map_or("-".to_string(), |d| format!("{d:.3}")),
            r.rate_limited.to_string(),
            r.quarantines.to_string(),
            r.quarantine_after_ticks.map_or("-".to_string(), |t| t.to_string()),
            r.diverged_decisions.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| Experiment::small(0x7A3).unwrap())
    }

    #[test]
    fn jamming_study_matches_the_papers_claims() {
        let (results, table) = jamming_study(fixture()).unwrap();
        assert_eq!(results.len(), 3);
        let (clean, noise, saturate) = (&results[0], &results[1], &results[2]);
        // Clean channel: departure detected, guard quiet.
        assert!(clean.departure_detected, "{clean:?}");
        assert!(!clean.guard_alarmed, "{clean:?}");
        // Noise jamming cannot hide the departure silently: the window
        // count during the attack stays >= 1 (MD keeps firing).
        assert!(noise.windows_during_attack >= 1, "{noise:?}");
        // Saturation jamming is the dangerous one: it can mask the
        // departure...
        assert!(
            !saturate.departure_detected || saturate.guard_alarmed,
            "saturation must be masked-but-alarmed or detected: {saturate:?}"
        );
        // ...but the integrity guard catches the silenced streams fast.
        assert!(saturate.guard_alarmed, "{saturate:?}");
        assert!(
            saturate.alarm_latency_s.unwrap() < 10.0,
            "alarm too slow: {saturate:?}"
        );
        assert_eq!(table.n_rows(), 3);
    }

    fn containment_rows() -> &'static Vec<ContainmentRow> {
        static ROWS: OnceLock<Vec<ContainmentRow>> = OnceLock::new();
        ROWS.get_or_init(|| containment_study(0xD3B, 2).unwrap())
    }

    #[test]
    fn every_attack_family_is_fully_detected_and_contained() {
        let rows = containment_rows();
        assert_eq!(rows.len(), 7, "{rows:?}");
        for r in rows.iter() {
            // The containment invariant: no family moves a decision.
            assert_eq!(r.diverged_decisions, 0, "{r:?}");
        }
        let baseline = &rows[0];
        assert_eq!(baseline.frames_rejected, 0, "{baseline:?}");
        assert_eq!(baseline.quarantines, 0, "{baseline:?}");
        for r in rows.iter().filter(|r| r.frames_injected > 0) {
            assert!(r.frames_injected > 100, "attack too small to exercise budgets: {r:?}");
            assert_eq!(r.detection_rate, Some(1.0), "a frame slipped through: {r:?}");
        }
    }

    #[test]
    fn floods_exhaust_the_budget_and_quarantine_fast() {
        for family in ["forged-mac", "absent-mac", "deauth-storm"] {
            let r = containment_rows().iter().find(|r| r.family == family).unwrap();
            assert!(r.rate_limited > 0, "{r:?}");
            assert_eq!(r.quarantines, 1, "{r:?}");
            // Budget 16 at >= 2 rejections/tick: quarantine lands well
            // inside the first 64-tick window.
            assert!(r.quarantine_after_ticks.unwrap() < 64, "{r:?}");
        }
    }

    #[test]
    fn targeted_flood_leaves_the_bystander_office_untouched() {
        let rows = containment_rows();
        let target = rows.iter().find(|r| r.family.contains("office 1")).unwrap();
        let bystander = rows.iter().find(|r| r.family.contains("office 0")).unwrap();
        assert!(target.frames_injected > 1000, "{target:?}");
        assert_eq!(target.detection_rate, Some(1.0), "{target:?}");
        assert_eq!(target.quarantines, 1, "{target:?}");
        assert_eq!(bystander.frames_rejected, 0, "{bystander:?}");
        assert_eq!(bystander.quarantines, 0, "{bystander:?}");
        assert_eq!(bystander.diverged_decisions, 0, "{bystander:?}");
    }

    #[test]
    fn containment_study_is_deterministic_and_renders() {
        let again = containment_study(0xD3B, 2).unwrap();
        assert_eq!(
            format!("{:?}", containment_rows()),
            format!("{again:?}"),
            "containment suite must be seed-deterministic"
        );
        let table = containment_table(containment_rows()).render();
        assert!(table.contains("deauth-storm") && table.contains("bystander"), "{table}");
        assert!(containment_study(0xD3B, 1).is_err(), "needs a training + online day");
    }
}
