//! FADEWICH vs the RTI baseline, head to head.
//!
//! The paper's §II-A dismisses RTI-style device-free localization for
//! the deauthentication problem: it needs an empty-room calibration
//! and a (near-)static radio environment, neither of which a busy
//! office provides. With both systems implemented and a simulator in
//! hand, we can measure the claim instead of citing it: run the RTI
//! departure detector and FADEWICH's MD over the *same* recorded days
//! and compare departure recall, false alarms and latency.

use std::collections::HashMap;

use fadewich_core::md::run_md_over_day;
use fadewich_officesim::MovementEvent;
use fadewich_rti::{RtiDepartureDetector, RtiDetectorParams};

use crate::experiment::Experiment;
use crate::report::TextTable;

/// Departure-detection quality of one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepartureScore {
    /// Ground-truth departures in the evaluated days.
    pub departures: usize,
    /// Departures detected within the acceptance window.
    pub detected: usize,
    /// Detections matching no departure.
    pub false_alarms: usize,
    /// Mean detection latency from the movement start (s), over
    /// detected departures.
    pub mean_latency_s: f64,
}

impl DepartureScore {
    /// Recall over ground-truth departures.
    pub fn recall(&self) -> f64 {
        if self.departures == 0 {
            0.0
        } else {
            self.detected as f64 / self.departures as f64
        }
    }
}

/// The comparison result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineComparison {
    /// FADEWICH MD, scored on departures only.
    pub fadewich: DepartureScore,
    /// The RTI departure detector.
    pub rti: DepartureScore,
}

impl BaselineComparison {
    /// Renders the comparison.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Baseline: FADEWICH MD vs RTI departure detection (same trace)",
            &["system", "departures", "detected", "recall", "false alarms", "mean latency (s)"],
        );
        for (name, s) in [("FADEWICH MD", &self.fadewich), ("RTI detector", &self.rti)] {
            t.add_row(vec![
                name.to_string(),
                s.departures.to_string(),
                s.detected.to_string(),
                format!("{:.2}", s.recall()),
                s.false_alarms.to_string(),
                format!("{:.1}", s.mean_latency_s),
            ]);
        }
        t
    }
}

/// How long after a departure's movement start a detection still
/// counts as that departure (s). RTI's absence counter plus the walk
/// fit comfortably; anything later is a false alarm.
const ACCEPT_WINDOW_S: f64 = 20.0;

/// Averages the two directed streams of every undirected link.
fn undirected_links(
    experiment: &Experiment,
) -> (Vec<fadewich_geometry::Segment>, Vec<(usize, usize)>) {
    let ids = experiment.trace.link_ids();
    let mut index: HashMap<(usize, usize), usize> = HashMap::new();
    for (si, id) in ids.iter().enumerate() {
        index.insert((id.tx, id.rx), si);
    }
    let mut segments = Vec::new();
    let mut stream_pairs = Vec::new();
    for (si, id) in ids.iter().enumerate() {
        if id.tx < id.rx {
            segments.push(experiment.trace.link_segments()[si]);
            stream_pairs.push((si, index[&(id.rx, id.tx)]));
        }
    }
    (segments, stream_pairs)
}

fn score_detections(
    detections: &[(usize, f64, usize)], // (day, time, workstation)
    events: &[&MovementEvent],
    check_workstation: bool,
) -> DepartureScore {
    let mut matched = vec![false; events.len()];
    let mut latencies = Vec::new();
    let mut false_alarms = 0usize;
    for &(day, t, ws) in detections {
        let hit = events.iter().enumerate().find(|(ei, e)| {
            !matched[*ei]
                && e.day == day
                && t >= e.t_start - 1.0
                && t <= e.t_start + ACCEPT_WINDOW_S
                && (!check_workstation || e.label() == ws + 1)
        });
        match hit {
            Some((ei, e)) => {
                matched[ei] = true;
                latencies.push(t - e.t_start);
            }
            None => false_alarms += 1,
        }
    }
    DepartureScore {
        departures: events.len(),
        detected: matched.iter().filter(|&&m| m).count(),
        false_alarms,
        mean_latency_s: fadewich_stats::descriptive::mean(&latencies),
    }
}

/// Runs the comparison over all days of an experiment at full sensor
/// count.
///
/// # Errors
///
/// Propagates MD/RTI construction failures.
pub fn baseline_comparison(
    experiment: &Experiment,
    rti_params: RtiDetectorParams,
) -> Result<BaselineComparison, String> {
    let hz = experiment.trace.tick_hz();
    let params = experiment.params;
    let leaves: Vec<&MovementEvent> = experiment.scenario.events().leaves().collect();

    // --- FADEWICH MD: significant windows as departure detections.
    // (MD alone does not attribute a workstation; RE does. For the
    // detection-level comparison we score both systems on *when* they
    // fire.)
    let streams: Vec<usize> = (0..experiment.trace.n_streams()).collect();
    let mut md_detections = Vec::new();
    for (day, day_trace) in experiment.trace.days().iter().enumerate() {
        let run = run_md_over_day(day_trace, &streams, hz, params)?;
        for w in run.significant_windows(params.t_delta_ticks(hz)) {
            // Rule 1 acts at t1 + t_delta: that is the detection time.
            md_detections.push((day, w.start_s(hz) + params.t_delta_s, usize::MAX));
        }
    }
    // Enter events also produce windows; exclude detections that match
    // an enter from the false-alarm count by pre-filtering them.
    let enters: Vec<&MovementEvent> = experiment
        .scenario
        .events()
        .events()
        .iter()
        .filter(|e| !e.is_leave())
        .collect();
    let md_detections: Vec<(usize, f64, usize)> = md_detections
        .into_iter()
        .filter(|&(day, t, _)| {
            !enters.iter().any(|e| {
                e.day == day && t >= e.t_start - 1.0 && t <= e.t_start + ACCEPT_WINDOW_S
            })
        })
        .collect();
    let fadewich = score_detections(&md_detections, &leaves, false);

    // --- RTI detector.
    let (segments, stream_pairs) = undirected_links(experiment);
    let mut rti_detections = Vec::new();
    for (day, day_trace) in experiment.trace.days().iter().enumerate() {
        let mut detector = RtiDepartureDetector::new(
            &segments,
            experiment.scenario.layout().room(),
            experiment.scenario.layout().workstations(),
            rti_params,
        )?;
        let mut rssi = vec![0.0f64; stream_pairs.len()];
        for tick in 0..day_trace.n_ticks() {
            let row = day_trace.row(tick);
            for (k, &(a, b)) in stream_pairs.iter().enumerate() {
                rssi[k] = 0.5 * (row[a] as f64 + row[b] as f64);
            }
            for fired in detector.step(tick, &rssi) {
                rti_detections.push((day, tick as f64 / hz, fired.workstation));
            }
        }
    }
    let rti = score_detections(&rti_detections, &leaves, true);
    Ok(BaselineComparison { fadewich, rti })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_fadewich_wins_on_precision() {
        let exp = Experiment::small(0xB45E).unwrap();
        let cmp = baseline_comparison(&exp, RtiDetectorParams::default()).unwrap();
        assert!(cmp.fadewich.departures > 0);
        assert_eq!(cmp.fadewich.departures, cmp.rti.departures);
        // FADEWICH detects most departures...
        assert!(
            cmp.fadewich.recall() >= 0.75,
            "FADEWICH recall = {}",
            cmp.fadewich.recall()
        );
        // ...and does not false-alarm more than the calibration-bound
        // baseline (the paper's §II-A argument, measured).
        assert!(
            cmp.fadewich.false_alarms <= cmp.rti.false_alarms,
            "FADEWICH {} vs RTI {} false alarms",
            cmp.fadewich.false_alarms,
            cmp.rti.false_alarms
        );
        assert_eq!(cmp.render().n_rows(), 2);
    }
}
