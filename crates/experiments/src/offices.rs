//! Generalization across office setups — the paper's first
//! future-work question (§VIII-A): "investigate the performance of the
//! system in different setups (other offices, with different
//! dimensions and users)", and whether "the wireless devices currently
//! present in a common office (e.g., desktop computers, Internet of
//! Things devices) are sufficient".

use fadewich_core::FadewichParams;
use fadewich_geometry::{Point, Rect};
use fadewich_officesim::{OfficeLayout, ScenarioConfig, ScheduleParams};

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::report::TextTable;

/// One evaluated setup.
#[derive(Debug, Clone, PartialEq)]
pub struct OfficeResult {
    /// Human-readable setup name.
    pub name: String,
    /// Room area (m²).
    pub area_m2: f64,
    /// Number of users/workstations.
    pub users: usize,
    /// Number of sensors.
    pub sensors: usize,
    /// Ground-truth events generated.
    pub events: usize,
    /// MD detection recall.
    pub recall: f64,
    /// Cross-validated RE accuracy.
    pub accuracy: f64,
}

/// The named setups of the sweep.
///
/// Includes the paper office, a smaller and a larger room, and an
/// "existing devices" deployment where the radios are the machines an
/// office already owns: one per desk, a router in a corner, a printer
/// and a smart display — no dedicated wall sensors at all.
pub fn office_setups() -> Vec<(String, OfficeLayout)> {
    let mut setups = Vec::new();
    setups.push(("paper office 6x3, 3 users, 9 wall sensors".to_string(), OfficeLayout::paper_office()));

    let small = Rect::with_size(4.0, 3.0);
    setups.push((
        "small office 4x3, 2 users, 6 wall sensors".to_string(),
        OfficeLayout::custom(
            small,
            OfficeLayout::wall_sensors(small, 6),
            vec![Point::new(1.0, 2.3), Point::new(1.0, 0.8)],
            Point::new(3.8, 0.2),
        )
        .expect("small office geometry"),
    ));

    let large = Rect::with_size(8.0, 4.0);
    setups.push((
        "large office 8x4, 4 users, 9 wall sensors".to_string(),
        OfficeLayout::custom(
            large,
            OfficeLayout::wall_sensors(large, 9),
            vec![
                Point::new(1.5, 3.2),
                Point::new(4.0, 3.4),
                Point::new(6.5, 3.2),
                Point::new(1.5, 1.0),
            ],
            Point::new(7.6, 0.2),
        )
        .expect("large office geometry"),
    ));

    // Existing devices: the desks' own machines plus ambient gadgets.
    let room = Rect::with_size(6.0, 3.0);
    let desks = vec![Point::new(2.0, 2.4), Point::new(3.6, 2.6), Point::new(1.2, 0.9)];
    let devices = vec![
        Point::new(2.0, 2.5), // desktop at w1
        Point::new(3.6, 2.7), // desktop at w2
        Point::new(1.2, 1.0), // desktop at w3
        Point::new(0.2, 0.2), // WiFi router in the corner
        Point::new(5.5, 2.7), // network printer
        Point::new(3.0, 0.2), // smart display on the south wall
    ];
    setups.push((
        "existing devices 6x3, 3 users, 6 ad-hoc radios".to_string(),
        OfficeLayout::custom(room, devices, desks, Point::new(5.7, 0.1))
            .expect("existing-devices geometry"),
    ));
    setups
}

/// Runs the sweep: each setup gets its own simulated day(s) and the
/// full MD + RE pipeline at its full sensor count.
///
/// # Errors
///
/// Propagates scenario/pipeline failures.
pub fn office_sweep(
    seed: u64,
    schedule: ScheduleParams,
    days: usize,
) -> Result<(Vec<OfficeResult>, TextTable), String> {
    // One worker per setup; each setup's scenario seed depends only
    // on its index, so the sweep is order- and pool-size-independent.
    let setups = office_setups();
    let results = timing::time_stage("offices::sweep", || {
        par::par_map(&setups, |i, (name, layout)| -> Result<_, String> {
            let n_sensors = layout.sensors().len();
            let users = layout.n_workstations();
            let area = layout.room().width() * layout.room().height();
            let config = ScenarioConfig {
                seed: seed ^ (i as u64) << 16,
                days,
                layout: layout.clone(),
                schedule: schedule.clone(),
                ..ScenarioConfig::default()
            };
            let experiment = Experiment::from_config(config, FadewichParams::default())?;
            let run = experiment.run_for_sensors(n_sensors, 3)?;
            Ok(OfficeResult {
                name: name.clone(),
                area_m2: area,
                users,
                sensors: n_sensors,
                events: experiment.scenario.events().len(),
                recall: run.stage.detection.counts.recall(),
                accuracy: run.accuracy,
            })
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let mut t = TextTable::new(
        "Extension: FADEWICH across office setups",
        &["setup", "area m2", "users", "sensors", "events", "MD recall", "RE accuracy"],
    );
    for r in &results {
        t.add_row(vec![
            r.name.clone(),
            format!("{:.0}", r.area_m2),
            r.users.to_string(),
            r.sensors.to_string(),
            r.events.to_string(),
            format!("{:.2}", r.recall),
            format!("{:.2}", r.accuracy),
        ]);
    }
    Ok((results, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_schedule() -> ScheduleParams {
        ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [2, 2, 3, 3],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        }
    }

    #[test]
    fn setups_are_valid_geometry() {
        for (name, layout) in office_setups() {
            assert!(layout.sensors().len() >= 2, "{name}");
            for ws in 0..layout.n_workstations() {
                let path = layout.path_to_door(ws);
                assert!(path.length() > 1.0, "{name}: w{} path too short", ws + 1);
                // Path stays inside the room.
                let mut s = 0.0;
                while s <= path.length() {
                    assert!(
                        layout.room().contains(path.point_at(s)),
                        "{name}: path leaves the room"
                    );
                    s += 0.1;
                }
            }
        }
    }

    #[test]
    fn sweep_runs_all_setups() {
        let (results, table) = office_sweep(0x0FF1, quick_schedule(), 1).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(table.n_rows(), 4);
        for r in &results {
            assert!(r.events > 0, "{}: no events", r.name);
            assert!(
                r.recall > 0.4,
                "{}: recall collapsed to {}",
                r.name,
                r.recall
            );
        }
        // The paper office with 9 dedicated sensors should beat the
        // ad-hoc existing-devices deployment on detection.
        let paper = &results[0];
        let adhoc = &results[3];
        assert!(
            paper.recall >= adhoc.recall - 0.05,
            "paper {} vs ad-hoc {}",
            paper.recall,
            adhoc.recall
        );
    }
}
