//! Span-profile study over the decision audit trail — the
//! `reproduce profile` target.
//!
//! PR 5's tracing spans stamp every MD variation window and Rule 1
//! evaluation with the logical tick clock. Folding those spans gives a
//! *deterministic* profile of where the tick budget goes — per-stage
//! self time vs total time, in ticks, byte-identical across runs and
//! thread counts — plus collapsed stacks in the flamegraph text
//! format for visual drill-down. This is the replay-side complement to
//! `fadewichd stats --profile` (which folds a `--trace-out` JSONL from
//! a live run): same [`Profile`] fold, different source.

use fadewich_core::FadewichParams;
use fadewich_officesim::{ScenarioConfig, ScheduleParams};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;
use fadewich_telemetry::{Profile, Telemetry};

use crate::experiment::Experiment;
use crate::par::{self, timing};

/// Per-day span profiles plus the merged whole-run fold.
#[derive(Debug, Clone)]
pub struct ProfileStudy {
    /// `(day, profile)` for each replayed online day, day order.
    pub per_day: Vec<(usize, Profile)>,
    /// All online days folded together.
    pub merged: Profile,
}

/// Replays every online day with a buffering [`Telemetry`] handle and
/// folds the emitted spans into per-day and merged profiles.
///
/// # Errors
///
/// Returns a message for an invalid train/online split or when RE
/// training / engine construction fails.
pub fn profile_study(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<ProfileStudy, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!("need 1..{} training days, got {train_days}", n_days - 1));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("profile::train", || {
        replay::train_re(
            &experiment.scenario,
            &experiment.trace,
            &streams,
            train_days,
            &experiment.params,
        )
    })?;
    let hz = experiment.trace.tick_hz();

    let per_day: Result<Vec<(usize, Profile)>, String> =
        timing::time_stage("profile::replay", || {
            par::par_map_indices(n_days - train_days, |i| {
                let day = train_days + i;
                let telemetry = Telemetry::buffering();
                let cfg = EngineConfig::new(hz, experiment.params);
                replay::stream_day_with_telemetry(
                    &experiment.scenario,
                    &experiment.trace,
                    &streams,
                    &re,
                    day,
                    cfg,
                    &LinkModel::lossless(),
                    0xF10D,
                    &telemetry,
                )?;
                Ok((day, Profile::from_records(&telemetry.records())))
            })
            .into_iter()
            .collect()
        });
    let per_day = per_day?;
    let mut merged = Profile::default();
    for (_, p) in &per_day {
        merged.merge_from(p);
    }
    Ok(ProfileStudy { per_day, merged })
}

/// The standalone form the explicit-only `reproduce profile` target
/// uses: generates its own `days`-day office scenario (the shared
/// quick experiment is single-day, too short to split into train and
/// online), trains on day 0, and profiles the rest.
///
/// # Errors
///
/// Propagates scenario generation and [`profile_study`] failures.
pub fn profile_study_standalone(
    seed: u64,
    days: usize,
    n_sensors: usize,
) -> Result<ProfileStudy, String> {
    let config = ScenarioConfig {
        seed,
        days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    let experiment = Experiment::from_config(config, FadewichParams::default())?;
    profile_study(&experiment, 1, n_sensors)
}

/// Renders the study as the `reproduce profile` report: per-day stage
/// tables, the merged table, and the merged collapsed stacks
/// (`path self_ticks` per line — `flamegraph.pl`-compatible). Every
/// number is a logical-tick count, so the report carries no `wall_`
/// lines at all and is byte-identical across same-seed runs.
#[must_use]
pub fn profile_report(study: &ProfileStudy) -> String {
    let mut out = String::new();
    for (day, p) in &study.per_day {
        out.push_str(&format!("== span profile: day {day} ==\n"));
        out.push_str(&p.table());
        out.push('\n');
    }
    out.push_str("== span profile: all online days ==\n");
    out.push_str(&study.merged.table());
    out.push('\n');
    out.push_str("== collapsed stacks (all online days) ==\n");
    out.push_str(&study.merged.collapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_study_is_deterministic_and_nonempty() {
        let a = profile_study_standalone(0xD3B, 2, 9).unwrap();
        assert_eq!(a.per_day.len(), 1);
        let (day, p) = &a.per_day[0];
        assert_eq!(*day, 1);
        assert!(!p.is_empty(), "a replayed day must emit spans");
        let md = p.stage("md_window").expect("md_window stage present");
        assert!(md.count > 0);
        assert!(md.total_ticks >= md.self_ticks);
        // Rule 1 evaluations nest under variation windows, so the
        // collapsed stacks carry the two-deep path.
        assert!(
            a.merged.collapsed().contains("md_window;rule1_eval"),
            "{}",
            a.merged.collapsed()
        );
        let b = profile_study_standalone(0xD3B, 2, 9).unwrap();
        assert_eq!(profile_report(&a), profile_report(&b), "report must be reproducible");
        assert!(
            !profile_report(&a).contains("wall_"),
            "profile report is logical-tick only"
        );
    }

    #[test]
    fn invalid_split_rejected() {
        let experiment = Experiment::small(0xD3B).unwrap();
        assert!(profile_study(&experiment, 0, 9).is_err());
        assert!(profile_study(&experiment, 1, 9).is_err(), "1-day trace has no online days");
    }
}
