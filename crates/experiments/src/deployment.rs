//! The realistic deployment workflow (paper §IV-D3/D4).
//!
//! The paper's headline evaluation uses offline cross-validation, but
//! the system it *describes* is deployed differently: during a
//! training phase, variation windows are labeled **automatically** by
//! correlating them with KMA idle times (ambiguous windows discarded);
//! the resulting samples train RE once; then the online phase runs the
//! Quiet/Noisy controller against live data. This module runs exactly
//! that — train on the first days, drive the online [`Controller`]
//! over the remaining ones — and scores the outcome against ground
//! truth.

use fadewich_core::artifact::{FeatureSchema, ModelBundle};
use fadewich_core::controller::{ActionKind, Controller};
use fadewich_core::features::{extract_features, TrainingSample, FEATURES_PER_STREAM};
use fadewich_core::md::{run_md_over_day, MovementDetector};
use fadewich_core::re::{auto_label, AutoLabelParams, RadioEnvironment};
use fadewich_core::Kma;
use fadewich_stats::rng::Rng;

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::report::TextTable;

/// What the training phase produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingPhaseStats {
    /// Days used for training.
    pub days: usize,
    /// Significant windows observed.
    pub windows: usize,
    /// Windows the automatic labeling accepted.
    pub labeled: usize,
    /// Accepted labels that match ground truth (measurable only in
    /// simulation; the deployed system never knows).
    pub labels_correct: usize,
}

/// Per-departure result of the online phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDeparture {
    /// Event index in the scenario's log.
    pub event_index: usize,
    /// Seconds from leaving the workstation's vicinity to the
    /// controller's deauthentication, if it happened the same day.
    pub deauth_latency: Option<f64>,
    /// Which mechanism fired.
    pub mechanism: Option<DeauthMechanism>,
}

/// How a departure's workstation ended up locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeauthMechanism {
    /// Rule 1 (classified variation window).
    Rule1,
    /// The alert-state screen-saver path.
    Alert,
    /// The baseline inactivity timeout.
    Timeout,
}

/// The full deployment outcome.
#[derive(Debug, Clone)]
pub struct DeploymentOutcome {
    /// Training-phase statistics.
    pub training: TrainingPhaseStats,
    /// One entry per departure in the online days.
    pub departures: Vec<OnlineDeparture>,
    /// Deauthentications of *present* users during online days
    /// (usability errors).
    pub wrongful_deauths: usize,
}

impl DeploymentOutcome {
    /// Fraction of online departures deauthenticated within `secs` of
    /// the user leaving the vicinity.
    pub fn fraction_within(&self, secs: f64) -> f64 {
        if self.departures.is_empty() {
            return 0.0;
        }
        let n = self
            .departures
            .iter()
            .filter(|d| d.deauth_latency.is_some_and(|l| l <= secs))
            .count();
        n as f64 / self.departures.len() as f64
    }

    /// Renders a summary table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Deployment: auto-labeled training days, then the online controller",
            &["metric", "value"],
        );
        t.add_row(vec!["training days".into(), self.training.days.to_string()]);
        t.add_row(vec![
            "training windows (labeled / total)".into(),
            format!("{} / {}", self.training.labeled, self.training.windows),
        ]);
        t.add_row(vec![
            "auto-label agreement with ground truth".into(),
            format!(
                "{:.0}%",
                100.0 * self.training.labels_correct as f64 / self.training.labeled.max(1) as f64
            ),
        ]);
        t.add_row(vec![
            "online departures".into(),
            self.departures.len().to_string(),
        ]);
        t.add_row(vec![
            "deauthenticated within 6 s".into(),
            format!("{:.0}%", 100.0 * self.fraction_within(6.0)),
        ]);
        t.add_row(vec![
            "deauthenticated within 10 s".into(),
            format!("{:.0}%", 100.0 * self.fraction_within(10.0)),
        ]);
        t.add_row(vec![
            "fell through to the timeout".into(),
            self.departures
                .iter()
                .filter(|d| matches!(d.mechanism, Some(DeauthMechanism::Timeout) | None))
                .count()
                .to_string(),
        ]);
        t.add_row(vec![
            "wrongful deauths of present users".into(),
            self.wrongful_deauths.to_string(),
        ]);
        t
    }
}

/// Runs the deployment workflow: auto-labeled training on the first
/// `train_days`, online controller on the rest.
///
/// # Errors
///
/// Returns a message if the scenario has too few days, training yields
/// no usable classifier, or MD construction fails.
pub fn run_deployment(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<DeploymentOutcome, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!(
            "need 1..{} training days, got {train_days}",
            n_days - 1
        ));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let (stats, re) = training_phase(experiment, train_days, &streams)?;

    // --- Online phase: one controller per online day, each day on
    // its own worker. Per-day results merge in day order.
    let online_results = timing::time_stage("deployment::online", || {
        par::par_map_indices(n_days - train_days, |i| -> Result<_, String> {
            let day = train_days + i;
            run_online_day(experiment, day, &streams, &re)
        })
    });
    let mut departures = Vec::new();
    let mut wrongful = 0usize;
    for r in online_results {
        let (day_departures, day_wrongful) = r?;
        departures.extend(day_departures);
        wrongful += day_wrongful;
    }
    Ok(DeploymentOutcome { training: stats, departures, wrongful_deauths: wrongful })
}

/// The deployment training phase: MD + automatic labeling over the
/// first `train_days` (one worker per day, merged in day order so the
/// sample list matches a serial run exactly), then one RE fit.
fn training_phase(
    experiment: &Experiment,
    train_days: usize,
    streams: &[usize],
) -> Result<(TrainingPhaseStats, RadioEnvironment), String> {
    let params = experiment.params;
    let hz = experiment.trace.tick_hz();
    let label_params = AutoLabelParams::default();
    let day_results = timing::time_stage("deployment::train", || {
        par::par_map_indices(train_days, |day| -> Result<_, String> {
            let run = run_md_over_day(&experiment.trace.days()[day], streams, hz, params)?;
            let significant = run.significant_windows(params.t_delta_ticks(hz));
            let n_windows = significant.len();
            let inputs = experiment.scenario.input_trace(day, 0);
            let kma = Kma::new(&inputs);
            let mut labeled = 0usize;
            let mut labels_correct = 0usize;
            let mut day_samples: Vec<TrainingSample> = Vec::new();
            for w in significant {
                let Some(label) = auto_label(&kma, w.start_s(hz), &label_params) else {
                    continue;
                };
                labeled += 1;
                // Ground-truth check (simulation-only bookkeeping).
                let truth = experiment
                    .scenario
                    .events()
                    .events_on_day(day)
                    .find(|e| {
                        let (lo, hi) = e.true_window(params.true_window_delta_s);
                        w.overlaps_interval(lo, hi, hz)
                    })
                    .map(fadewich_officesim::MovementEvent::label);
                if truth == Some(label) {
                    labels_correct += 1;
                }
                day_samples.push(TrainingSample {
                    features: extract_features(
                        &experiment.trace.days()[day],
                        streams,
                        w.start_tick,
                        hz,
                        &params,
                    ),
                    label,
                });
            }
            Ok((n_windows, labeled, labels_correct, day_samples))
        })
    });
    let mut samples: Vec<TrainingSample> = Vec::new();
    let mut stats = TrainingPhaseStats { days: train_days, windows: 0, labeled: 0, labels_correct: 0 };
    for r in day_results {
        let (n_windows, labeled, labels_correct, day_samples) = r?;
        stats.windows += n_windows;
        stats.labeled += labeled;
        stats.labels_correct += labels_correct;
        samples.extend(day_samples);
    }
    let mut rng = Rng::seed_from_u64(0xDE9107);
    let re = RadioEnvironment::train(&samples, None, &mut rng)
        .map_err(|e| format!("training phase failed: {e}"))?;
    Ok((stats, re))
}

/// The artifact-export stage: runs the deployment training phase and
/// packs the result into a versioned [`ModelBundle`] — the file a
/// `fadewichd serve` process loads instead of retraining.
///
/// # Errors
///
/// Mirrors [`run_deployment`] training-phase errors.
pub fn export_model(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<ModelBundle, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!(
            "need 1..{} training days, got {train_days}",
            n_days - 1
        ));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let (_, re) = training_phase(experiment, train_days, &streams)?;
    let params = experiment.params;
    let hz = experiment.trace.tick_hz();
    // MD state from a cold pass over the last training day, matching
    // the deployment's per-day detector lifecycle.
    let mut md = MovementDetector::new(streams.len(), hz, params)?;
    let day = &experiment.trace.days()[train_days - 1];
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day.n_ticks() {
        let full = day.row(tick);
        for (dst, &s) in row.iter_mut().zip(&streams) {
            *dst = full[s] as f64;
        }
        md.step(tick, &row);
    }
    Ok(ModelBundle {
        params,
        schema: FeatureSchema::rssi(
            hz,
            streams.iter().map(|&s| s as u32).collect(),
            FEATURES_PER_STREAM,
        ),
        md: md.snapshot(),
        re,
        keys: None,
    })
}

/// Drives the controller over one online day and scores it against
/// that day's ground truth, returning `(departures, wrongful deauths)`.
fn run_online_day(
    experiment: &Experiment,
    day: usize,
    streams: &[usize],
    re: &RadioEnvironment,
) -> Result<(Vec<OnlineDeparture>, usize), String> {
    let params = experiment.params;
    let hz = experiment.trace.tick_hz();
    let mut departures = Vec::new();
    let mut wrongful = 0usize;
    {
        let inputs = experiment.scenario.input_trace(day, 0);
        let kma = Kma::new(&inputs);
        let mut controller = Controller::new(streams.len(), hz, params, re, kma)?;
        let day_trace = &experiment.trace.days()[day];
        let mut row = vec![0.0f64; streams.len()];
        for tick in 0..day_trace.n_ticks() {
            let full = day_trace.row(tick);
            for (dst, &s) in row.iter_mut().zip(streams) {
                *dst = full[s] as f64;
            }
            controller.step(tick, &row);
        }
        // Score departures of this day against the action log.
        let seated: Vec<Vec<(f64, f64)>> = experiment.scenario.day_schedules()[day]
            .timelines
            .iter()
            .map(|tl| tl.seated_intervals())
            .collect();
        for (ei, event) in experiment.scenario.events().events().iter().enumerate() {
            if event.day != day || !event.is_leave() {
                continue;
            }
            let ws = event.label() - 1;
            // First deauth of this workstation at/after the departure,
            // before the user's same-day return (if any).
            let return_t = experiment
                .scenario
                .events()
                .events_on_day(day)
                .find(|e| !e.is_leave() && e.label() == 0 && e.t_start > event.t_start
                    && workstation_of(e) == ws)
                .map_or(f64::INFINITY, |e| e.t_end);
            let hit = controller
                .actions()
                .iter()
                .find(|a| {
                    a.kind.is_deauth()
                        && a.kind.workstation() == ws
                        && a.t >= event.t_start
                        && a.t < return_t
                });
            departures.push(OnlineDeparture {
                event_index: ei,
                deauth_latency: hit.map(|a| a.t - event.t_proximity),
                mechanism: hit.map(|a| match a.kind {
                    ActionKind::DeauthenticateRule1 { .. } => DeauthMechanism::Rule1,
                    ActionKind::DeauthenticateAlert { .. } => DeauthMechanism::Alert,
                    _ => DeauthMechanism::Timeout,
                }),
            });
        }
        // Wrongful deauths: a deauth while that workstation's user is
        // seated.
        for a in controller.actions() {
            if a.kind.is_deauth() {
                let ws = a.kind.workstation();
                if seated[ws].iter().any(|&(s, u)| a.t >= s && a.t < u) {
                    wrongful += 1;
                }
            }
        }
    }
    Ok((departures, wrongful))
}

fn workstation_of(e: &fadewich_officesim::MovementEvent) -> usize {
    match e.kind {
        fadewich_officesim::EventKind::Enter { workstation }
        | fadewich_officesim::EventKind::Leave { workstation } => workstation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::{ScenarioConfig, ScheduleParams};
    use std::sync::OnceLock;

    /// A 2-day small scenario: day 0 trains, day 1 runs online.
    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| {
            let config = ScenarioConfig {
                seed: 0xD3B,
                days: 2,
                schedule: ScheduleParams {
                    day_seconds: 2.0 * 3600.0,
                    departures_choices: [3, 3, 4, 4],
                    min_seated_s: 400.0,
                    absence_bounds_s: (90.0, 300.0),
                    ..ScheduleParams::default()
                },
                ..ScenarioConfig::default()
            };
            Experiment::from_config(config, fadewich_core::FadewichParams::default()).unwrap()
        })
    }

    #[test]
    fn deployment_trains_and_deauthenticates_online() {
        let out = run_deployment(fixture(), 1, 9).unwrap();
        assert!(out.training.labeled >= 4, "training produced {:?}", out.training);
        // Auto labels are mostly right.
        assert!(
            out.training.labels_correct * 10 >= out.training.labeled * 8,
            "{:?}",
            out.training
        );
        assert!(!out.departures.is_empty());
        // Most online departures get locked well before the timeout.
        let within_30 = out
            .departures
            .iter()
            .filter(|d| d.deauth_latency.is_some_and(|l| l <= 30.0))
            .count();
        assert!(
            within_30 * 10 >= out.departures.len() * 6,
            "only {within_30}/{} within 30 s: {:?}",
            out.departures.len(),
            out.departures
        );
        assert!(!out.render().render().is_empty());
    }

    #[test]
    fn invalid_split_rejected() {
        assert!(run_deployment(fixture(), 0, 9).is_err());
        assert!(run_deployment(fixture(), 2, 9).is_err());
        assert!(export_model(fixture(), 0, 9).is_err());
    }

    #[test]
    fn exported_model_round_trips_and_classifies_identically() {
        let bundle = export_model(fixture(), 1, 9).unwrap();
        assert!(bundle.md.threshold.is_some());
        assert_eq!(bundle.schema.features_per_stream, FEATURES_PER_STREAM);
        let loaded = ModelBundle::decode(&bundle.encode()).unwrap();
        assert_eq!(loaded, bundle);
        // The exported classifier is the same deployment-trained model
        // (same sample order, same seed) the online phase would use.
        let fx = fixture();
        let subset = fx.scenario.layout().sensor_subset(9);
        let streams = fx.trace.stream_indices_for_subset(&subset);
        let (_, re) = training_phase(fx, 1, &streams).unwrap();
        assert_eq!(loaded.re, re);
    }
}
