//! Streaming-vs-batch comparison: the runtime crate's engine replayed
//! over recorded days, next to the batch controller reference.
//!
//! Two questions, one table. Over a lossless link the streaming
//! engine must reproduce the batch decisions **byte for byte** — the
//! `parity` column. Over a lossy link it must keep every tick moving
//! and surface the degradation in its counters — the gap-fill /
//! quarantine / watermark columns. All emitted fields are
//! seed-deterministic (no wall-clock latency figures here; those live
//! in the `fadewichd` summary), so the `reproduce` binary's output
//! stays byte-identical across thread counts.

use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;

use crate::experiment::Experiment;
use crate::par::{self, timing};
use crate::report::TextTable;

/// The lossy link the comparison stresses the engine with: 2% drops,
/// 1% duplicates, 0.5% corruption, up to 3 ticks of jitter.
pub fn stress_link() -> LinkModel {
    LinkModel { drop_p: 0.02, dup_p: 0.01, corrupt_p: 0.005, jitter_ticks: 3 }
}

/// One replayed day under one link condition.
#[derive(Debug, Clone)]
pub struct StreamingDayRow {
    /// Which recorded day was replayed.
    pub day: usize,
    /// `"lossless"` or `"lossy"`.
    pub link: &'static str,
    /// Ticks the engine processed (must equal the day length).
    pub ticks: u64,
    /// Actions the batch reference produced.
    pub batch_actions: usize,
    /// Actions the streaming engine produced.
    pub stream_actions: usize,
    /// Whether the two action logs are byte-identical.
    pub parity: bool,
    /// Hold-last-value substitutions for late/lost frames.
    pub gap_fills: u64,
    /// Stream-ticks masked out of `s_t` past the staleness cap.
    pub masked_stream_ticks: u64,
    /// Sensors quarantined during the day.
    pub quarantines: u64,
    /// Frames that arrived behind an already-closed watermark.
    pub frames_late: u64,
    /// Worst watermark lag seen, in ticks.
    pub watermark_lag_max: u64,
}

/// Replays every online day of `experiment` through the streaming
/// engine, lossless and lossy, and compares against the batch
/// controller.
///
/// # Errors
///
/// Returns a message for an invalid train/online split or when RE
/// training / engine construction fails.
pub fn streaming_comparison(
    experiment: &Experiment,
    train_days: usize,
    n_sensors: usize,
) -> Result<Vec<StreamingDayRow>, String> {
    let n_days = experiment.trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!("need 1..{} training days, got {train_days}", n_days - 1));
    }
    let subset = experiment.scenario.layout().sensor_subset(n_sensors);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let re = timing::time_stage("streaming::train", || {
        replay::train_re(&experiment.scenario, &experiment.trace, &streams, train_days, &experiment.params)
    })?;

    let lossy = stress_link();
    let day_rows = timing::time_stage("streaming::replay", || {
        par::par_map_indices(n_days - train_days, |i| -> Result<_, String> {
            let day = train_days + i;
            let batch = replay::batch_day_actions(
                &experiment.scenario, &experiment.trace, &streams, &re, day, &experiment.params,
            )?;
            let mut rows = Vec::with_capacity(2);
            for (label, link) in [("lossless", LinkModel::lossless()), ("lossy", lossy)] {
                let mut cfg = EngineConfig::new(experiment.trace.tick_hz(), experiment.params);
                cfg.jitter_ticks = cfg.jitter_ticks.max(link.jitter_ticks);
                let out = replay::stream_day(
                    &experiment.scenario, &experiment.trace, &streams, &re, day, cfg, &link, 0xF10D,
                )?;
                let c = &out.counters;
                rows.push(StreamingDayRow {
                    day,
                    link: label,
                    ticks: c.ticks_processed,
                    batch_actions: batch.len(),
                    stream_actions: out.actions.len(),
                    parity: format!("{:?}", out.actions) == format!("{batch:?}"),
                    gap_fills: c.gap_fills,
                    masked_stream_ticks: c.masked_stream_ticks,
                    quarantines: c.quarantines,
                    frames_late: c.frames_late,
                    watermark_lag_max: c.watermark_lag_max,
                });
            }
            Ok(rows)
        })
    });

    let mut rows = Vec::new();
    for r in day_rows {
        rows.extend(r?);
    }
    Ok(rows)
}

/// Renders the comparison as the `reproduce` table.
pub fn streaming_table(rows: &[StreamingDayRow]) -> TextTable {
    let mut t = TextTable::new(
        "Streaming runtime vs batch controller (per online day)",
        &[
            "day", "link", "ticks", "batch acts", "stream acts", "parity",
            "gap fills", "masked", "quarantines", "late", "max lag",
        ],
    );
    for r in rows {
        t.add_row(vec![
            r.day.to_string(),
            r.link.to_string(),
            r.ticks.to_string(),
            r.batch_actions.to_string(),
            r.stream_actions.to_string(),
            if r.parity { "identical".into() } else { "differs".into() },
            r.gap_fills.to_string(),
            r.masked_stream_ticks.to_string(),
            r.quarantines.to_string(),
            r.frames_late.to_string(),
            r.watermark_lag_max.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_officesim::{ScenarioConfig, ScheduleParams};
    use std::sync::OnceLock;

    fn fixture() -> &'static Experiment {
        static FIX: OnceLock<Experiment> = OnceLock::new();
        FIX.get_or_init(|| {
            let config = ScenarioConfig {
                seed: 0xD3B,
                days: 2,
                schedule: ScheduleParams {
                    day_seconds: 2.0 * 3600.0,
                    departures_choices: [3, 3, 4, 4],
                    min_seated_s: 400.0,
                    absence_bounds_s: (90.0, 300.0),
                    ..ScheduleParams::default()
                },
                ..ScenarioConfig::default()
            };
            Experiment::from_config(config, fadewich_core::FadewichParams::default()).unwrap()
        })
    }

    #[test]
    fn lossless_rows_hold_parity_and_lossy_rows_degrade_observably() {
        let rows = streaming_comparison(fixture(), 1, 9).unwrap();
        assert_eq!(rows.len(), 2);
        let lossless = rows.iter().find(|r| r.link == "lossless").unwrap();
        assert!(lossless.parity, "{lossless:?}");
        assert_eq!(lossless.gap_fills, 0);
        let lossy = rows.iter().find(|r| r.link == "lossy").unwrap();
        assert_eq!(lossy.ticks, lossless.ticks, "loss must not stall ticks");
        assert!(lossy.gap_fills > 0, "{lossy:?}");
        let table = streaming_table(&rows).render();
        assert!(table.contains("identical"), "{table}");
    }

    #[test]
    fn invalid_split_rejected() {
        assert!(streaming_comparison(fixture(), 0, 9).is_err());
        assert!(streaming_comparison(fixture(), 2, 9).is_err());
    }
}
