//! Calibration diagnostics: prints per-event MD behaviour so channel
//! and detector parameters can be tuned against the paper's shapes.

use fadewich_core::config::FadewichParams;
use fadewich_experiments::pipeline::run_md_stage;
use fadewich_officesim::{Scenario, ScenarioConfig};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(77);
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        ScenarioConfig { seed, ..ScenarioConfig::default() }
    } else {
        ScenarioConfig { seed, ..ScenarioConfig::small() }
    };
    let scenario = Scenario::generate(config).unwrap();
    let trace = scenario.simulate().unwrap();
    let params = FadewichParams::default();
    let hz = trace.tick_hz();
    let streams: Vec<usize> = (0..trace.n_streams()).collect();
    let stage = run_md_stage(&trace, &streams, scenario.events(), &params).unwrap();

    println!("events: {} (labels {:?})", scenario.events().len(), scenario.events().label_counts(3));
    println!("counts: {:?}", stage.detection.counts);

    // Per-sensor-count detection + CV accuracy, the Table III / Fig 8
    // headline shapes.
    let layout = scenario.layout().clone();
    // Confusion matrix at 9 sensors.
    {
        let streams: Vec<usize> = (0..trace.n_streams()).collect();
        let samples = fadewich_experiments::pipeline::build_samples(
            &trace, &stage, scenario.events(), &streams, &params);
        let (preds, acc) =
            fadewich_experiments::pipeline::cross_validated_predictions(&samples, 5, None, 99);
        let mut cm = fadewich_stats::ConfusionMatrix::new(4);
        for (ei, p) in preds.iter().enumerate() {
            if let Some(p) = p {
                cm.record(scenario.events().events()[ei].label(), (*p).min(3));
            }
        }
        println!("9-sensor cv acc={acc:.2} per-class recall: {:?}",
            cm.per_class_recall().iter().map(|r| r.map(|x| (x * 100.0).round())).collect::<Vec<_>>());
        for a in 0..4 {
            println!("  actual {a}: {:?}", (0..4).map(|p| cm.count(a, p)).collect::<Vec<_>>());
        }
    }
    if std::env::args().any(|a| a == "--orders") {
        // Sweep candidate subset orders for the Table III shape.
        let orders: Vec<(&str, [usize; 9])> = vec![
            ("A d1,d5,d8,d3,d7,d2,d6,d4,d9", [0, 4, 7, 2, 6, 1, 5, 3, 8]),
            ("E d1,d5,d8,d7,d6,d2,d3,d9,d4", [0, 4, 7, 6, 5, 1, 2, 8, 3]),
            ("F d1,d5,d8,d7,d2,d6,d9,d3,d4", [0, 4, 7, 6, 1, 5, 8, 2, 3]),
            ("G d1,d5,d8,d7,d2,d6,d3,d9,d4", [0, 4, 7, 6, 1, 5, 2, 8, 3]),
        ];
        for (name, order) in orders {
            let mut recalls = Vec::new();
            for n in 3..=9usize {
                let mut subset = order[..n].to_vec();
                subset.sort_unstable();
                let sub_streams = trace.stream_indices_for_subset(&subset);
                let s = run_md_stage(&trace, &sub_streams, scenario.events(), &params).unwrap();
                recalls.push(format!(
                    "{n}:{:.2}/fp{}",
                    s.detection.counts.recall(),
                    s.detection.counts.false_positives
                ));
            }
            println!("order {name}: {}", recalls.join(" "));
        }
        return;
    }
    for n in [3usize, 4, 5, 6, 7, 8, 9] {
        let subset = layout.sensor_subset(n);
        let sub_streams = trace.stream_indices_for_subset(&subset);
        let sub_stage = run_md_stage(&trace, &sub_streams, scenario.events(), &params).unwrap();
        let samples = fadewich_experiments::pipeline::build_samples(
            &trace, &sub_stage, scenario.events(), &sub_streams, &params);
        let n_matched = samples.per_event.iter().flatten().count();
        let (acc_rbf, acc_lin) = if n_matched >= 10 {
            let (_, a) = fadewich_experiments::pipeline::cross_validated_predictions(
                &samples, 5, None, 99);
            let (_, b) = fadewich_experiments::pipeline::cross_validated_predictions(
                &samples, 5, Some(fadewich_svm::Kernel::Linear), 99);
            (a, b)
        } else {
            (f64::NAN, f64::NAN)
        };
        println!(
            "sensors={n}: {:?} recall={:.2} cv_rbf={acc_rbf:.2} cv_linear={acc_lin:.2}",
            sub_stage.detection.counts,
            sub_stage.detection.counts.recall(),
        );
    }
    println!("all windows (unfiltered): {}", stage.runs[0].windows.len());
    println!("significant: {}", stage.significant[0].len());

    // Threshold stats.
    let run = &stage.runs[0];
    let valid: Vec<f64> =
        run.threshold_series.iter().copied().filter(|x| x.is_finite()).collect();
    println!(
        "threshold: first={:.1} last={:.1}",
        valid.first().unwrap_or(&f64::NAN),
        valid.last().unwrap_or(&f64::NAN)
    );
    let quiet_st: Vec<f64> = run.st_series[500..3000].to_vec();
    println!("quiet st: {}", fadewich_stats::descriptive::Summary::of(&quiet_st));

    for (ei, event) in scenario.events().events().iter().enumerate() {
        let erun = &stage.runs[event.day];
        let t0 = trace.tick_of(event.t_start);
        let t1 = trace.tick_of(event.t_end);
        let around: Vec<f64> =
            erun.st_series[t0.saturating_sub(10)..(t1 + 10).min(erun.st_series.len())].to_vec();
        let ub = erun.threshold_series[t0];
        let peak = fadewich_stats::descriptive::max(&around).unwrap();
        let matched = stage.detection.matched[ei].is_some();
        // Duration above threshold within the movement.
        let above = around.iter().filter(|&&s| s >= ub).count() as f64 / hz;
        if !matched || !full {
            println!(
                "event {ei:3} day={} label={} t={:7.1}..{:7.1} peak_st={peak:6.1} ub={ub:6.1} above={above:4.1}s {}",
                event.day,
                event.label(),
                event.t_start,
                event.t_end,
                if matched { "TP" } else { "FN" },
            );
        }
    }
    println!("-- false positive windows --");
    for (day, w) in &stage.detection.false_positives {
        println!(
            "  day={day} [{:8.1}, {:8.1}] dur={:4.1}s",
            w.start_s(hz),
            w.end_s(hz),
            w.duration_s(hz),
        );
    }
}
