//! RSSI vs CSI comparison — answering the paper's closing question
//! (§VIII-A): does finer-grained channel state information improve the
//! system?
//!
//! We replay the *same* user behaviour through both channel frontends:
//! the RSSI simulator (one stream per link) and the CSI simulator
//! (several subcarrier amplitudes per link), then run the identical
//! MD + RE pipeline on each and compare detection and classification.

use fadewich_core::config::FadewichParams;
use fadewich_core::features::TrainingSample;
use fadewich_core::md::run_md_over_day;
use fadewich_core::security::evaluate_detection;
use fadewich_officesim::{DayTrace, Scenario};
use fadewich_rfchannel::{Body, CsiChannelSim};
use fadewich_stats::rng::Rng;

use crate::experiment::Experiment;
use crate::pipeline::{cross_validated_predictions, SampleSet};
use crate::report::TextTable;

/// The head-to-head result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsiComparison {
    /// Subcarriers simulated per link.
    pub n_subcarriers: usize,
    /// MD recall on the RSSI frontend.
    pub rssi_recall: f64,
    /// MD recall on the CSI frontend.
    pub csi_recall: f64,
    /// Cross-validated RE accuracy on RSSI features.
    pub rssi_accuracy: f64,
    /// Cross-validated RE accuracy on CSI features.
    pub csi_accuracy: f64,
}

impl CsiComparison {
    /// Renders the comparison.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Extension: RSSI vs CSI ({} subcarriers/link), same behaviour, same pipeline",
                self.n_subcarriers
            ),
            &["frontend", "MD recall", "RE accuracy"],
        );
        t.add_row(vec![
            "RSSI (1 stream/link)".into(),
            format!("{:.2}", self.rssi_recall),
            format!("{:.2}", self.rssi_accuracy),
        ]);
        t.add_row(vec![
            format!("CSI ({} streams/link)", self.n_subcarriers),
            format!("{:.2}", self.csi_recall),
            format!("{:.2}", self.csi_accuracy),
        ]);
        t
    }
}

/// Simulates the CSI frontend over the scenario's behaviour.
fn simulate_csi_days(
    scenario: &Scenario,
    n_subcarriers: usize,
) -> Result<Vec<DayTrace>, String> {
    let layout = scenario.layout();
    let seed = Rng::seed_from_u64(scenario.config().seed).fork(42).next_u64();
    let mut sim = CsiChannelSim::new(
        layout.sensors(),
        layout.room(),
        scenario.config().tick_hz,
        scenario.config().channel,
        n_subcarriers,
        seed,
    )
    .map_err(|e| e.to_string())?;
    let n_ticks =
        (scenario.config().schedule.day_seconds * scenario.config().tick_hz).round() as usize;
    let mut days = Vec::new();
    let mut bodies: Vec<Body> = Vec::new();
    for schedule in scenario.day_schedules() {
        let mut day = DayTrace::with_capacity(sim.n_streams(), n_ticks);
        for tick in 0..n_ticks {
            let t = tick as f64 / scenario.config().tick_hz;
            bodies.clear();
            bodies.extend(schedule.timelines.iter().filter_map(|tl| tl.body_at(t)));
            day.push_row(sim.step(&bodies));
        }
        days.push(day);
    }
    Ok(days)
}

/// Runs MD + RE on a set of recorded days and returns
/// `(recall, cv_accuracy)`.
fn evaluate_days(
    days: &[DayTrace],
    scenario: &Scenario,
    tick_hz: f64,
    params: &FadewichParams,
    cv_folds: usize,
) -> Result<(f64, f64), String> {
    let streams: Vec<usize> = (0..days[0].n_streams()).collect();
    let mut significant = Vec::new();
    for day in days {
        let run = run_md_over_day(day, &streams, tick_hz, *params)?;
        significant.push(run.significant_windows(params.t_delta_ticks(tick_hz)));
    }
    let detection = evaluate_detection(&significant, scenario.events(), tick_hz, params);
    let per_event: Vec<Option<TrainingSample>> = scenario
        .events()
        .events()
        .iter()
        .enumerate()
        .map(|(ei, event)| {
            detection.matched[ei].map(|(day, w)| TrainingSample {
                features: fadewich_core::features::extract_features(
                    &days[day],
                    &streams,
                    w.start_tick,
                    tick_hz,
                    params,
                ),
                label: event.label(),
            })
        })
        .collect();
    let n_matched = per_event.iter().flatten().count();
    let samples = SampleSet { per_event, false_positive_features: Vec::new() };
    let accuracy = if n_matched >= cv_folds {
        cross_validated_predictions(&samples, cv_folds, None, 0xC51).1
    } else {
        0.0
    };
    Ok((detection.counts.recall(), accuracy))
}

/// Runs the full RSSI vs CSI comparison on an experiment's scenario.
///
/// # Errors
///
/// Propagates simulation and pipeline errors.
pub fn csi_comparison(
    experiment: &Experiment,
    n_subcarriers: usize,
    cv_folds: usize,
) -> Result<CsiComparison, String> {
    let tick_hz = experiment.trace.tick_hz();
    // RSSI side: reuse the experiment's already-simulated trace.
    let rssi_days: Vec<DayTrace> = experiment.trace.days().to_vec();
    let (rssi_recall, rssi_accuracy) = evaluate_days(
        &rssi_days,
        &experiment.scenario,
        tick_hz,
        &experiment.params,
        cv_folds,
    )?;
    // CSI side: same behaviour, richer frontend.
    let csi_days = simulate_csi_days(&experiment.scenario, n_subcarriers)?;
    let (csi_recall, csi_accuracy) = evaluate_days(
        &csi_days,
        &experiment.scenario,
        tick_hz,
        &experiment.params,
        cv_folds,
    )?;
    Ok(CsiComparison { n_subcarriers, rssi_recall, csi_recall, rssi_accuracy, csi_accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csi_matches_or_beats_rssi() {
        let exp = Experiment::small(0xC0C5).unwrap();
        let cmp = csi_comparison(&exp, 4, 3).unwrap();
        // CSI carries strictly more information; detection must not
        // get worse, and classification should hold up or improve.
        assert!(
            cmp.csi_recall + 0.1 >= cmp.rssi_recall,
            "CSI recall regressed: {cmp:?}"
        );
        assert!(
            cmp.csi_accuracy + 0.1 >= cmp.rssi_accuracy,
            "CSI accuracy regressed: {cmp:?}"
        );
        assert_eq!(cmp.render().n_rows(), 2);
    }
}
