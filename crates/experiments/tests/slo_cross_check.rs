//! Cross-check: the telemetry SLO engine's deauth-latency statistics,
//! fed live from the decision audit trail during a replay, must match
//! the `reproduce telemetry` latency study *exactly* — same events,
//! same samples, same order statistics. The study is the offline
//! ground truth (it walks the buffered records after the fact); the
//! SLO engine is the online view (it ingests the same events as they
//! are emitted). Any daylight between them means the live SLO lies.

use fadewich_core::FadewichParams;
use fadewich_experiments::experiment::Experiment;
use fadewich_experiments::telemetry::latency_study;
use fadewich_officesim::{ScenarioConfig, ScheduleParams};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::EngineConfig;
use fadewich_telemetry::{SloEngine, Telemetry};

fn fixture() -> Experiment {
    let config = ScenarioConfig {
        seed: 0xD3B,
        days: 2,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    Experiment::from_config(config, FadewichParams::default()).unwrap()
}

#[test]
fn slo_latency_matches_the_latency_study_exactly() {
    let experiment = fixture();
    let train_days = 1;
    let rows = latency_study(&experiment, train_days, 9).unwrap();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert!(row.deauths > 0, "the seeded day must produce deauths: {row:?}");

    // Replay the same online day with the standard SLO set attached —
    // the exact configuration `fadewichd serve --metrics-addr` runs.
    let subset = experiment.scenario.layout().sensor_subset(9);
    let streams = experiment.trace.stream_indices_for_subset(&subset);
    let re = replay::train_re(
        &experiment.scenario,
        &experiment.trace,
        &streams,
        train_days,
        &experiment.params,
    )
    .unwrap();
    let hz = experiment.trace.tick_hz();
    let telemetry = Telemetry::buffering();
    telemetry.set_slo(SloEngine::standard(hz));
    replay::stream_day_with_telemetry(
        &experiment.scenario,
        &experiment.trace,
        &streams,
        &re,
        train_days,
        EngineConfig::new(hz, experiment.params),
        &LinkModel::lossless(),
        0xF10D,
        &telemetry,
    )
    .unwrap();

    let statuses = telemetry.with_slo(|s| s.statuses()).unwrap();
    let slo = statuses.iter().find(|s| s.name == "deauth_latency").unwrap();
    let (stats, threshold) = slo.latency.expect("latency stats present");

    // Exact agreement with the study's order statistics.
    assert_eq!(stats.count, row.deauths, "sample count");
    assert_eq!(stats.min_ticks, row.min_ticks, "min");
    assert_eq!(stats.median_ticks, row.median_ticks, "median");
    assert_eq!(stats.max_ticks, row.max_ticks, "max");
    assert!(stats.median_ticks <= stats.p95_ticks && stats.p95_ticks <= stats.max_ticks);

    // The standard threshold is the paper's 4 s budget in ticks, and
    // the SLO's event accounting covers exactly the study's deauths.
    assert_eq!(threshold, (4.0 * hz).ceil() as u64);
    assert_eq!(slo.total, row.deauths);
    if stats.max_ticks > threshold {
        assert!(slo.bad > 0, "a sample over the 4 s budget must burn error budget");
    } else {
        assert_eq!(slo.bad, 0, "no sample over budget, none may be counted bad");
    }
}
