//! Serial-vs-parallel determinism: the full experiment pipeline must
//! produce **bit-identical** results regardless of worker-pool size.
//!
//! The parallel runner guarantees this by construction — `par_map`
//! merges results in item order and every task draws randomness from
//! `Rng::task_stream(seed, index)`, which depends only on the task's
//! position, never on which worker ran it or when. These tests pin the
//! guarantee end-to-end: MD windows, extracted features, SVM
//! predictions and the online controller's deauthentication decisions
//! all compare equal between a 1-thread and an 8-thread run.

use fadewich_experiments::deployment;
use fadewich_experiments::par;
use fadewich_experiments::Experiment;

/// Runs the whole pipeline under a fixed pool size and serializes
/// everything comparable: Debug formatting of floats in Rust is
/// shortest-roundtrip, so equal strings mean bit-equal values.
fn pipeline_fingerprint(threads: usize) -> String {
    par::with_threads(threads, || {
        let exp = Experiment::small(0xD17E).expect("scenario");
        let run = exp.run_for_sensors(9, 3).expect("pipeline");
        let sweep = exp.sweep(&[3, 9], 3).expect("sweep");
        format!(
            "windows={:?}\nfeatures={:?}\nfp_features={:?}\npredictions={:?}\naccuracy={:?}\nsweep_acc={:?}",
            run.stage.significant,
            run.samples.per_event,
            run.samples.false_positive_features,
            run.predictions,
            run.accuracy.to_bits(),
            sweep.iter().map(|r| r.accuracy.to_bits()).collect::<Vec<_>>(),
        )
    })
}

#[test]
fn pipeline_is_thread_count_invariant() {
    let serial = pipeline_fingerprint(1);
    let parallel = pipeline_fingerprint(8);
    assert!(
        serial == parallel,
        "pipeline output depends on the thread count:\n--- 1 thread ---\n{serial}\n--- 8 threads ---\n{parallel}"
    );
    // And re-running with the same pool size is reproducible at all.
    assert_eq!(parallel, pipeline_fingerprint(8));
}

#[test]
fn online_deployment_is_thread_count_invariant() {
    // The deployment experiment exercises the remaining parallel
    // stages: per-day training fan-out and the per-day online
    // controller, whose deauthentication decisions are the system's
    // final output.
    let fingerprint = |threads: usize| -> String {
        par::with_threads(threads, || {
            let exp = {
                use fadewich_officesim::ScenarioConfig;
                let config = ScenarioConfig { seed: 0xDE9, days: 2, ..ScenarioConfig::small() };
                Experiment::from_config(config, fadewich_core::FadewichParams::default())
                    .expect("scenario")
            };
            let out = deployment::run_deployment(&exp, 1, 9).expect("deployment");
            format!("{}\n{:?}", out.render(), out)
        })
    };
    let serial = fingerprint(1);
    let parallel = fingerprint(8);
    assert!(
        serial == parallel,
        "deployment output depends on the thread count:\n--- 1 thread ---\n{serial}\n--- 8 threads ---\n{parallel}"
    );
}
